//! SIMT execution of OpenCL kernels.
//!
//! The virtual GPU executes one work group at a time. Within a work group all work items run
//! in lock step, statement by statement, which gives barriers their OpenCL semantics for the
//! structured kernels the Lift compiler emits (barriers only ever appear at points reached
//! uniformly by the whole work group). Divergent control flow is handled with per-thread
//! activity masks, exactly like the execution masks of a real SIMT machine.
//!
//! While executing, the interpreter counts the dynamic events the cost model charges for:
//! arithmetic, index computations (with divisions/modulos counted separately), global/local
//! memory traffic with a coalescing analysis per SIMD group, barriers and loop overhead.
//!
//! # Execution strategy
//!
//! Launching first *lowers* the kernel into a slot-indexed form ([`SStmt`]/[`SExpr`]): every
//! identifier (parameter, declaration, loop variable, user-function parameter) is interned
//! to a dense slot, call targets (work-item builtins, `vload`/`vstore`, math builtins, user
//! functions) are resolved once, and comments disappear. The interpreter then runs the
//! lowered form with plain vector indexing for variable access — the innermost loop performs
//! no string hashing, no name-based dispatch and no AST cloning. Exploration executes
//! thousands of candidate kernels per search, which makes this path the throughput limit of
//! the whole rewrite engine.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

use lift_arith::ArithExpr;
use lift_ocl::{AddrSpace, CBinOp, CExpr, CStmt, CType, CUnOp, Module};

use crate::cost::{CostCounters, ExecutionReport};
use crate::device::{DeviceProfile, LaunchConfig, LaunchError};
use crate::memory::{GpuValue, KernelArg, Ptr};

/// Number of consecutive work items considered for memory-coalescing analysis.
const COALESCE_GROUP: usize = 32;
/// Number of consecutive `float` elements that form one memory transaction segment.
const SEGMENT_ELEMS: i64 = 32;

/// A fast word-at-a-time FxHash-style hasher for the few remaining string-keyed maps (name
/// interning during lowering, symbolic-length parameters). DoS resistance is pointless for
/// compiler-generated identifiers.
#[derive(Clone, Copy, Default)]
struct FastHash(u64);

impl Hasher for FastHash {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.0 = (self.0 ^ u64::from_le_bytes(buf))
                .rotate_left(5)
                .wrapping_mul(0x517c_c1b7_2722_0a95);
        }
    }
}

/// A string-keyed map with the fast hasher.
type VarMap<V> = HashMap<String, V, BuildHasherDefault<FastHash>>;

/// Errors raised while launching or executing a kernel.
#[derive(Clone, Debug, PartialEq)]
pub enum VgpuError {
    /// The requested kernel does not exist in the module.
    UnknownKernel(String),
    /// A variable was referenced but never defined.
    UnknownVariable(String),
    /// A called function is neither a builtin nor defined in the module.
    UnknownFunction(String),
    /// The number of kernel arguments does not match the kernel signature.
    ArgumentMismatch {
        /// Parameters expected.
        expected: usize,
        /// Arguments provided.
        found: usize,
    },
    /// An expression that must be a pointer evaluated to something else.
    NotAPointer(String),
    /// An out-of-bounds memory access.
    OutOfBounds {
        /// The address space of the buffer.
        space: &'static str,
        /// The accessed index.
        index: i64,
        /// The buffer length.
        len: usize,
    },
    /// A symbolic length could not be resolved to a constant.
    SymbolicLength(String),
    /// A value that cannot be stored to memory (e.g. a struct) was stored.
    InvalidStore(String),
    /// Integer division or modulo by zero while evaluating an index expression.
    DivisionByZero,
    /// The launch configuration violates the target device's limits
    /// (see [`DeviceProfile::validate_launch`]).
    InvalidLaunch(LaunchError),
    /// A `barrier()` was reached by only part of a work group (it sits inside a
    /// lane-divergent branch or loop). OpenCL leaves this undefined; a real device would
    /// hang or corrupt memory, so the virtual GPU reports it instead of silently
    /// synchronising whichever subset happened to arrive.
    DivergentBarrier {
        /// The work-group id in which the divergent barrier executed.
        group: [usize; 3],
        /// Work items of the group that reached the barrier.
        arrived: usize,
        /// Live (non-returned) work items of the group.
        expected: usize,
    },
    /// Two work items touched the same memory cell without a synchronising barrier between
    /// the accesses, and at least one access was a write of a differing value. Reported only
    /// under [`VirtualGpu::with_race_detection`] — the shadow-memory detector records the
    /// last writer and reader of every local and global cell together with the barrier
    /// epoch of the access, and flags write-write and read-write pairs from different work
    /// items in the same epoch (or, for global buffers, from different work groups, which
    /// no barrier can ever order within a launch).
    DataRace {
        /// Name of the racy buffer (the kernel parameter or `__local` declaration).
        buffer: String,
        /// The contested element index.
        index: i64,
        /// The two conflicting work items (global linear ids), earlier access first.
        writers: [usize; 2],
        /// The barrier epoch of the group in which the conflict surfaced (barriers executed
        /// since the group started).
        epoch: u64,
    },
}

impl fmt::Display for VgpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VgpuError::UnknownKernel(k) => write!(f, "unknown kernel `{k}`"),
            VgpuError::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            VgpuError::UnknownFunction(v) => write!(f, "unknown function `{v}`"),
            VgpuError::ArgumentMismatch { expected, found } => {
                write!(f, "kernel expects {expected} arguments, received {found}")
            }
            VgpuError::NotAPointer(e) => write!(f, "expression is not a pointer: {e}"),
            VgpuError::OutOfBounds { space, index, len } => {
                write!(
                    f,
                    "out-of-bounds {space} access at index {index} (length {len})"
                )
            }
            VgpuError::SymbolicLength(e) => write!(f, "cannot resolve symbolic length `{e}`"),
            VgpuError::InvalidStore(e) => write!(f, "cannot store value: {e}"),
            VgpuError::DivisionByZero => write!(f, "division by zero in index expression"),
            VgpuError::InvalidLaunch(e) => write!(f, "invalid launch configuration: {e}"),
            VgpuError::DivergentBarrier {
                group,
                arrived,
                expected,
            } => write!(
                f,
                "barrier reached by only {arrived} of {expected} work items of group \
                 {group:?} (undefined behaviour in OpenCL)"
            ),
            VgpuError::DataRace {
                buffer,
                index,
                writers,
                epoch,
            } => write!(
                f,
                "data race on `{buffer}[{index}]`: work items {} and {} accessed the cell \
                 without a barrier between them (barrier epoch {epoch})",
                writers[0], writers[1]
            ),
        }
    }
}

impl std::error::Error for VgpuError {}

/// The result of a kernel launch: the (possibly modified) global buffers in argument order and
/// the execution report for the cost model.
#[derive(Clone, Debug, PartialEq)]
pub struct LaunchResult {
    /// Global buffers after execution, in the order the buffer arguments were passed.
    pub buffers: Vec<Vec<f32>>,
    /// Dynamic execution counters.
    pub report: ExecutionReport,
}

/// One stage of a multi-kernel launch plan: which kernel to run and under which ND-range.
///
/// Multi-kernel programs (see `lift-codegen`'s `CompiledProgram`) share a single argument
/// list across every kernel of the sequence, so a stage needs no per-stage argument mapping —
/// only the kernel name and its launch dimensions (a sequential stage typically runs as a
/// single work item).
#[derive(Clone, Debug, PartialEq)]
pub struct KernelLaunchSpec {
    /// Name of the kernel in the module.
    pub kernel: String,
    /// The ND-range this stage is launched with.
    pub launch: LaunchConfig,
}

/// The result of executing a kernel sequence: the final state of the shared buffer pool and
/// one execution report per stage.
#[derive(Clone, Debug, PartialEq)]
pub struct SequenceResult {
    /// Global buffers after the last stage, in the order the buffer arguments were passed.
    pub buffers: Vec<Vec<f32>>,
    /// Per-stage execution reports, in launch order.
    pub reports: Vec<ExecutionReport>,
}

impl SequenceResult {
    /// Per-stage cost counters, in launch order.
    pub fn stage_counters(&self) -> Vec<CostCounters> {
        self.reports.iter().map(|r| r.counters).collect()
    }

    /// Counters summed over all stages (for reporting; use [`SequenceResult::estimated_time`]
    /// for ranking — sequential spans add, they do not merge).
    pub fn merged_counters(&self) -> CostCounters {
        let mut total = CostCounters::default();
        let mut span = 0;
        for r in &self.reports {
            span += r.counters.group_span_rows;
            total.merge(&r.counters);
        }
        // Sequential stages cannot overlap: the critical path is the sum of the per-stage
        // critical paths, not their maximum.
        total.group_span_rows = span;
        total
    }

    /// Estimated execution time of the whole sequence on `device`: the per-stage work–span
    /// times summed, plus one [`DeviceProfile::launch_overhead`] per stage.
    pub fn estimated_time(&self, device: &DeviceProfile) -> f64 {
        crate::cost::estimated_sequence_time(&self.stage_counters(), device)
    }

    /// The structured per-stage profile of the execution: each stage's counters and time
    /// decomposition under `device`, labelled with the kernel names of the launch plan
    /// (`stages` should be the plan this result came from). The profile's total equals
    /// [`SequenceResult::estimated_time`] exactly.
    pub fn profile(
        &self,
        stages: &[KernelLaunchSpec],
        device: &DeviceProfile,
    ) -> crate::cost::ExecutionProfile {
        let names: Vec<String> = stages.iter().map(|s| s.kernel.clone()).collect();
        crate::cost::ExecutionProfile::from_stages(&names, &self.stage_counters(), device)
    }
}

/// The virtual GPU.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VirtualGpu {
    detect_races: bool,
}

impl VirtualGpu {
    /// Creates a virtual GPU with the data-race detector off (the default — detection costs
    /// one shadow cell per buffer element and a check per memory access).
    pub fn new() -> VirtualGpu {
        VirtualGpu {
            detect_races: false,
        }
    }

    /// Creates a virtual GPU with the shadow-memory data-race detector on: every launch
    /// tracks the last writer and reader of each local and global cell per barrier epoch and
    /// fails with [`VgpuError::DataRace`] on unsynchronised conflicting accesses. Stores of
    /// a bitwise-identical value are treated as no-ops, so redundant group-uniform writes
    /// (every work item storing the same staged value) do not flag.
    ///
    /// Shadow state is per launch: a kernel-sequence stage starts clean, mirroring the
    /// device-wide synchronisation a kernel boundary provides.
    #[deprecated(
        since = "0.8.0",
        note = "use `ExecutionRequest::new(module).race_detection(true)` instead"
    )]
    pub fn with_race_detection() -> VirtualGpu {
        VirtualGpu { detect_races: true }
    }

    /// Whether launches on this virtual GPU run the data-race detector.
    pub fn race_detection(&self) -> bool {
        self.detect_races
    }

    /// Launches `kernel_name` from `module` like [`VirtualGpu::launch`], after checking that
    /// `config` respects the limits of `device` (work-group size, per-dimension local sizes,
    /// divisibility). A launch a real driver would refuse is rejected with
    /// [`VgpuError::InvalidLaunch`] instead of silently executing with cost counters that
    /// describe a machine without occupancy limits.
    ///
    /// # Errors
    ///
    /// Returns [`VgpuError::InvalidLaunch`] for configurations that violate the device, and
    /// any [`VgpuError`] of [`VirtualGpu::launch`] otherwise.
    #[deprecated(
        since = "0.8.0",
        note = "use `ExecutionRequest::new(module).on_device(device).launch(..)` instead"
    )]
    pub fn launch_on(
        &self,
        device: &DeviceProfile,
        module: &Module,
        kernel_name: &str,
        config: LaunchConfig,
        args: Vec<KernelArg>,
    ) -> Result<LaunchResult, VgpuError> {
        crate::engine::ExecutionRequest::new(module)
            .on_device(device)
            .race_detection(self.detect_races)
            .launch(kernel_name, config, args)
    }

    /// Executes a sequence of kernels against a persistent pool of arguments.
    ///
    /// Every stage receives the *whole* pool in order (the shared-signature ABI of
    /// multi-kernel programs: unused parameters are harmless), and the buffers a stage
    /// modifies are visible to the following stages — this is how global-memory
    /// intermediates flow across the device-wide synchronisation points a kernel boundary
    /// represents.
    ///
    /// # Errors
    ///
    /// Returns the first stage's [`VgpuError`], if any.
    #[deprecated(
        since = "0.8.0",
        note = "use `ExecutionRequest::new(module).launch_sequence(..)` instead"
    )]
    pub fn launch_sequence(
        &self,
        module: &Module,
        stages: &[KernelLaunchSpec],
        pool: Vec<KernelArg>,
    ) -> Result<SequenceResult, VgpuError> {
        crate::engine::ExecutionRequest::new(module)
            .race_detection(self.detect_races)
            .launch_sequence(stages, pool)
    }

    /// Like [`VirtualGpu::launch_sequence`], after validating every stage's launch against
    /// the limits of `device`.
    ///
    /// # Errors
    ///
    /// Returns [`VgpuError::InvalidLaunch`] if any stage's launch violates the device, and
    /// any [`VgpuError`] of the execution otherwise.
    #[deprecated(
        since = "0.8.0",
        note = "use `ExecutionRequest::new(module).on_device(device).launch_sequence(..)` \
                instead"
    )]
    pub fn launch_sequence_on(
        &self,
        device: &DeviceProfile,
        module: &Module,
        stages: &[KernelLaunchSpec],
        pool: Vec<KernelArg>,
    ) -> Result<SequenceResult, VgpuError> {
        crate::engine::ExecutionRequest::new(module)
            .on_device(device)
            .race_detection(self.detect_races)
            .launch_sequence(stages, pool)
    }

    /// Launches `kernel_name` from `module` over the given ND-range.
    ///
    /// # Errors
    ///
    /// Returns a [`VgpuError`] if the kernel is unknown, the arguments do not match, or the
    /// kernel performs an invalid memory access.
    #[deprecated(
        since = "0.8.0",
        note = "use `ExecutionRequest::new(module).launch(..)` instead"
    )]
    pub fn launch(
        &self,
        module: &Module,
        kernel_name: &str,
        config: LaunchConfig,
        args: Vec<KernelArg>,
    ) -> Result<LaunchResult, VgpuError> {
        crate::engine::ExecutionRequest::new(module)
            .race_detection(self.detect_races)
            .launch(kernel_name, config, args)
    }
}

/// A kernel launch lowered to the slot-indexed form with its arguments bound: everything an
/// execution engine needs to run the kernel body against live state.
pub(crate) struct Prepared {
    pub(crate) body: Vec<SStmt>,
    pub(crate) exec: Exec,
}

impl Prepared {
    /// Consumes the executed state into the launch result.
    pub(crate) fn finish(self) -> LaunchResult {
        LaunchResult {
            buffers: self.exec.global,
            report: ExecutionReport {
                counters: self.exec.counters,
            },
        }
    }
}

/// Resolves the kernel, lowers it once (names interned to slots, call targets resolved,
/// comments dropped) and binds the launch arguments — the engine-independent prologue of
/// every launch.
pub(crate) fn prepare(
    module: &Module,
    kernel_name: &str,
    config: LaunchConfig,
    args: Vec<KernelArg>,
    detect_races: bool,
) -> Result<Prepared, VgpuError> {
    let kernel = module
        .kernel(kernel_name)
        .ok_or_else(|| VgpuError::UnknownKernel(kernel_name.to_string()))?;
    if kernel.params.len() != args.len() {
        return Err(VgpuError::ArgumentMismatch {
            expected: kernel.params.len(),
            found: args.len(),
        });
    }

    // Lower once: intern names to slots, resolve call targets, drop comments.
    let mut lowerer = Lowerer::new(module);
    let param_slots: Vec<usize> = kernel
        .params
        .iter()
        .map(|p| lowerer.slot(&p.name))
        .collect();
    let body = lowerer.lower_block(&kernel.body);
    let functions: Vec<std::rc::Rc<SFunction>> = lowerer
        .functions
        .into_iter()
        .map(|f| std::rc::Rc::new(f.expect("function lowering completed")))
        .collect();
    let names = lowerer.names;

    let mut global: Vec<Vec<f32>> = Vec::new();
    let mut global_names: Vec<String> = Vec::new();
    let mut params: Vec<Option<GpuValue>> = vec![None; names.len()];
    let mut params_by_name: VarMap<GpuValue> = VarMap::default();
    for ((param, slot), arg) in kernel.params.iter().zip(param_slots).zip(args) {
        let value = match arg {
            KernelArg::Buffer(data) => {
                let idx = global.len();
                global.push(data);
                global_names.push(param.name.clone());
                GpuValue::Ptr(Ptr {
                    space: AddrSpace::Global,
                    buffer: idx,
                    offset: 0,
                })
            }
            KernelArg::Int(v) => GpuValue::Int(v),
            KernelArg::Float(v) => GpuValue::Float(f64::from(v)),
        };
        params_by_name.insert(param.name.clone(), value.clone());
        params[slot] = Some(value);
    }

    // Shadow state lives for exactly one launch: each stage of a kernel sequence starts
    // with clean shadow memory, mirroring the device-wide sync of a kernel boundary.
    let shadow_global: Vec<Vec<ShadowCell>> = if detect_races {
        global
            .iter()
            .map(|b| vec![ShadowCell::default(); b.len()])
            .collect()
    } else {
        Vec::new()
    };

    let exec = Exec {
        config,
        global,
        params,
        params_by_name,
        functions,
        names,
        counters: CostCounters::default(),
        access_log: Vec::new(),
        seg_scratch: Vec::new(),
        simd_counts: Vec::new(),
        detect: detect_races,
        shadow_global,
        global_names,
    };
    Ok(Prepared { body, exec })
}

// --------------------------------------------------------------------- lowered kernel form

/// The work-item functions of OpenCL.
#[derive(Clone, Copy)]
pub(crate) enum WorkItemFn {
    GlobalId,
    LocalId,
    GroupId,
    GlobalSize,
    LocalSize,
    NumGroups,
}

/// Unary math builtins (charged 4 flops, like a special-function unit).
#[derive(Clone, Copy)]
pub(crate) enum Math1 {
    Sqrt,
    Rsqrt,
    Fabs,
    Exp,
    Log,
    Floor,
}

/// Binary math builtins (charged 1 flop).
#[derive(Clone, Copy)]
pub(crate) enum Math2 {
    Min,
    Max,
}

/// How a cast behaves at runtime.
#[derive(Clone, Copy)]
pub(crate) enum CastKind {
    Int,
    Float,
    Bool,
    Keep,
}

/// A lowered index expression: [`ArithExpr`] with variables resolved to slots.
pub(crate) enum SIndex {
    Cst(i64),
    Var(usize),
    Sum(Vec<SIndex>),
    Prod(Vec<SIndex>),
    IntDiv(Box<SIndex>, Box<SIndex>),
    Mod(Box<SIndex>, Box<SIndex>),
    Pow(Box<SIndex>, u32),
    Min(Box<SIndex>, Box<SIndex>),
    Max(Box<SIndex>, Box<SIndex>),
}

/// A lowered expression: variables are slots, call targets are resolved.
pub(crate) enum SExpr {
    Int(i64),
    Float(f64),
    Var(usize),
    Index(SIndex),
    Bin(CBinOp, Box<SExpr>, Box<SExpr>),
    Un(CUnOp, Box<SExpr>),
    WorkItem(WorkItemFn, Box<SExpr>),
    VLoad(usize, Box<SExpr>, Box<SExpr>),
    VStore(usize, Box<SExpr>, Box<SExpr>, Box<SExpr>),
    Math1(Math1, Box<SExpr>),
    Math2(Math2, Box<SExpr>, Box<SExpr>),
    Mad(Box<SExpr>, Box<SExpr>, Box<SExpr>),
    CallFun(usize, Vec<SExpr>),
    UnknownCall(String),
    ArrayAccess(Box<SExpr>, Box<SExpr>),
    Field(Box<SExpr>, usize, String),
    Cast(CastKind, Box<SExpr>),
    Ternary(Box<SExpr>, Box<SExpr>, Box<SExpr>),
    StructLit(Vec<SExpr>),
    VectorLit(Vec<SExpr>),
}

/// A lowered assignment target.
pub(crate) enum SLhs {
    Var(usize),
    Array(SExpr, SExpr),
    FieldOfVar(usize, usize),
    Invalid(String),
}

/// A lowered statement. Comments are dropped during lowering.
pub(crate) enum SStmt {
    Return,
    Barrier,
    Block(Vec<SStmt>),
    DeclLocalArray {
        slot: usize,
        len: ArithExpr,
    },
    DeclPrivateArray {
        slot: usize,
        len: ArithExpr,
    },
    DeclScalar {
        slot: usize,
        init: Option<SExpr>,
    },
    Assign {
        lhs: SLhs,
        rhs: SExpr,
    },
    Expr(SExpr),
    If {
        cond: SExpr,
        then: Vec<SStmt>,
        otherwise: Option<Vec<SStmt>>,
    },
    For {
        slot: usize,
        init: SExpr,
        cond: SExpr,
        step: SExpr,
        body: Vec<SStmt>,
    },
}

/// A lowered user function.
pub(crate) struct SFunction {
    pub(crate) params: Vec<usize>,
    pub(crate) body: SExpr,
}

pub(crate) struct Lowerer<'m> {
    module: &'m Module,
    slots: VarMap<usize>,
    names: Vec<String>,
    /// `None` marks a function whose body is still being lowered (recursion-safe).
    functions: Vec<Option<SFunction>>,
    fn_slots: VarMap<usize>,
}

impl<'m> Lowerer<'m> {
    fn new(module: &'m Module) -> Lowerer<'m> {
        Lowerer {
            module,
            slots: VarMap::default(),
            names: Vec::new(),
            functions: Vec::new(),
            fn_slots: VarMap::default(),
        }
    }

    fn slot(&mut self, name: &str) -> usize {
        if let Some(&s) = self.slots.get(name) {
            return s;
        }
        let s = self.names.len();
        self.names.push(name.to_string());
        self.slots.insert(name.to_string(), s);
        s
    }

    fn lower_block(&mut self, stmts: &[CStmt]) -> Vec<SStmt> {
        stmts.iter().filter_map(|s| self.lower_stmt(s)).collect()
    }

    fn lower_stmt(&mut self, stmt: &CStmt) -> Option<SStmt> {
        Some(match stmt {
            CStmt::Comment(_) => return None,
            CStmt::Return => SStmt::Return,
            CStmt::Barrier(_) => SStmt::Barrier,
            CStmt::Block(stmts) => SStmt::Block(self.lower_block(stmts)),
            CStmt::Decl {
                ty: _,
                name,
                addr,
                array_len,
                init,
            } => {
                let slot = self.slot(name);
                match array_len {
                    Some(len) => {
                        if matches!(addr, Some(AddrSpace::Local)) {
                            SStmt::DeclLocalArray {
                                slot,
                                len: len.clone(),
                            }
                        } else {
                            SStmt::DeclPrivateArray {
                                slot,
                                len: len.clone(),
                            }
                        }
                    }
                    None => SStmt::DeclScalar {
                        slot,
                        init: init.as_ref().map(|e| self.lower_expr(e)),
                    },
                }
            }
            CStmt::Assign { lhs, rhs } => SStmt::Assign {
                lhs: self.lower_lhs(lhs),
                rhs: self.lower_expr(rhs),
            },
            CStmt::Expr(e) => SStmt::Expr(self.lower_expr(e)),
            CStmt::If {
                cond,
                then,
                otherwise,
            } => SStmt::If {
                cond: self.lower_expr(cond),
                then: self.lower_block(then),
                otherwise: otherwise.as_ref().map(|b| self.lower_block(b)),
            },
            CStmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => SStmt::For {
                slot: self.slot(var),
                init: self.lower_expr(init),
                cond: self.lower_expr(cond),
                step: self.lower_expr(step),
                body: self.lower_block(body),
            },
        })
    }

    fn lower_lhs(&mut self, lhs: &CExpr) -> SLhs {
        match lhs {
            CExpr::Var(name) => SLhs::Var(self.slot(name)),
            CExpr::ArrayAccess(arr, idx) => SLhs::Array(self.lower_expr(arr), self.lower_expr(idx)),
            CExpr::Field(obj, field) => match &**obj {
                CExpr::Var(name) => SLhs::FieldOfVar(self.slot(name), field_index(field)),
                _ => SLhs::Invalid(lift_ocl::print_expr(lhs)),
            },
            other => SLhs::Invalid(lift_ocl::print_expr(other)),
        }
    }

    fn lower_index(&mut self, a: &ArithExpr) -> SIndex {
        match a {
            ArithExpr::Cst(c) => SIndex::Cst(*c),
            ArithExpr::Var(v) => SIndex::Var(self.slot(v.name())),
            ArithExpr::Sum(ts) => SIndex::Sum(ts.iter().map(|t| self.lower_index(t)).collect()),
            ArithExpr::Prod(fs) => SIndex::Prod(fs.iter().map(|f| self.lower_index(f)).collect()),
            ArithExpr::IntDiv(a, b) => {
                SIndex::IntDiv(Box::new(self.lower_index(a)), Box::new(self.lower_index(b)))
            }
            ArithExpr::Mod(a, b) => {
                SIndex::Mod(Box::new(self.lower_index(a)), Box::new(self.lower_index(b)))
            }
            ArithExpr::Pow(b, e) => SIndex::Pow(Box::new(self.lower_index(b)), *e),
            ArithExpr::Min(a, b) => {
                SIndex::Min(Box::new(self.lower_index(a)), Box::new(self.lower_index(b)))
            }
            ArithExpr::Max(a, b) => {
                SIndex::Max(Box::new(self.lower_index(a)), Box::new(self.lower_index(b)))
            }
        }
    }

    fn lower_expr(&mut self, e: &CExpr) -> SExpr {
        match e {
            CExpr::IntLit(v) => SExpr::Int(*v),
            CExpr::FloatLit(v) => SExpr::Float(*v),
            CExpr::Var(name) => SExpr::Var(self.slot(name)),
            CExpr::Index(a) => SExpr::Index(self.lower_index(a)),
            CExpr::Bin(op, a, b) => SExpr::Bin(
                *op,
                Box::new(self.lower_expr(a)),
                Box::new(self.lower_expr(b)),
            ),
            CExpr::Un(op, a) => SExpr::Un(*op, Box::new(self.lower_expr(a))),
            CExpr::Call(name, args) => self.lower_call(name, args),
            CExpr::ArrayAccess(arr, idx) => SExpr::ArrayAccess(
                Box::new(self.lower_expr(arr)),
                Box::new(self.lower_expr(idx)),
            ),
            CExpr::Field(obj, field) => SExpr::Field(
                Box::new(self.lower_expr(obj)),
                field_index(field),
                field.clone(),
            ),
            CExpr::Cast(ty, inner) => {
                let kind = match ty {
                    CType::Int => CastKind::Int,
                    CType::Float | CType::Double => CastKind::Float,
                    CType::Bool => CastKind::Bool,
                    _ => CastKind::Keep,
                };
                SExpr::Cast(kind, Box::new(self.lower_expr(inner)))
            }
            CExpr::Ternary(c, t, o) => SExpr::Ternary(
                Box::new(self.lower_expr(c)),
                Box::new(self.lower_expr(t)),
                Box::new(self.lower_expr(o)),
            ),
            CExpr::StructLit(_, fields) => {
                SExpr::StructLit(fields.iter().map(|f| self.lower_expr(f)).collect())
            }
            CExpr::VectorLit(_, elems) => {
                SExpr::VectorLit(elems.iter().map(|e| self.lower_expr(e)).collect())
            }
        }
    }

    /// Resolves a call target, in the same precedence order the string-dispatching
    /// interpreter used: work-item functions, vector loads/stores, math builtins, then
    /// user functions defined in the module.
    fn lower_call(&mut self, name: &str, args: &[CExpr]) -> SExpr {
        let wi = match name {
            "get_global_id" => Some(WorkItemFn::GlobalId),
            "get_local_id" => Some(WorkItemFn::LocalId),
            "get_group_id" => Some(WorkItemFn::GroupId),
            "get_global_size" => Some(WorkItemFn::GlobalSize),
            "get_local_size" => Some(WorkItemFn::LocalSize),
            "get_num_groups" => Some(WorkItemFn::NumGroups),
            _ => None,
        };
        if let Some(kind) = wi {
            return SExpr::WorkItem(kind, Box::new(self.lower_expr(&args[0])));
        }
        if let Some(width) = vector_width(name, "vload") {
            return SExpr::VLoad(
                width,
                Box::new(self.lower_expr(&args[0])),
                Box::new(self.lower_expr(&args[1])),
            );
        }
        if let Some(width) = vector_width(name, "vstore") {
            return SExpr::VStore(
                width,
                Box::new(self.lower_expr(&args[0])),
                Box::new(self.lower_expr(&args[1])),
                Box::new(self.lower_expr(&args[2])),
            );
        }
        let m1 = match name {
            "sqrt" | "native_sqrt" => Some(Math1::Sqrt),
            "rsqrt" => Some(Math1::Rsqrt),
            "fabs" => Some(Math1::Fabs),
            "exp" => Some(Math1::Exp),
            "log" => Some(Math1::Log),
            "floor" => Some(Math1::Floor),
            _ => None,
        };
        if let Some(kind) = m1 {
            return SExpr::Math1(kind, Box::new(self.lower_expr(&args[0])));
        }
        let m2 = match name {
            "fmin" | "min" => Some(Math2::Min),
            "fmax" | "max" => Some(Math2::Max),
            _ => None,
        };
        if let Some(kind) = m2 {
            return SExpr::Math2(
                kind,
                Box::new(self.lower_expr(&args[0])),
                Box::new(self.lower_expr(&args[1])),
            );
        }
        if name == "mad" || name == "fma" {
            return SExpr::Mad(
                Box::new(self.lower_expr(&args[0])),
                Box::new(self.lower_expr(&args[1])),
                Box::new(self.lower_expr(&args[2])),
            );
        }
        match self.lower_function(name) {
            Some(idx) => SExpr::CallFun(idx, args.iter().map(|a| self.lower_expr(a)).collect()),
            None => SExpr::UnknownCall(name.to_string()),
        }
    }

    /// Lowers a module function on demand (arity mismatches are reported when the call is
    /// executed, as before).
    fn lower_function(&mut self, name: &str) -> Option<usize> {
        if let Some(&idx) = self.fn_slots.get(name) {
            return Some(idx);
        }
        let fun = self.module.function(name)?;
        let idx = self.functions.len();
        self.functions.push(None);
        self.fn_slots.insert(name.to_string(), idx);
        let params: Vec<usize> = fun.params.iter().map(|(n, _)| self.slot(n)).collect();
        let body = self.lower_expr(&fun.body);
        self.functions[idx] = Some(SFunction { params, body });
        Some(idx)
    }
}

// --------------------------------------------------------------------------- execution

/// One recorded global-memory access, used for the coalescing analysis.
struct Access {
    thread: usize,
    buffer: usize,
    addr: i64,
    width: usize,
}

/// One shadow-memory cell of the data-race detector: the last work item that wrote and the
/// last that read the guarded element, each with the barrier epoch of the access. Work items
/// are stored as `1 + global linear id` so `0` means "untouched / written by the host".
#[derive(Clone, Copy, Default)]
pub(crate) struct ShadowCell {
    writer: usize,
    writer_group: usize,
    write_epoch: u64,
    reader: usize,
    reader_group: usize,
    read_epoch: u64,
}

/// Per-work-group shared state.
pub(crate) struct Group {
    pub(crate) id: [usize; 3],
    /// Linear group id (for the cross-group conflict rule on global buffers).
    pub(crate) linear: usize,
    pub(crate) local: Vec<Vec<f32>>,
    /// slot → local buffer index, for slots declared as local arrays.
    pub(crate) local_slots: Vec<Option<usize>>,
    /// Barrier epoch: number of barriers the group has executed. Two accesses in the same
    /// epoch have no barrier between them. Advanced only at *executed* `barrier()`
    /// statements — never at loop back-edges — so unsynchronised conflicts across loop
    /// iterations (e.g. the sweeps of a lowered `iterate`) stay in one epoch and are caught.
    pub(crate) epoch: u64,
    /// Shadow memory per local buffer (parallel to `local`; empty when detection is off).
    pub(crate) shadow_local: Vec<Vec<ShadowCell>>,
    /// Declared names of the local buffers, for race diagnostics (parallel to `local`;
    /// empty when detection is off).
    pub(crate) local_names: Vec<String>,
}

/// Per-work-item state.
pub(crate) struct Thread {
    pub(crate) lid: [usize; 3],
    pub(crate) gid: [usize; 3],
    pub(crate) linear: usize,
    /// slot → value; `None` falls through to local arrays, then kernel parameters.
    pub(crate) vals: Vec<Option<GpuValue>>,
    pub(crate) private: Vec<Vec<f32>>,
    pub(crate) returned: bool,
}

pub(crate) struct Exec {
    pub(crate) config: LaunchConfig,
    pub(crate) global: Vec<Vec<f32>>,
    /// slot → kernel-argument value.
    pub(crate) params: Vec<Option<GpuValue>>,
    /// Name-keyed arguments, for resolving symbolic array lengths.
    params_by_name: VarMap<GpuValue>,
    pub(crate) functions: Vec<std::rc::Rc<SFunction>>,
    /// slot → name, for error messages.
    pub(crate) names: Vec<String>,
    pub(crate) counters: CostCounters,
    access_log: Vec<Access>,
    /// Reused scratch for the coalescing analysis: `(simd group, buffer, segment)` triples.
    seg_scratch: Vec<(usize, usize, i64)>,
    /// Reused scratch: access counts per SIMD group.
    simd_counts: Vec<(usize, usize)>,
    /// Whether the shadow-memory data-race detector is on for this launch.
    pub(crate) detect: bool,
    /// Shadow memory per global buffer (parallel to `global`; empty when detection is off).
    shadow_global: Vec<Vec<ShadowCell>>,
    /// Kernel-parameter names of the global buffers, for race diagnostics.
    global_names: Vec<String>,
}

impl Exec {
    pub(crate) fn run(&mut self, body: &[SStmt]) -> Result<(), VgpuError> {
        let groups = self.config.num_groups();
        let local = self.config.local;
        let nslots = self.names.len();
        for gz in 0..groups[2] {
            for gy in 0..groups[1] {
                for gx in 0..groups[0] {
                    let mut group = Group {
                        id: [gx, gy, gz],
                        linear: gx + groups[0] * (gy + groups[1] * gz),
                        local: Vec::new(),
                        local_slots: vec![None; nslots],
                        epoch: 0,
                        shadow_local: Vec::new(),
                        local_names: Vec::new(),
                    };
                    let mut threads = Vec::with_capacity(local.iter().product());
                    for lz in 0..local[2] {
                        for ly in 0..local[1] {
                            for lx in 0..local[0] {
                                let linear = lx + local[0] * (ly + local[1] * lz);
                                threads.push(Thread {
                                    lid: [lx, ly, lz],
                                    gid: [
                                        gx * local[0] + lx,
                                        gy * local[1] + ly,
                                        gz * local[2] + lz,
                                    ],
                                    linear,
                                    vals: vec![None; nslots],
                                    private: Vec::new(),
                                    returned: false,
                                });
                            }
                        }
                    }
                    self.counters.work_groups += 1;
                    self.counters.work_items += threads.len() as u64;
                    let mask = vec![true; threads.len()];
                    let rows_before = self.counters.lockstep_rows;
                    self.exec_block(body, &mut group, &mut threads, &mask)?;
                    // The group executed in lock step: its wall-clock is its row count, and
                    // the launch cannot finish before its busiest group.
                    let group_rows = self.counters.lockstep_rows - rows_before;
                    self.counters.group_span_rows = self.counters.group_span_rows.max(group_rows);
                }
            }
        }
        Ok(())
    }

    fn exec_block(
        &mut self,
        stmts: &[SStmt],
        group: &mut Group,
        threads: &mut Vec<Thread>,
        mask: &[bool],
    ) -> Result<(), VgpuError> {
        for stmt in stmts {
            self.exec_stmt(stmt, group, threads, mask)?;
        }
        Ok(())
    }

    fn active(&self, threads: &[Thread], mask: &[bool], i: usize) -> bool {
        mask[i] && !threads[i].returned
    }

    fn exec_stmt(
        &mut self,
        stmt: &SStmt,
        group: &mut Group,
        threads: &mut Vec<Thread>,
        mask: &[bool],
    ) -> Result<(), VgpuError> {
        // Every statement is one lock-step row for the whole group (blocks only recurse and
        // loop iterations charge one row per round below).
        if !matches!(stmt, SStmt::Block(_)) {
            self.counters.lockstep_rows += 1;
        }
        match stmt {
            SStmt::Return => {
                for i in 0..threads.len() {
                    if mask[i] {
                        threads[i].returned = true;
                    }
                }
                Ok(())
            }
            SStmt::Barrier => {
                // OpenCL requires a barrier to be reached by every live work item of the
                // group. A barrier under a lane-divergent branch or loop is undefined
                // behaviour on real hardware — report it instead of silently synchronising
                // the subset that arrived.
                let arrived = (0..threads.len())
                    .filter(|&i| self.active(threads, mask, i))
                    .count();
                let expected = threads.iter().filter(|t| !t.returned).count();
                if arrived != expected {
                    return Err(VgpuError::DivergentBarrier {
                        group: group.id,
                        arrived,
                        expected,
                    });
                }
                self.counters.barriers += 1;
                // Executed barriers are the *only* place the epoch advances: accesses
                // separated by anything else (including loop back-edges) stay in the same
                // epoch and can still conflict.
                group.epoch += 1;
                Ok(())
            }
            SStmt::Block(stmts) => self.exec_block(stmts, group, threads, mask),
            SStmt::DeclLocalArray { slot, len } => {
                // One allocation shared by the work group.
                let len = self.resolve_len(len)?;
                let idx = group.local.len();
                group.local.push(vec![0.0; len]);
                group.local_slots[*slot] = Some(idx);
                if self.detect {
                    group.shadow_local.push(vec![ShadowCell::default(); len]);
                    group.local_names.push(self.names[*slot].clone());
                }
                Ok(())
            }
            SStmt::DeclPrivateArray { slot, len } => {
                // A private array per work item (register blocking).
                let len = self.resolve_len(len)?;
                for i in 0..threads.len() {
                    if !self.active(threads, mask, i) {
                        continue;
                    }
                    let t = &mut threads[i];
                    let idx = t.private.len();
                    t.private.push(vec![0.0; len]);
                    t.vals[*slot] = Some(GpuValue::Ptr(Ptr {
                        space: AddrSpace::Private,
                        buffer: idx,
                        offset: 0,
                    }));
                }
                Ok(())
            }
            SStmt::DeclScalar { slot, init } => {
                for i in 0..threads.len() {
                    if !self.active(threads, mask, i) {
                        continue;
                    }
                    let value = match init {
                        Some(e) => self.eval(e, group, &mut threads[i])?,
                        None => GpuValue::Float(0.0),
                    };
                    threads[i].vals[*slot] = Some(value);
                }
                self.flush_accesses();
                Ok(())
            }
            SStmt::Assign { lhs, rhs } => {
                for i in 0..threads.len() {
                    if !self.active(threads, mask, i) {
                        continue;
                    }
                    let value = self.eval(rhs, group, &mut threads[i])?;
                    self.assign(lhs, value, group, &mut threads[i])?;
                }
                self.flush_accesses();
                Ok(())
            }
            SStmt::Expr(e) => {
                for i in 0..threads.len() {
                    if !self.active(threads, mask, i) {
                        continue;
                    }
                    self.eval(e, group, &mut threads[i])?;
                }
                self.flush_accesses();
                Ok(())
            }
            SStmt::If {
                cond,
                then,
                otherwise,
            } => {
                let mut then_mask = vec![false; threads.len()];
                let mut else_mask = vec![false; threads.len()];
                for i in 0..threads.len() {
                    if !self.active(threads, mask, i) {
                        continue;
                    }
                    let c = self.eval(cond, group, &mut threads[i])?.as_bool();
                    self.counters.int_ops += 1;
                    then_mask[i] = c;
                    else_mask[i] = !c;
                }
                self.flush_accesses();
                if then_mask.iter().any(|b| *b) {
                    self.exec_block(then, group, threads, &then_mask)?;
                }
                if let Some(otherwise) = otherwise {
                    if else_mask.iter().any(|b| *b) {
                        self.exec_block(otherwise, group, threads, &else_mask)?;
                    }
                }
                Ok(())
            }
            SStmt::For {
                slot,
                init,
                cond,
                step,
                body,
            } => {
                for i in 0..threads.len() {
                    if !self.active(threads, mask, i) {
                        continue;
                    }
                    let v = self.eval(init, group, &mut threads[i])?;
                    threads[i].vals[*slot] = Some(v);
                }
                self.flush_accesses();
                loop {
                    // One row per round: the group-wide condition check.
                    self.counters.lockstep_rows += 1;
                    let mut iter_mask = vec![false; threads.len()];
                    let mut any = false;
                    for i in 0..threads.len() {
                        if !self.active(threads, mask, i) {
                            continue;
                        }
                        let c = self.eval(cond, group, &mut threads[i])?.as_bool();
                        self.counters.int_ops += 1;
                        if c {
                            iter_mask[i] = true;
                            any = true;
                            self.counters.loop_iterations += 1;
                        }
                    }
                    self.flush_accesses();
                    if !any {
                        break;
                    }
                    self.exec_block(body, group, threads, &iter_mask)?;
                    for i in 0..threads.len() {
                        if !iter_mask[i] || threads[i].returned {
                            continue;
                        }
                        let s = self.eval(step, group, &mut threads[i])?;
                        let current = threads[i].vals[*slot]
                            .as_ref()
                            .ok_or_else(|| VgpuError::UnknownVariable(self.names[*slot].clone()))?;
                        let next = GpuValue::Int(current.as_i64() + s.as_i64());
                        self.counters.int_ops += 1;
                        threads[i].vals[*slot] = Some(next);
                    }
                    self.flush_accesses();
                }
                Ok(())
            }
        }
    }

    pub(crate) fn resolve_len(&self, e: &ArithExpr) -> Result<usize, VgpuError> {
        let lookup = |name: &str| self.params_by_name.get(name).map(GpuValue::as_i64);
        let v = e
            .evaluate_with(&lookup)
            .map_err(|_| VgpuError::SymbolicLength(e.to_string()))?;
        usize::try_from(v).map_err(|_| VgpuError::SymbolicLength(e.to_string()))
    }

    // ------------------------------------------------------------------ expression evaluation

    /// Resolves a variable slot: thread values shadow local arrays, which shadow kernel
    /// parameters (the same precedence the name-based environments had).
    fn lookup_var(
        &self,
        slot: usize,
        group: &Group,
        thread: &Thread,
    ) -> Result<GpuValue, VgpuError> {
        if let Some(v) = &thread.vals[slot] {
            return Ok(v.clone());
        }
        if let Some(idx) = group.local_slots[slot] {
            return Ok(GpuValue::Ptr(Ptr {
                space: AddrSpace::Local,
                buffer: idx,
                offset: 0,
            }));
        }
        if let Some(v) = &self.params[slot] {
            return Ok(v.clone());
        }
        Err(VgpuError::UnknownVariable(self.names[slot].clone()))
    }

    #[allow(clippy::too_many_lines)]
    fn eval(
        &mut self,
        e: &SExpr,
        group: &mut Group,
        thread: &mut Thread,
    ) -> Result<GpuValue, VgpuError> {
        match e {
            SExpr::Int(v) => Ok(GpuValue::Int(*v)),
            SExpr::Float(v) => Ok(GpuValue::Float(*v)),
            SExpr::Var(slot) => self.lookup_var(*slot, group, thread),
            SExpr::Index(a) => {
                let v = self.eval_index_counting(a, thread)?;
                Ok(GpuValue::Int(v))
            }
            SExpr::Bin(op, a, b) => {
                let a = self.eval(a, group, thread)?;
                let b = self.eval(b, group, thread)?;
                self.eval_bin(*op, a, b)
            }
            SExpr::Un(op, a) => {
                let v = self.eval(a, group, thread)?;
                Ok(match op {
                    CUnOp::Neg => {
                        self.counters.flops += 1;
                        match v {
                            GpuValue::Int(i) => GpuValue::Int(-i),
                            other => GpuValue::Float(-other.as_f64()),
                        }
                    }
                    CUnOp::Not => {
                        self.counters.int_ops += 1;
                        GpuValue::Bool(!v.as_bool())
                    }
                })
            }
            SExpr::WorkItem(kind, dim) => {
                let dim = self.eval(dim, group, thread)?.as_i64() as usize;
                let groups = self.config.num_groups();
                let v = match kind {
                    WorkItemFn::GlobalId => thread.gid[dim],
                    WorkItemFn::LocalId => thread.lid[dim],
                    WorkItemFn::GroupId => group.id[dim],
                    WorkItemFn::GlobalSize => self.config.global[dim],
                    WorkItemFn::LocalSize => self.config.local[dim],
                    WorkItemFn::NumGroups => groups[dim],
                };
                Ok(GpuValue::Int(v as i64))
            }
            SExpr::VLoad(width, idx, ptr) => {
                let idx = self.eval(idx, group, thread)?.as_i64();
                let ptr = self
                    .eval(ptr, group, thread)?
                    .as_ptr()
                    .ok_or_else(|| VgpuError::NotAPointer(format!("vload{width}")))?;
                let mut lanes = Vec::with_capacity(*width);
                for lane in 0..*width {
                    lanes.push(self.load(
                        ptr,
                        idx * *width as i64 + lane as i64,
                        group,
                        thread,
                        *width,
                    )?);
                }
                self.counters.vector_accesses += *width as u64;
                Ok(GpuValue::Vector(lanes))
            }
            SExpr::VStore(width, value, idx, ptr) => {
                let value = self.eval(value, group, thread)?;
                let idx = self.eval(idx, group, thread)?.as_i64();
                let ptr = self
                    .eval(ptr, group, thread)?
                    .as_ptr()
                    .ok_or_else(|| VgpuError::NotAPointer(format!("vstore{width}")))?;
                let lanes = match value {
                    GpuValue::Vector(lanes) => lanes,
                    other => vec![other; *width],
                };
                for (lane, v) in lanes.iter().enumerate() {
                    self.store(
                        ptr,
                        idx * *width as i64 + lane as i64,
                        v.as_f64(),
                        group,
                        thread,
                        *width,
                    )?;
                }
                self.counters.vector_accesses += *width as u64;
                Ok(GpuValue::Int(0))
            }
            SExpr::Math1(kind, a) => {
                let v = self.eval(a, group, thread)?.as_f64();
                self.counters.flops += 4;
                let out = match kind {
                    Math1::Sqrt => v.sqrt(),
                    Math1::Rsqrt => 1.0 / v.sqrt(),
                    Math1::Fabs => v.abs(),
                    Math1::Exp => v.exp(),
                    Math1::Log => v.ln(),
                    Math1::Floor => v.floor(),
                };
                Ok(GpuValue::Float(out))
            }
            SExpr::Math2(kind, a, b) => {
                let a = self.eval(a, group, thread)?.as_f64();
                let b = self.eval(b, group, thread)?.as_f64();
                self.counters.flops += 1;
                let out = match kind {
                    Math2::Min => a.min(b),
                    Math2::Max => a.max(b),
                };
                Ok(GpuValue::Float(out))
            }
            SExpr::Mad(a, b, c) => {
                let a = self.eval(a, group, thread)?.as_f64();
                let b = self.eval(b, group, thread)?.as_f64();
                let c = self.eval(c, group, thread)?.as_f64();
                self.counters.flops += 2;
                Ok(GpuValue::Float(a * b + c))
            }
            SExpr::CallFun(idx, args) => {
                let fun = std::rc::Rc::clone(&self.functions[*idx]);
                if fun.params.len() != args.len() {
                    return Err(VgpuError::ArgumentMismatch {
                        expected: fun.params.len(),
                        found: args.len(),
                    });
                }
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(a, group, thread)?);
                }
                // Bind parameters with save/restore so nested calls and loop variables are
                // preserved (moving shadowed values out instead of cloning them).
                let saved: Vec<Option<GpuValue>> =
                    fun.params.iter().map(|s| thread.vals[*s].take()).collect();
                for (s, v) in fun.params.iter().zip(values) {
                    thread.vals[*s] = Some(v);
                }
                let result = self.eval(&fun.body, group, thread);
                for (s, old) in fun.params.iter().zip(saved) {
                    thread.vals[*s] = old;
                }
                result
            }
            SExpr::UnknownCall(name) => Err(VgpuError::UnknownFunction(name.clone())),
            SExpr::ArrayAccess(arr, idx) => {
                let ptr = self
                    .eval(arr, group, thread)?
                    .as_ptr()
                    .ok_or_else(|| VgpuError::NotAPointer("array expression".to_string()))?;
                let idx = self.eval(idx, group, thread)?.as_i64();
                self.load(ptr, idx, group, thread, 1)
            }
            SExpr::Field(obj, idx, field) => {
                // Fast path for `var._i`: project the field straight out of the thread
                // state instead of cloning the whole struct value first.
                if let SExpr::Var(slot) = &**obj {
                    if let Some(GpuValue::Struct(fields) | GpuValue::Vector(fields)) =
                        &thread.vals[*slot]
                    {
                        return fields
                            .get(*idx)
                            .cloned()
                            .ok_or_else(|| VgpuError::UnknownVariable(format!("field {field}")));
                    }
                }
                let v = self.eval(obj, group, thread)?;
                match v {
                    GpuValue::Struct(fields) | GpuValue::Vector(fields) => fields
                        .get(*idx)
                        .cloned()
                        .ok_or_else(|| VgpuError::UnknownVariable(format!("field {field}"))),
                    other => Ok(other),
                }
            }
            SExpr::Cast(kind, inner) => {
                let v = self.eval(inner, group, thread)?;
                Ok(match kind {
                    CastKind::Int => GpuValue::Int(v.as_i64()),
                    CastKind::Float => GpuValue::Float(v.as_f64()),
                    CastKind::Bool => GpuValue::Bool(v.as_bool()),
                    CastKind::Keep => v,
                })
            }
            SExpr::Ternary(c, t, other) => {
                let c = self.eval(c, group, thread)?.as_bool();
                self.counters.int_ops += 1;
                if c {
                    self.eval(t, group, thread)
                } else {
                    self.eval(other, group, thread)
                }
            }
            SExpr::StructLit(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for f in fields {
                    out.push(self.eval(f, group, thread)?);
                }
                Ok(GpuValue::Struct(out))
            }
            SExpr::VectorLit(elems) => {
                let mut out = Vec::with_capacity(elems.len());
                for e in elems {
                    out.push(self.eval(e, group, thread)?);
                }
                Ok(GpuValue::Vector(out))
            }
        }
    }

    /// Evaluates an index expression while charging the cost counters in the same walk
    /// (the counts match `ArithExpr::op_count`/`div_mod_count`, which a naive implementation
    /// would recompute with two extra tree walks per evaluation — this runs per memory
    /// access in the innermost interpretation loop).
    fn eval_index_counting(&mut self, a: &SIndex, thread: &Thread) -> Result<i64, VgpuError> {
        match a {
            SIndex::Cst(c) => Ok(*c),
            SIndex::Var(slot) => thread.vals[*slot]
                .as_ref()
                .map(GpuValue::as_i64)
                .or_else(|| self.params[*slot].as_ref().map(GpuValue::as_i64))
                .ok_or_else(|| VgpuError::UnknownVariable(self.names[*slot].clone())),
            SIndex::Sum(ts) => {
                self.counters.int_ops += ts.len().saturating_sub(1) as u64;
                let mut acc = 0i64;
                for t in ts {
                    acc += self.eval_index_counting(t, thread)?;
                }
                Ok(acc)
            }
            SIndex::Prod(fs) => {
                self.counters.int_ops += fs.len().saturating_sub(1) as u64;
                let mut acc = 1i64;
                for f in fs {
                    acc *= self.eval_index_counting(f, thread)?;
                }
                Ok(acc)
            }
            SIndex::IntDiv(a, b) => {
                self.counters.div_mod_ops += 1;
                let b = self.eval_index_counting(b, thread)?;
                if b == 0 {
                    return Err(VgpuError::DivisionByZero);
                }
                Ok(self.eval_index_counting(a, thread)?.div_euclid(b))
            }
            SIndex::Mod(a, b) => {
                self.counters.div_mod_ops += 1;
                let b = self.eval_index_counting(b, thread)?;
                if b == 0 {
                    return Err(VgpuError::DivisionByZero);
                }
                Ok(self.eval_index_counting(a, thread)?.rem_euclid(b))
            }
            SIndex::Pow(b, e) => {
                self.counters.int_ops += u64::from(e.saturating_sub(1));
                Ok(self.eval_index_counting(b, thread)?.pow(*e))
            }
            SIndex::Min(a, b) => {
                self.counters.int_ops += 1;
                Ok(self
                    .eval_index_counting(a, thread)?
                    .min(self.eval_index_counting(b, thread)?))
            }
            SIndex::Max(a, b) => {
                self.counters.int_ops += 1;
                Ok(self
                    .eval_index_counting(a, thread)?
                    .max(self.eval_index_counting(b, thread)?))
            }
        }
    }

    fn eval_bin(&mut self, op: CBinOp, a: GpuValue, b: GpuValue) -> Result<GpuValue, VgpuError> {
        // Pointer arithmetic and comparison.
        if let Some(p) = a.as_ptr() {
            return Ok(match op {
                CBinOp::Add => GpuValue::Ptr(Ptr {
                    offset: p.offset + b.as_i64(),
                    ..p
                }),
                CBinOp::Sub => GpuValue::Ptr(Ptr {
                    offset: p.offset - b.as_i64(),
                    ..p
                }),
                CBinOp::Eq => GpuValue::Bool(Some(p) == b.as_ptr()),
                CBinOp::Ne => GpuValue::Bool(Some(p) != b.as_ptr()),
                _ => return Err(VgpuError::NotAPointer("invalid pointer operation".into())),
            });
        }
        // Lane-wise vector arithmetic.
        if let GpuValue::Vector(lanes_a) = &a {
            let out: Result<Vec<GpuValue>, VgpuError> = lanes_a
                .iter()
                .enumerate()
                .map(|(i, la)| {
                    let lb = match &b {
                        GpuValue::Vector(lanes_b) => lanes_b[i].clone(),
                        other => other.clone(),
                    };
                    self.eval_bin(op, la.clone(), lb)
                })
                .collect();
            return Ok(GpuValue::Vector(out?));
        }
        if let (GpuValue::Int(x), GpuValue::Int(y)) = (&a, &b) {
            let (x, y) = (*x, *y);
            return Ok(match op {
                CBinOp::Add | CBinOp::Sub | CBinOp::Mul => {
                    self.counters.int_ops += 1;
                    GpuValue::Int(match op {
                        CBinOp::Add => x + y,
                        CBinOp::Sub => x - y,
                        _ => x * y,
                    })
                }
                CBinOp::Div | CBinOp::Mod => {
                    self.counters.div_mod_ops += 1;
                    if y == 0 {
                        return Err(VgpuError::DivisionByZero);
                    }
                    GpuValue::Int(if op == CBinOp::Div {
                        x.div_euclid(y)
                    } else {
                        x.rem_euclid(y)
                    })
                }
                _ => {
                    self.counters.int_ops += 1;
                    GpuValue::Bool(compare(op, x as f64, y as f64))
                }
            });
        }
        // Mixed / floating point.
        let (x, y) = (a.as_f64(), b.as_f64());
        Ok(match op {
            CBinOp::Add | CBinOp::Sub | CBinOp::Mul | CBinOp::Div => {
                self.counters.flops += 1;
                GpuValue::Float(match op {
                    CBinOp::Add => x + y,
                    CBinOp::Sub => x - y,
                    CBinOp::Mul => x * y,
                    _ => x / y,
                })
            }
            CBinOp::Mod => {
                self.counters.div_mod_ops += 1;
                GpuValue::Float(x % y)
            }
            _ => {
                self.counters.int_ops += 1;
                GpuValue::Bool(compare(op, x, y))
            }
        })
    }

    // ------------------------------------------------------------------ memory

    /// Shadow-memory work-item id: `1 + global linear id`, so `0` is free to mean
    /// "untouched / written by the host".
    fn thread_uid(&self, thread: &Thread) -> usize {
        1 + thread.gid[0]
            + self.config.global[0] * (thread.gid[1] + self.config.global[1] * thread.gid[2])
    }

    pub(crate) fn load(
        &mut self,
        ptr: Ptr,
        idx: i64,
        group: &mut Group,
        thread: &Thread,
        vector_width: usize,
    ) -> Result<GpuValue, VgpuError> {
        let addr = ptr.offset + idx;
        let value = match ptr.space {
            AddrSpace::Global => {
                let buf = &self.global[ptr.buffer];
                let slot = usize::try_from(addr)
                    .ok()
                    .filter(|a| *a < buf.len())
                    .ok_or(VgpuError::OutOfBounds {
                        space: "global",
                        index: addr,
                        len: buf.len(),
                    })?;
                self.counters.global_accesses += 1;
                self.access_log.push(Access {
                    thread: thread.linear,
                    buffer: ptr.buffer,
                    addr,
                    width: vector_width,
                });
                if self.detect {
                    let me = self.thread_uid(thread);
                    let cell = &mut self.shadow_global[ptr.buffer][slot];
                    if cell.writer != 0
                        && cell.writer != me
                        && (cell.writer_group != group.linear || cell.write_epoch == group.epoch)
                    {
                        return Err(data_race(
                            &self.global_names[ptr.buffer],
                            addr,
                            cell.writer,
                            me,
                            group.epoch,
                        ));
                    }
                    cell.reader = me;
                    cell.reader_group = group.linear;
                    cell.read_epoch = group.epoch;
                }
                self.global[ptr.buffer][slot]
            }
            AddrSpace::Local => {
                let buf = &group.local[ptr.buffer];
                let slot = usize::try_from(addr)
                    .ok()
                    .filter(|a| *a < buf.len())
                    .ok_or(VgpuError::OutOfBounds {
                        space: "local",
                        index: addr,
                        len: buf.len(),
                    })?;
                self.counters.local_accesses += 1;
                let value = buf[slot];
                if self.detect {
                    let me = self.thread_uid(thread);
                    let cell = &mut group.shadow_local[ptr.buffer][slot];
                    if cell.writer != 0 && cell.writer != me && cell.write_epoch == group.epoch {
                        return Err(data_race(
                            &group.local_names[ptr.buffer],
                            addr,
                            cell.writer,
                            me,
                            group.epoch,
                        ));
                    }
                    cell.reader = me;
                    cell.reader_group = group.linear;
                    cell.read_epoch = group.epoch;
                }
                return Ok(GpuValue::Float(f64::from(value)));
            }
            AddrSpace::Private => {
                let buf = &thread.private[ptr.buffer];
                let slot = usize::try_from(addr)
                    .ok()
                    .filter(|a| *a < buf.len())
                    .ok_or(VgpuError::OutOfBounds {
                        space: "private",
                        index: addr,
                        len: buf.len(),
                    })?;
                self.counters.private_accesses += 1;
                buf[slot]
            }
        };
        Ok(GpuValue::Float(f64::from(value)))
    }

    pub(crate) fn store(
        &mut self,
        ptr: Ptr,
        idx: i64,
        value: f64,
        group: &mut Group,
        thread: &mut Thread,
        vector_width: usize,
    ) -> Result<(), VgpuError> {
        let addr = ptr.offset + idx;
        match ptr.space {
            AddrSpace::Global => {
                let buf = &mut self.global[ptr.buffer];
                let len = buf.len();
                let slot = usize::try_from(addr).ok().filter(|a| *a < len).ok_or(
                    VgpuError::OutOfBounds {
                        space: "global",
                        index: addr,
                        len,
                    },
                )?;
                // A store of a bitwise-identical value cannot change the outcome on any
                // interleaving: treat it as a no-op for race purposes (redundant
                // group-uniform writes are benign in lock-step execution).
                if self.detect && (value as f32).to_bits() != buf[slot].to_bits() {
                    let me = self.thread_uid(thread);
                    let cell = &mut self.shadow_global[ptr.buffer][slot];
                    let conflicting_writer = cell.writer != 0
                        && cell.writer != me
                        && (cell.writer_group != group.linear || cell.write_epoch == group.epoch);
                    let conflicting_reader = cell.reader != 0
                        && cell.reader != me
                        && (cell.reader_group != group.linear || cell.read_epoch == group.epoch);
                    if conflicting_writer || conflicting_reader {
                        let other = if conflicting_writer {
                            cell.writer
                        } else {
                            cell.reader
                        };
                        return Err(data_race(
                            &self.global_names[ptr.buffer],
                            addr,
                            other,
                            me,
                            group.epoch,
                        ));
                    }
                    cell.writer = me;
                    cell.writer_group = group.linear;
                    cell.write_epoch = group.epoch;
                }
                let buf = &mut self.global[ptr.buffer];
                buf[slot] = value as f32;
                self.counters.global_accesses += 1;
                self.access_log.push(Access {
                    thread: thread.linear,
                    buffer: ptr.buffer,
                    addr,
                    width: vector_width,
                });
            }
            AddrSpace::Local => {
                let buf = &mut group.local[ptr.buffer];
                let len = buf.len();
                let slot = usize::try_from(addr).ok().filter(|a| *a < len).ok_or(
                    VgpuError::OutOfBounds {
                        space: "local",
                        index: addr,
                        len,
                    },
                )?;
                if self.detect && (value as f32).to_bits() != buf[slot].to_bits() {
                    let me = self.thread_uid(thread);
                    let cell = &mut group.shadow_local[ptr.buffer][slot];
                    let conflicting_writer =
                        cell.writer != 0 && cell.writer != me && cell.write_epoch == group.epoch;
                    let conflicting_reader =
                        cell.reader != 0 && cell.reader != me && cell.read_epoch == group.epoch;
                    if conflicting_writer || conflicting_reader {
                        let other = if conflicting_writer {
                            cell.writer
                        } else {
                            cell.reader
                        };
                        return Err(data_race(
                            &group.local_names[ptr.buffer],
                            addr,
                            other,
                            me,
                            group.epoch,
                        ));
                    }
                    cell.writer = me;
                    cell.writer_group = group.linear;
                    cell.write_epoch = group.epoch;
                }
                group.local[ptr.buffer][slot] = value as f32;
                self.counters.local_accesses += 1;
            }
            AddrSpace::Private => {
                let buf = &mut thread.private[ptr.buffer];
                let len = buf.len();
                let slot = usize::try_from(addr).ok().filter(|a| *a < len).ok_or(
                    VgpuError::OutOfBounds {
                        space: "private",
                        index: addr,
                        len,
                    },
                )?;
                buf[slot] = value as f32;
                self.counters.private_accesses += 1;
            }
        }
        Ok(())
    }

    fn assign(
        &mut self,
        lhs: &SLhs,
        value: GpuValue,
        group: &mut Group,
        thread: &mut Thread,
    ) -> Result<(), VgpuError> {
        match lhs {
            SLhs::Var(slot) => {
                thread.vals[*slot] = Some(value);
                Ok(())
            }
            SLhs::Array(arr, idx) => {
                let ptr = self
                    .eval(arr, group, thread)?
                    .as_ptr()
                    .ok_or_else(|| VgpuError::NotAPointer("array expression".to_string()))?;
                let idx = self.eval(idx, group, thread)?.as_i64();
                if !value.is_scalar() {
                    return Err(VgpuError::InvalidStore("array element".to_string()));
                }
                self.store(ptr, idx, value.as_f64(), group, thread, 1)
            }
            SLhs::FieldOfVar(slot, idx) => {
                let mut current = thread.vals[*slot]
                    .take()
                    .unwrap_or(GpuValue::Struct(vec![GpuValue::Float(0.0); idx + 1]));
                if let GpuValue::Struct(fields) | GpuValue::Vector(fields) = &mut current {
                    if fields.len() <= *idx {
                        fields.resize(idx + 1, GpuValue::Float(0.0));
                    }
                    fields[*idx] = value;
                }
                thread.vals[*slot] = Some(current);
                Ok(())
            }
            SLhs::Invalid(rendering) => Err(VgpuError::InvalidStore(rendering.clone())),
        }
    }

    /// Groups the global accesses of the last lock-step statement execution into memory
    /// transactions per SIMD group and charges uncoalesced accesses.
    ///
    /// Runs after every statement execution, so it reuses pre-allocated scratch vectors
    /// (linear dedup over a handful of distinct segments) instead of building hash
    /// containers.
    pub(crate) fn flush_accesses(&mut self) {
        if self.access_log.is_empty() {
            return;
        }
        self.seg_scratch.clear();
        self.simd_counts.clear();
        let log = std::mem::take(&mut self.access_log);
        for access in &log {
            let simd_group = access.thread / COALESCE_GROUP;
            // A vector access may straddle two segments; charge both.
            let first = access.addr.div_euclid(SEGMENT_ELEMS);
            let last = (access.addr + access.width.max(1) as i64 - 1).div_euclid(SEGMENT_ELEMS);
            let first_entry = (simd_group, access.buffer, first);
            if !self.seg_scratch.contains(&first_entry) {
                self.seg_scratch.push(first_entry);
            }
            let last_entry = (simd_group, access.buffer, last);
            if last != first && !self.seg_scratch.contains(&last_entry) {
                self.seg_scratch.push(last_entry);
            }
            match self.simd_counts.iter_mut().find(|(g, _)| *g == simd_group) {
                Some((_, c)) => *c += 1,
                None => self.simd_counts.push((simd_group, 1)),
            }
        }
        // Hand the (emptied) log buffer back so its capacity is reused.
        self.access_log = log;
        self.access_log.clear();
        let segments = &self.seg_scratch;
        for &(simd_group, accesses) in &self.simd_counts {
            let ideal = accesses.div_ceil(COALESCE_GROUP).max(1);
            let transactions = segments.iter().filter(|(g, _, _)| *g == simd_group).count();
            self.counters.global_transactions += transactions as u64;
            self.counters.uncoalesced_accesses += transactions.saturating_sub(ideal) as u64;
        }
    }
}

/// Builds a [`VgpuError::DataRace`] from two shadow-memory uids (`1 + global linear id`),
/// reporting the plain global linear work-item ids, earlier access first.
fn data_race(buffer: &str, index: i64, earlier: usize, current: usize, epoch: u64) -> VgpuError {
    VgpuError::DataRace {
        buffer: buffer.to_string(),
        index,
        writers: [earlier - 1, current - 1],
        epoch,
    }
}

pub(crate) fn compare(op: CBinOp, x: f64, y: f64) -> bool {
    match op {
        CBinOp::Lt => x < y,
        CBinOp::Le => x <= y,
        CBinOp::Gt => x > y,
        CBinOp::Ge => x >= y,
        CBinOp::Eq => x == y,
        CBinOp::Ne => x != y,
        CBinOp::And => x != 0.0 && y != 0.0,
        CBinOp::Or => x != 0.0 || y != 0.0,
        _ => false,
    }
}

fn field_index(field: &str) -> usize {
    field
        .trim_start_matches('_')
        .trim_start_matches('s')
        .parse::<usize>()
        .unwrap_or(match field {
            "x" => 0,
            "y" => 1,
            "z" => 2,
            "w" => 3,
            _ => 0,
        })
}

fn vector_width(name: &str, prefix: &str) -> Option<usize> {
    name.strip_prefix(prefix)
        .and_then(|rest| rest.parse::<usize>().ok())
        .filter(|w| matches!(w, 2 | 4 | 8 | 16))
}
// The unit tests exercise the launch surface through the deprecated `VirtualGpu` shims on
// purpose: the shims route through `ExecutionRequest` with `EngineSelection::Auto`, so every
// one of these assertions doubles as differential coverage of the bytecode tier against the
// pinned expectations of the interpreter era.
#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use lift_ocl::{CFunction, CType, Fence, Kernel, KernelParam};

    fn copy_kernel() -> Module {
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "copy".into(),
            params: vec![
                KernelParam {
                    name: "in".into(),
                    ty: CType::const_restrict_pointer(CType::Float, AddrSpace::Global),
                },
                KernelParam {
                    name: "out".into(),
                    ty: CType::pointer(CType::Float, AddrSpace::Global),
                },
            ],
            body: vec![CStmt::Assign {
                lhs: CExpr::var("out").at(CExpr::global_id(0)),
                rhs: CExpr::var("in").at(CExpr::global_id(0)),
            }],
        });
        m
    }

    #[test]
    fn launch_inputs_and_results_are_send_and_sync() {
        // The exploration driver scores candidates from scoped worker threads: everything a
        // launch consumes or produces must cross (or be shared across) thread boundaries.
        // Execution-internal state (`Exec`, threads, lowered functions) is thread-local and
        // deliberately exempt.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VirtualGpu>();
        assert_send_sync::<Module>();
        assert_send_sync::<KernelArg>();
        assert_send_sync::<LaunchResult>();
        assert_send_sync::<VgpuError>();
        assert_send_sync::<LaunchConfig>();
        assert_send_sync::<crate::DeviceProfile>();
        assert_send_sync::<crate::CostCounters>();
    }

    #[test]
    fn copy_kernel_copies() {
        let m = copy_kernel();
        let gpu = VirtualGpu::new();
        let input: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let result = gpu
            .launch(
                &m,
                "copy",
                LaunchConfig::d1(64, 16),
                vec![KernelArg::Buffer(input.clone()), KernelArg::zeros(64)],
            )
            .expect("runs");
        assert_eq!(result.buffers[1], input);
        assert_eq!(result.report.counters.work_items, 64);
        assert_eq!(result.report.counters.work_groups, 4);
        assert!(result.report.counters.global_accesses >= 128);
    }

    #[test]
    fn unknown_kernel_is_reported() {
        let m = copy_kernel();
        let err = VirtualGpu::new()
            .launch(&m, "missing", LaunchConfig::d1(1, 1), vec![])
            .unwrap_err();
        assert_eq!(err, VgpuError::UnknownKernel("missing".into()));
    }

    #[test]
    fn argument_count_is_checked() {
        let m = copy_kernel();
        let err = VirtualGpu::new()
            .launch(
                &m,
                "copy",
                LaunchConfig::d1(16, 16),
                vec![KernelArg::zeros(16)],
            )
            .unwrap_err();
        assert_eq!(
            err,
            VgpuError::ArgumentMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn out_of_bounds_access_is_reported() {
        let m = copy_kernel();
        let err = VirtualGpu::new()
            .launch(
                &m,
                "copy",
                LaunchConfig::d1(64, 16),
                vec![KernelArg::Buffer(vec![0.0; 8]), KernelArg::zeros(64)],
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                VgpuError::OutOfBounds {
                    space: "global",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn for_loop_and_user_function() {
        // out[gid] = sum of in[gid*4 .. gid*4+4] via a user "add" function.
        let mut m = Module::new();
        m.add_function(CFunction {
            name: "add".into(),
            ret: CType::Float,
            params: vec![("a".into(), CType::Float), ("b".into(), CType::Float)],
            body: CExpr::var("a").add(CExpr::var("b")),
        });
        m.kernels.push(Kernel {
            name: "sum4".into(),
            params: vec![
                KernelParam {
                    name: "in".into(),
                    ty: CType::const_restrict_pointer(CType::Float, AddrSpace::Global),
                },
                KernelParam {
                    name: "out".into(),
                    ty: CType::pointer(CType::Float, AddrSpace::Global),
                },
            ],
            body: vec![
                CStmt::Decl {
                    ty: CType::Float,
                    name: "acc".into(),
                    addr: None,
                    array_len: None,
                    init: Some(CExpr::float(0.0)),
                },
                CStmt::For {
                    var: "i".into(),
                    init: CExpr::int(0),
                    cond: CExpr::var("i").lt(CExpr::int(4)),
                    step: CExpr::int(1),
                    body: vec![CStmt::Assign {
                        lhs: CExpr::var("acc"),
                        rhs: CExpr::Call(
                            "add".into(),
                            vec![
                                CExpr::var("acc"),
                                CExpr::var("in").at(CExpr::global_id(0)
                                    .mul(CExpr::int(4))
                                    .add(CExpr::var("i"))),
                            ],
                        ),
                    }],
                },
                CStmt::Assign {
                    lhs: CExpr::var("out").at(CExpr::global_id(0)),
                    rhs: CExpr::var("acc"),
                },
            ],
        });
        let input: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let result = VirtualGpu::new()
            .launch(
                &m,
                "sum4",
                LaunchConfig::d1(8, 8),
                vec![KernelArg::Buffer(input), KernelArg::zeros(8)],
            )
            .expect("runs");
        let expected: Vec<f32> = (0..8)
            .map(|g| (0..4).map(|i| (g * 4 + i) as f32).sum())
            .collect();
        assert_eq!(result.buffers[1], expected);
        assert!(result.report.counters.loop_iterations >= 32);
        assert!(result.report.counters.flops >= 32);
    }

    #[test]
    fn local_memory_and_barrier() {
        // Reverse the elements of each work group through local memory.
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "reverse".into(),
            params: vec![
                KernelParam {
                    name: "in".into(),
                    ty: CType::const_restrict_pointer(CType::Float, AddrSpace::Global),
                },
                KernelParam {
                    name: "out".into(),
                    ty: CType::pointer(CType::Float, AddrSpace::Global),
                },
            ],
            body: vec![
                CStmt::Decl {
                    ty: CType::Float,
                    name: "tmp".into(),
                    addr: Some(AddrSpace::Local),
                    array_len: Some(ArithExpr::cst(8)),
                    init: None,
                },
                CStmt::Assign {
                    lhs: CExpr::var("tmp").at(CExpr::local_id(0)),
                    rhs: CExpr::var("in").at(CExpr::global_id(0)),
                },
                CStmt::Barrier(Fence::local()),
                CStmt::Assign {
                    lhs: CExpr::var("out").at(CExpr::global_id(0)),
                    rhs: CExpr::var("tmp").at(CExpr::int(7).sub(CExpr::local_id(0))),
                },
            ],
        });
        let input: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let result = VirtualGpu::new()
            .launch(
                &m,
                "reverse",
                LaunchConfig::d1(16, 8),
                vec![KernelArg::Buffer(input), KernelArg::zeros(16)],
            )
            .expect("runs");
        let expected: Vec<f32> = vec![
            7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.0, 15.0, 14.0, 13.0, 12.0, 11.0, 10.0, 9.0, 8.0,
        ];
        assert_eq!(result.buffers[1], expected);
        assert_eq!(result.report.counters.barriers, 2);
        assert!(result.report.counters.local_accesses >= 32);
    }

    #[test]
    fn divergent_if_uses_masks() {
        // Only the first half of each work group writes.
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "half".into(),
            params: vec![KernelParam {
                name: "out".into(),
                ty: CType::pointer(CType::Float, AddrSpace::Global),
            }],
            body: vec![CStmt::If {
                cond: CExpr::local_id(0).lt(CExpr::int(4)),
                then: vec![CStmt::Assign {
                    lhs: CExpr::var("out").at(CExpr::global_id(0)),
                    rhs: CExpr::float(1.0),
                }],
                otherwise: Some(vec![CStmt::Assign {
                    lhs: CExpr::var("out").at(CExpr::global_id(0)),
                    rhs: CExpr::float(2.0),
                }]),
            }],
        });
        let result = VirtualGpu::new()
            .launch(
                &m,
                "half",
                LaunchConfig::d1(8, 8),
                vec![KernelArg::zeros(8)],
            )
            .expect("runs");
        assert_eq!(
            result.buffers[0],
            vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]
        );
    }

    #[test]
    fn vector_load_store_round_trip() {
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "vcopy".into(),
            params: vec![
                KernelParam {
                    name: "in".into(),
                    ty: CType::const_restrict_pointer(CType::Float, AddrSpace::Global),
                },
                KernelParam {
                    name: "out".into(),
                    ty: CType::pointer(CType::Float, AddrSpace::Global),
                },
            ],
            body: vec![CStmt::Expr(CExpr::Call(
                "vstore4".into(),
                vec![
                    CExpr::Call("vload4".into(), vec![CExpr::global_id(0), CExpr::var("in")]),
                    CExpr::global_id(0),
                    CExpr::var("out"),
                ],
            ))],
        });
        let input: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let result = VirtualGpu::new()
            .launch(
                &m,
                "vcopy",
                LaunchConfig::d1(8, 8),
                vec![KernelArg::Buffer(input.clone()), KernelArg::zeros(32)],
            )
            .expect("runs");
        assert_eq!(result.buffers[1], input);
        assert!(result.report.counters.vector_accesses >= 64);
    }

    #[test]
    fn coalesced_accesses_produce_fewer_transactions_than_strided() {
        // Coalesced: out[gid] = in[gid]. Strided: out[gid] = in[gid * 32].
        let make = |stride: i64| {
            let mut m = Module::new();
            m.kernels.push(Kernel {
                name: "k".into(),
                params: vec![
                    KernelParam {
                        name: "in".into(),
                        ty: CType::const_restrict_pointer(CType::Float, AddrSpace::Global),
                    },
                    KernelParam {
                        name: "out".into(),
                        ty: CType::pointer(CType::Float, AddrSpace::Global),
                    },
                ],
                body: vec![CStmt::Assign {
                    lhs: CExpr::var("out").at(CExpr::global_id(0)),
                    rhs: CExpr::var("in").at(CExpr::global_id(0).mul(CExpr::int(stride))),
                }],
            });
            m
        };
        let gpu = VirtualGpu::new();
        let coalesced = gpu
            .launch(
                &make(1),
                "k",
                LaunchConfig::d1(64, 64),
                vec![KernelArg::Buffer(vec![0.0; 64 * 32]), KernelArg::zeros(64)],
            )
            .unwrap();
        let strided = gpu
            .launch(
                &make(32),
                "k",
                LaunchConfig::d1(64, 64),
                vec![KernelArg::Buffer(vec![0.0; 64 * 32]), KernelArg::zeros(64)],
            )
            .unwrap();
        assert!(
            strided.report.counters.global_transactions
                > 4 * coalesced.report.counters.global_transactions,
            "strided {} vs coalesced {}",
            strided.report.counters.global_transactions,
            coalesced.report.counters.global_transactions
        );
        assert!(strided.report.counters.uncoalesced_accesses > 0);
        assert_eq!(coalesced.report.counters.uncoalesced_accesses, 0);
    }

    #[test]
    fn divergent_barrier_is_a_typed_error() {
        // barrier() inside a lane-dependent branch: undefined behaviour in OpenCL, a typed
        // error here.
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "bad".into(),
            params: vec![KernelParam {
                name: "out".into(),
                ty: CType::pointer(CType::Float, AddrSpace::Global),
            }],
            body: vec![CStmt::If {
                cond: CExpr::local_id(0).lt(CExpr::int(4)),
                then: vec![CStmt::Barrier(Fence::local())],
                otherwise: None,
            }],
        });
        let err = VirtualGpu::new()
            .launch(&m, "bad", LaunchConfig::d1(8, 8), vec![KernelArg::zeros(8)])
            .unwrap_err();
        assert_eq!(
            err,
            VgpuError::DivergentBarrier {
                group: [0, 0, 0],
                arrived: 4,
                expected: 8,
            }
        );
    }

    #[test]
    fn group_uniform_branch_barrier_is_fine() {
        // The same barrier guarded by a *group-uniform* condition is well-defined: every
        // work item of a group takes the same branch.
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "ok".into(),
            params: vec![KernelParam {
                name: "out".into(),
                ty: CType::pointer(CType::Float, AddrSpace::Global),
            }],
            body: vec![CStmt::If {
                cond: CExpr::group_id(0).lt(CExpr::int(1)),
                then: vec![CStmt::Barrier(Fence::local())],
                otherwise: None,
            }],
        });
        let result = VirtualGpu::new()
            .launch(&m, "ok", LaunchConfig::d1(16, 8), vec![KernelArg::zeros(8)])
            .expect("uniform barrier executes");
        assert_eq!(result.report.counters.barriers, 1);
    }

    #[test]
    fn barrier_in_a_divergent_loop_is_a_typed_error() {
        // Threads loop a lane-dependent number of rounds; a barrier in the body is reached
        // by progressively fewer threads.
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "loopy".into(),
            params: vec![KernelParam {
                name: "out".into(),
                ty: CType::pointer(CType::Float, AddrSpace::Global),
            }],
            body: vec![CStmt::For {
                var: "i".into(),
                init: CExpr::int(0),
                cond: CExpr::var("i").lt(CExpr::local_id(0)),
                step: CExpr::int(1),
                body: vec![CStmt::Barrier(Fence::local())],
            }],
        });
        let err = VirtualGpu::new()
            .launch(
                &m,
                "loopy",
                LaunchConfig::d1(4, 4),
                vec![KernelArg::zeros(4)],
            )
            .unwrap_err();
        assert!(matches!(err, VgpuError::DivergentBarrier { .. }), "{err:?}");
    }

    #[test]
    fn kernel_sequence_shares_buffers_across_stages() {
        // Stage 1 (parallel): tmp[gid] = in[gid] * 2. Stage 2 (single item): out[0] = sum(tmp).
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "scale".into(),
            params: vec![
                KernelParam {
                    name: "in".into(),
                    ty: CType::const_restrict_pointer(CType::Float, AddrSpace::Global),
                },
                KernelParam {
                    name: "out".into(),
                    ty: CType::pointer(CType::Float, AddrSpace::Global),
                },
                KernelParam {
                    name: "tmp".into(),
                    ty: CType::pointer(CType::Float, AddrSpace::Global),
                },
            ],
            body: vec![CStmt::Assign {
                lhs: CExpr::var("tmp").at(CExpr::global_id(0)),
                rhs: CExpr::var("in")
                    .at(CExpr::global_id(0))
                    .mul(CExpr::float(2.0)),
            }],
        });
        m.kernels.push(Kernel {
            name: "sum".into(),
            // Same signature: the shared-pool ABI passes every argument to every stage.
            params: m.kernels[0].params.clone(),
            body: vec![
                CStmt::Decl {
                    ty: CType::Float,
                    name: "acc".into(),
                    addr: None,
                    array_len: None,
                    init: Some(CExpr::float(0.0)),
                },
                CStmt::For {
                    var: "i".into(),
                    init: CExpr::int(0),
                    cond: CExpr::var("i").lt(CExpr::int(8)),
                    step: CExpr::int(1),
                    body: vec![CStmt::Assign {
                        lhs: CExpr::var("acc"),
                        rhs: CExpr::var("acc").add(CExpr::var("tmp").at(CExpr::var("i"))),
                    }],
                },
                CStmt::Assign {
                    lhs: CExpr::var("out").at(CExpr::int(0)),
                    rhs: CExpr::var("acc"),
                },
            ],
        });
        assert!(m.kernels[0].uses_work_items());
        assert!(!m.kernels[1].uses_work_items());

        let input: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let pool = vec![
            KernelArg::Buffer(input),
            KernelArg::zeros(1),
            KernelArg::zeros(8),
        ];
        let stages = vec![
            KernelLaunchSpec {
                kernel: "scale".into(),
                launch: LaunchConfig::d1(8, 4),
            },
            KernelLaunchSpec {
                kernel: "sum".into(),
                launch: LaunchConfig::d1(1, 1),
            },
        ];
        let device = crate::DeviceProfile::nvidia();
        let result = VirtualGpu::new()
            .launch_sequence_on(&device, &m, &stages, pool)
            .expect("sequence runs");
        // 2 * (0 + 1 + ... + 7) = 56.
        assert_eq!(result.buffers[1], vec![56.0]);
        assert_eq!(result.reports.len(), 2);
        // Sequential composition: the sequence costs the stage times plus one launch
        // overhead per stage.
        let split: f64 = result
            .reports
            .iter()
            .map(|r| r.estimated_time(&device))
            .sum();
        let expected = split + 2.0 * device.launch_overhead;
        assert!((result.estimated_time(&device) - expected).abs() < 1e-9);
        // Merged counters sum the per-stage spans (sequential stages cannot overlap).
        assert_eq!(
            result.merged_counters().group_span_rows,
            result
                .reports
                .iter()
                .map(|r| r.counters.group_span_rows)
                .sum::<u64>()
        );
    }

    #[test]
    fn private_arrays_are_per_thread() {
        // Each thread fills a private array and sums it.
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "priv".into(),
            params: vec![KernelParam {
                name: "out".into(),
                ty: CType::pointer(CType::Float, AddrSpace::Global),
            }],
            body: vec![
                CStmt::Decl {
                    ty: CType::Float,
                    name: "regs".into(),
                    addr: Some(AddrSpace::Private),
                    array_len: Some(ArithExpr::cst(4)),
                    init: None,
                },
                CStmt::For {
                    var: "i".into(),
                    init: CExpr::int(0),
                    cond: CExpr::var("i").lt(CExpr::int(4)),
                    step: CExpr::int(1),
                    body: vec![CStmt::Assign {
                        lhs: CExpr::var("regs").at(CExpr::var("i")),
                        rhs: CExpr::Cast(CType::Float, Box::new(CExpr::global_id(0))),
                    }],
                },
                CStmt::Assign {
                    lhs: CExpr::var("out").at(CExpr::global_id(0)),
                    rhs: CExpr::var("regs")
                        .at(CExpr::int(0))
                        .add(CExpr::var("regs").at(CExpr::int(3))),
                },
            ],
        });
        let result = VirtualGpu::new()
            .launch(
                &m,
                "priv",
                LaunchConfig::d1(4, 2),
                vec![KernelArg::zeros(4)],
            )
            .expect("runs");
        assert_eq!(result.buffers[0], vec![0.0, 2.0, 4.0, 6.0]);
        assert!(result.report.counters.private_accesses > 0);
    }

    // ------------------------------------------------------------- data-race detection

    /// The dynamic mirror of the PR 5 miscompile: every work item stages "its" values into
    /// the *whole* shared local buffer. With 8 threads per group each cell is written by all
    /// 8 with differing values.
    fn per_item_staging_kernel() -> Module {
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "racy".into(),
            params: vec![
                KernelParam {
                    name: "in".into(),
                    ty: CType::const_restrict_pointer(CType::Float, AddrSpace::Global),
                },
                KernelParam {
                    name: "out".into(),
                    ty: CType::pointer(CType::Float, AddrSpace::Global),
                },
            ],
            body: vec![
                CStmt::Decl {
                    ty: CType::Float,
                    name: "tmp".into(),
                    addr: Some(AddrSpace::Local),
                    array_len: Some(ArithExpr::cst(4)),
                    init: None,
                },
                // for i in 0..4: tmp[i] = in[gid] + i  — per-thread values, shared cells.
                CStmt::For {
                    var: "i".into(),
                    init: CExpr::int(0),
                    cond: CExpr::var("i").lt(CExpr::int(4)),
                    step: CExpr::int(1),
                    body: vec![CStmt::Assign {
                        lhs: CExpr::var("tmp").at(CExpr::var("i")),
                        rhs: CExpr::var("in")
                            .at(CExpr::global_id(0))
                            .add(CExpr::Cast(CType::Float, Box::new(CExpr::var("i")))),
                    }],
                },
                CStmt::Assign {
                    lhs: CExpr::var("out").at(CExpr::global_id(0)),
                    rhs: CExpr::var("tmp").at(CExpr::int(0)),
                },
            ],
        });
        m
    }

    #[test]
    fn race_detector_flags_per_item_local_staging() {
        let m = per_item_staging_kernel();
        let input: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let args = || vec![KernelArg::Buffer(input.clone()), KernelArg::zeros(8)];
        // Detector off: executes (with whichever lock-step interleaving the vgpu has) —
        // this is exactly the "filtered only by output luck" failure mode of PR 5.
        VirtualGpu::new()
            .launch(&m, "racy", LaunchConfig::d1(8, 8), args())
            .expect("runs without detection");
        // Detector on: the write-write conflict is a typed error.
        let err = VirtualGpu::with_race_detection()
            .launch(&m, "racy", LaunchConfig::d1(8, 8), args())
            .expect_err("per-item staging races");
        match &err {
            VgpuError::DataRace {
                buffer,
                index,
                writers,
                epoch,
            } => {
                assert_eq!(buffer, "tmp");
                assert_eq!(*index, 0);
                assert_ne!(writers[0], writers[1]);
                assert_eq!(*epoch, 0);
            }
            other => panic!("expected DataRace, got {other:?}"),
        }
        assert!(err.to_string().contains("data race on `tmp[0]`"), "{err}");
    }

    #[test]
    fn race_detector_distinguishes_work_item_dimensions() {
        // Two work items that differ ONLY in their dimension-1 id write different values
        // to the same local cell: `tmp[l0] = in[g0] + (float)l1`. A detector that collapsed
        // the id space to dimension 0 would see one thread re-writing its own cell and stay
        // silent; distinguishing dimensions makes it a write-write race.
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "dim1".into(),
            params: vec![
                KernelParam {
                    name: "in".into(),
                    ty: CType::const_restrict_pointer(CType::Float, AddrSpace::Global),
                },
                KernelParam {
                    name: "out".into(),
                    ty: CType::pointer(CType::Float, AddrSpace::Global),
                },
            ],
            body: vec![
                CStmt::Decl {
                    ty: CType::Float,
                    name: "tmp".into(),
                    addr: Some(AddrSpace::Local),
                    array_len: Some(ArithExpr::cst(4)),
                    init: None,
                },
                CStmt::Assign {
                    lhs: CExpr::var("tmp").at(CExpr::local_id(0)),
                    rhs: CExpr::var("in")
                        .at(CExpr::global_id(0))
                        .add(CExpr::Cast(CType::Float, Box::new(CExpr::local_id(1)))),
                },
                CStmt::Barrier(Fence::local()),
                CStmt::Assign {
                    lhs: CExpr::var("out").at(CExpr::global_id(0)),
                    rhs: CExpr::var("tmp").at(CExpr::local_id(0)),
                },
            ],
        });
        let input: Vec<f32> = (1..=4).map(|i| i as f32).collect();
        let args = || vec![KernelArg::Buffer(input.clone()), KernelArg::zeros(4)];
        // 1D launch: dimension 1 is a single work item, so every cell has one writer.
        VirtualGpu::with_race_detection()
            .launch(&m, "dim1", LaunchConfig::d1(4, 4), args())
            .expect("1D launch has one writer per cell");
        // 2D launch: (l0, 0) and (l0, 1) both write tmp[l0], with values differing by one.
        let err = VirtualGpu::with_race_detection()
            .launch(&m, "dim1", LaunchConfig::d2((4, 2), (4, 2)), args())
            .expect_err("dimension-1 siblings write different values to the same cell");
        match &err {
            VgpuError::DataRace {
                buffer,
                writers,
                epoch,
                ..
            } => {
                assert_eq!(buffer, "tmp");
                assert_ne!(writers[0], writers[1]);
                assert_eq!(*epoch, 0);
            }
            other => panic!("expected DataRace, got {other:?}"),
        }
    }

    #[test]
    fn race_detector_accepts_cooperative_staging() {
        // The reverse-through-local-memory kernel of `local_memory_and_barrier`: each work
        // item writes only its own cell, a barrier orders the cross-thread reads. The
        // detector must stay silent and the result must be unchanged.
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "reverse".into(),
            params: vec![
                KernelParam {
                    name: "in".into(),
                    ty: CType::const_restrict_pointer(CType::Float, AddrSpace::Global),
                },
                KernelParam {
                    name: "out".into(),
                    ty: CType::pointer(CType::Float, AddrSpace::Global),
                },
            ],
            body: vec![
                CStmt::Decl {
                    ty: CType::Float,
                    name: "tmp".into(),
                    addr: Some(AddrSpace::Local),
                    array_len: Some(ArithExpr::cst(8)),
                    init: None,
                },
                CStmt::Assign {
                    lhs: CExpr::var("tmp").at(CExpr::local_id(0)),
                    rhs: CExpr::var("in").at(CExpr::global_id(0)),
                },
                CStmt::Barrier(Fence::local()),
                CStmt::Assign {
                    lhs: CExpr::var("out").at(CExpr::global_id(0)),
                    rhs: CExpr::var("tmp").at(CExpr::int(7).sub(CExpr::local_id(0))),
                },
            ],
        });
        let input: Vec<f32> = (1..=16).map(|i| i as f32).collect();
        let result = VirtualGpu::with_race_detection()
            .launch(
                &m,
                "reverse",
                LaunchConfig::d1(16, 8),
                vec![KernelArg::Buffer(input), KernelArg::zeros(16)],
            )
            .expect("barrier-synchronised staging is race-free");
        assert_eq!(
            result.buffers[1],
            vec![
                8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 16.0, 15.0, 14.0, 13.0, 12.0, 11.0, 10.0,
                9.0,
            ]
        );
        // Removing the barrier turns the cross-thread read into a read of an unsynchronised
        // write — a typed race, not a wrong answer.
        m.kernels[0].body.remove(2);
        let input: Vec<f32> = (1..=16).map(|i| i as f32).collect();
        let err = VirtualGpu::with_race_detection()
            .launch(
                &m,
                "reverse",
                LaunchConfig::d1(16, 8),
                vec![KernelArg::Buffer(input), KernelArg::zeros(16)],
            )
            .expect_err("unsynchronised read-after-write races");
        assert!(matches!(err, VgpuError::DataRace { .. }), "{err:?}");
    }

    #[test]
    fn race_on_second_loop_iteration_only_is_caught() {
        // Iteration 0 writes each thread's own cell; iteration 1 writes the neighbour's.
        // There is no barrier, so both iterations are in epoch 0 and the second write
        // conflicts with the first. A detector that (wrongly) advanced the epoch at the
        // loop back-edge would see different epochs and miss the race entirely — this is
        // the false-negative mode the barrier-epoch audit pins down.
        let loop_body = |with_barrier: bool| {
            let mut body = vec![CStmt::Assign {
                lhs: CExpr::var("tmp")
                    .at(CExpr::local_id(0).add(CExpr::var("i")).rem(CExpr::int(8))),
                rhs: CExpr::Cast(
                    CType::Float,
                    Box::new(CExpr::local_id(0).add(CExpr::int(1))),
                ),
            }];
            if with_barrier {
                body.push(CStmt::Barrier(Fence::local()));
            }
            body
        };
        let make = |with_barrier: bool| {
            let mut m = Module::new();
            m.kernels.push(Kernel {
                name: "sweep".into(),
                params: vec![KernelParam {
                    name: "out".into(),
                    ty: CType::pointer(CType::Float, AddrSpace::Global),
                }],
                body: vec![
                    CStmt::Decl {
                        ty: CType::Float,
                        name: "tmp".into(),
                        addr: Some(AddrSpace::Local),
                        array_len: Some(ArithExpr::cst(8)),
                        init: None,
                    },
                    CStmt::For {
                        var: "i".into(),
                        init: CExpr::int(0),
                        cond: CExpr::var("i").lt(CExpr::int(2)),
                        step: CExpr::int(1),
                        body: loop_body(with_barrier),
                    },
                    CStmt::Assign {
                        lhs: CExpr::var("out").at(CExpr::global_id(0)),
                        rhs: CExpr::var("tmp").at(CExpr::local_id(0)),
                    },
                ],
            });
            m
        };
        let err = VirtualGpu::with_race_detection()
            .launch(
                &make(false),
                "sweep",
                LaunchConfig::d1(8, 8),
                vec![KernelArg::zeros(8)],
            )
            .expect_err("the second sweep races against the first without a barrier");
        assert!(
            matches!(err, VgpuError::DataRace { epoch: 0, .. }),
            "{err:?}"
        );
        // With a barrier per iteration (what lowered `iterate` sweeps emit) the epochs
        // advance per executed barrier and the same access pattern is race-free.
        VirtualGpu::with_race_detection()
            .launch(
                &make(true),
                "sweep",
                LaunchConfig::d1(8, 8),
                vec![KernelArg::zeros(8)],
            )
            .expect("barrier-separated sweeps are race-free");
    }

    #[test]
    fn redundant_uniform_writes_are_not_races() {
        // Every work item stores the same value to the same global cell: bitwise-identical
        // stores cannot change the outcome under any interleaving, so the detector treats
        // them as no-ops (this keeps group-uniform `toLocal(mapSeq …)` staging, which the
        // static ownership pass accepts, dynamically clean as well).
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "uniform".into(),
            params: vec![KernelParam {
                name: "out".into(),
                ty: CType::pointer(CType::Float, AddrSpace::Global),
            }],
            body: vec![CStmt::Assign {
                lhs: CExpr::var("out").at(CExpr::int(0)),
                rhs: CExpr::float(3.0),
            }],
        });
        let result = VirtualGpu::with_race_detection()
            .launch(
                &m,
                "uniform",
                LaunchConfig::d1(8, 8),
                vec![KernelArg::zeros(1)],
            )
            .expect("uniform redundant stores are benign");
        assert_eq!(result.buffers[0], vec![3.0]);
    }

    #[test]
    fn cross_group_global_write_conflict_is_flagged() {
        // Work groups write group-dependent values to the same global cell. No barrier can
        // order work items of *different* groups within a launch, so this conflicts in any
        // epoch.
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "clash".into(),
            params: vec![KernelParam {
                name: "out".into(),
                ty: CType::pointer(CType::Float, AddrSpace::Global),
            }],
            body: vec![CStmt::Assign {
                lhs: CExpr::var("out").at(CExpr::int(0)),
                rhs: CExpr::Cast(
                    CType::Float,
                    Box::new(CExpr::group_id(0).add(CExpr::int(1))),
                ),
            }],
        });
        let err = VirtualGpu::with_race_detection()
            .launch(
                &m,
                "clash",
                LaunchConfig::d1(8, 4),
                vec![KernelArg::zeros(1)],
            )
            .expect_err("conflicting cross-group writes race");
        match &err {
            VgpuError::DataRace { buffer, index, .. } => {
                assert_eq!(buffer, "out");
                assert_eq!(*index, 0);
            }
            other => panic!("expected DataRace, got {other:?}"),
        }
    }

    #[test]
    fn race_detection_flag_is_visible() {
        assert!(!VirtualGpu::new().race_detection());
        assert!(VirtualGpu::with_race_detection().race_detection());
        // Shadow state never leaks into results: a clean kernel produces identical buffers
        // and counters with and without detection.
        let m = copy_kernel();
        let input: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let args = || vec![KernelArg::Buffer(input.clone()), KernelArg::zeros(64)];
        let plain = VirtualGpu::new()
            .launch(&m, "copy", LaunchConfig::d1(64, 16), args())
            .expect("runs");
        let detected = VirtualGpu::with_race_detection()
            .launch(&m, "copy", LaunchConfig::d1(64, 16), args())
            .expect("runs");
        assert_eq!(plain, detected);
    }
}
