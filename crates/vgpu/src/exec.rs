//! SIMT execution of OpenCL kernels.
//!
//! The virtual GPU executes one work group at a time. Within a work group all work items run
//! in lock step, statement by statement, which gives barriers their OpenCL semantics for the
//! structured kernels the Lift compiler emits (barriers only ever appear at points reached
//! uniformly by the whole work group). Divergent control flow is handled with per-thread
//! activity masks, exactly like the execution masks of a real SIMT machine.
//!
//! While executing, the interpreter counts the dynamic events the cost model charges for:
//! arithmetic, index computations (with divisions/modulos counted separately), global/local
//! memory traffic with a coalescing analysis per SIMD group, barriers and loop overhead.

use std::collections::HashMap;
use std::fmt;

use lift_arith::ArithExpr;
use lift_ocl::{AddrSpace, CBinOp, CExpr, CStmt, CUnOp, Kernel, Module};

use crate::cost::{CostCounters, ExecutionReport};
use crate::device::LaunchConfig;
use crate::memory::{GpuValue, KernelArg, Ptr};

/// Number of consecutive work items considered for memory-coalescing analysis.
const COALESCE_GROUP: usize = 32;
/// Number of consecutive `float` elements that form one memory transaction segment.
const SEGMENT_ELEMS: i64 = 32;

/// Errors raised while launching or executing a kernel.
#[derive(Clone, Debug, PartialEq)]
pub enum VgpuError {
    /// The requested kernel does not exist in the module.
    UnknownKernel(String),
    /// A variable was referenced but never defined.
    UnknownVariable(String),
    /// A called function is neither a builtin nor defined in the module.
    UnknownFunction(String),
    /// The number of kernel arguments does not match the kernel signature.
    ArgumentMismatch {
        /// Parameters expected.
        expected: usize,
        /// Arguments provided.
        found: usize,
    },
    /// An expression that must be a pointer evaluated to something else.
    NotAPointer(String),
    /// An out-of-bounds memory access.
    OutOfBounds {
        /// The address space of the buffer.
        space: &'static str,
        /// The accessed index.
        index: i64,
        /// The buffer length.
        len: usize,
    },
    /// A symbolic length could not be resolved to a constant.
    SymbolicLength(String),
    /// A value that cannot be stored to memory (e.g. a struct) was stored.
    InvalidStore(String),
    /// Integer division or modulo by zero while evaluating an index expression.
    DivisionByZero,
}

impl fmt::Display for VgpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VgpuError::UnknownKernel(k) => write!(f, "unknown kernel `{k}`"),
            VgpuError::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            VgpuError::UnknownFunction(v) => write!(f, "unknown function `{v}`"),
            VgpuError::ArgumentMismatch { expected, found } => {
                write!(f, "kernel expects {expected} arguments, received {found}")
            }
            VgpuError::NotAPointer(e) => write!(f, "expression is not a pointer: {e}"),
            VgpuError::OutOfBounds { space, index, len } => {
                write!(
                    f,
                    "out-of-bounds {space} access at index {index} (length {len})"
                )
            }
            VgpuError::SymbolicLength(e) => write!(f, "cannot resolve symbolic length `{e}`"),
            VgpuError::InvalidStore(e) => write!(f, "cannot store value: {e}"),
            VgpuError::DivisionByZero => write!(f, "division by zero in index expression"),
        }
    }
}

impl std::error::Error for VgpuError {}

/// The result of a kernel launch: the (possibly modified) global buffers in argument order and
/// the execution report for the cost model.
#[derive(Clone, Debug, PartialEq)]
pub struct LaunchResult {
    /// Global buffers after execution, in the order the buffer arguments were passed.
    pub buffers: Vec<Vec<f32>>,
    /// Dynamic execution counters.
    pub report: ExecutionReport,
}

/// The virtual GPU.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VirtualGpu;

impl VirtualGpu {
    /// Creates a virtual GPU.
    pub fn new() -> VirtualGpu {
        VirtualGpu
    }

    /// Launches `kernel_name` from `module` over the given ND-range.
    ///
    /// # Errors
    ///
    /// Returns a [`VgpuError`] if the kernel is unknown, the arguments do not match, or the
    /// kernel performs an invalid memory access.
    pub fn launch(
        &self,
        module: &Module,
        kernel_name: &str,
        config: LaunchConfig,
        args: Vec<KernelArg>,
    ) -> Result<LaunchResult, VgpuError> {
        let kernel = module
            .kernel(kernel_name)
            .ok_or_else(|| VgpuError::UnknownKernel(kernel_name.to_string()))?;
        if kernel.params.len() != args.len() {
            return Err(VgpuError::ArgumentMismatch {
                expected: kernel.params.len(),
                found: args.len(),
            });
        }

        let mut global: Vec<Vec<f32>> = Vec::new();
        let mut params: HashMap<String, GpuValue> = HashMap::new();
        for (param, arg) in kernel.params.iter().zip(args) {
            match arg {
                KernelArg::Buffer(data) => {
                    let idx = global.len();
                    global.push(data);
                    params.insert(
                        param.name.clone(),
                        GpuValue::Ptr(Ptr {
                            space: AddrSpace::Global,
                            buffer: idx,
                            offset: 0,
                        }),
                    );
                }
                KernelArg::Int(v) => {
                    params.insert(param.name.clone(), GpuValue::Int(v));
                }
                KernelArg::Float(v) => {
                    params.insert(param.name.clone(), GpuValue::Float(f64::from(v)));
                }
            }
        }

        let mut exec = Exec {
            module,
            kernel,
            config,
            global,
            params,
            counters: CostCounters::default(),
            access_log: Vec::new(),
        };
        exec.run()?;
        Ok(LaunchResult {
            buffers: exec.global,
            report: ExecutionReport {
                counters: exec.counters,
            },
        })
    }
}

/// One recorded global-memory access, used for the coalescing analysis.
struct Access {
    thread: usize,
    buffer: usize,
    addr: i64,
    width: usize,
}

/// Per-work-group shared state.
struct Group {
    id: [usize; 3],
    local: Vec<Vec<f32>>,
    local_names: HashMap<String, usize>,
}

/// Per-work-item state.
struct Thread {
    lid: [usize; 3],
    gid: [usize; 3],
    linear: usize,
    env: HashMap<String, GpuValue>,
    private: Vec<Vec<f32>>,
    returned: bool,
}

struct Exec<'a> {
    module: &'a Module,
    kernel: &'a Kernel,
    config: LaunchConfig,
    global: Vec<Vec<f32>>,
    params: HashMap<String, GpuValue>,
    counters: CostCounters,
    access_log: Vec<Access>,
}

impl<'a> Exec<'a> {
    fn run(&mut self) -> Result<(), VgpuError> {
        let groups = self.config.num_groups();
        let local = self.config.local;
        for gz in 0..groups[2] {
            for gy in 0..groups[1] {
                for gx in 0..groups[0] {
                    let mut group = Group {
                        id: [gx, gy, gz],
                        local: Vec::new(),
                        local_names: HashMap::new(),
                    };
                    let mut threads = Vec::with_capacity(local.iter().product());
                    for lz in 0..local[2] {
                        for ly in 0..local[1] {
                            for lx in 0..local[0] {
                                let linear = lx + local[0] * (ly + local[1] * lz);
                                threads.push(Thread {
                                    lid: [lx, ly, lz],
                                    gid: [
                                        gx * local[0] + lx,
                                        gy * local[1] + ly,
                                        gz * local[2] + lz,
                                    ],
                                    linear,
                                    env: HashMap::new(),
                                    private: Vec::new(),
                                    returned: false,
                                });
                            }
                        }
                    }
                    self.counters.work_groups += 1;
                    self.counters.work_items += threads.len() as u64;
                    let mask = vec![true; threads.len()];
                    let body = self.kernel.body.clone();
                    self.exec_block(&body, &mut group, &mut threads, &mask)?;
                }
            }
        }
        Ok(())
    }

    fn exec_block(
        &mut self,
        stmts: &[CStmt],
        group: &mut Group,
        threads: &mut Vec<Thread>,
        mask: &[bool],
    ) -> Result<(), VgpuError> {
        for stmt in stmts {
            self.exec_stmt(stmt, group, threads, mask)?;
        }
        Ok(())
    }

    fn active(&self, threads: &[Thread], mask: &[bool], i: usize) -> bool {
        mask[i] && !threads[i].returned
    }

    fn exec_stmt(
        &mut self,
        stmt: &CStmt,
        group: &mut Group,
        threads: &mut Vec<Thread>,
        mask: &[bool],
    ) -> Result<(), VgpuError> {
        match stmt {
            CStmt::Comment(_) => Ok(()),
            CStmt::Return => {
                for i in 0..threads.len() {
                    if mask[i] {
                        threads[i].returned = true;
                    }
                }
                Ok(())
            }
            CStmt::Barrier(_) => {
                self.counters.barriers += 1;
                Ok(())
            }
            CStmt::Block(stmts) => self.exec_block(stmts, group, threads, mask),
            CStmt::Decl {
                ty: _,
                name,
                addr,
                array_len,
                init,
            } => {
                match array_len {
                    Some(len_expr) => {
                        let len = self.resolve_len(len_expr)?;
                        if matches!(addr, Some(AddrSpace::Local)) {
                            // One allocation shared by the work group.
                            let idx = group.local.len();
                            group.local.push(vec![0.0; len]);
                            group.local_names.insert(name.clone(), idx);
                        } else {
                            // A private array per work item (register blocking).
                            for i in 0..threads.len() {
                                if !self.active(threads, mask, i) {
                                    continue;
                                }
                                let t = &mut threads[i];
                                let idx = t.private.len();
                                t.private.push(vec![0.0; len]);
                                t.env.insert(
                                    name.clone(),
                                    GpuValue::Ptr(Ptr {
                                        space: AddrSpace::Private,
                                        buffer: idx,
                                        offset: 0,
                                    }),
                                );
                            }
                        }
                        Ok(())
                    }
                    None => {
                        for i in 0..threads.len() {
                            if !self.active(threads, mask, i) {
                                continue;
                            }
                            let value = match init {
                                Some(e) => self.eval(e, group, &mut threads[i])?,
                                None => GpuValue::Float(0.0),
                            };
                            threads[i].env.insert(name.clone(), value);
                        }
                        self.flush_accesses();
                        Ok(())
                    }
                }
            }
            CStmt::Assign { lhs, rhs } => {
                for i in 0..threads.len() {
                    if !self.active(threads, mask, i) {
                        continue;
                    }
                    let value = self.eval(rhs, group, &mut threads[i])?;
                    self.assign(lhs, value, group, &mut threads[i])?;
                }
                self.flush_accesses();
                Ok(())
            }
            CStmt::Expr(e) => {
                for i in 0..threads.len() {
                    if !self.active(threads, mask, i) {
                        continue;
                    }
                    self.eval(e, group, &mut threads[i])?;
                }
                self.flush_accesses();
                Ok(())
            }
            CStmt::If {
                cond,
                then,
                otherwise,
            } => {
                let mut then_mask = vec![false; threads.len()];
                let mut else_mask = vec![false; threads.len()];
                for i in 0..threads.len() {
                    if !self.active(threads, mask, i) {
                        continue;
                    }
                    let c = self.eval(cond, group, &mut threads[i])?.as_bool();
                    self.counters.int_ops += 1;
                    then_mask[i] = c;
                    else_mask[i] = !c;
                }
                self.flush_accesses();
                if then_mask.iter().any(|b| *b) {
                    self.exec_block(then, group, threads, &then_mask)?;
                }
                if let Some(otherwise) = otherwise {
                    if else_mask.iter().any(|b| *b) {
                        self.exec_block(otherwise, group, threads, &else_mask)?;
                    }
                }
                Ok(())
            }
            CStmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                for i in 0..threads.len() {
                    if !self.active(threads, mask, i) {
                        continue;
                    }
                    let v = self.eval(init, group, &mut threads[i])?;
                    threads[i].env.insert(var.clone(), v);
                }
                self.flush_accesses();
                loop {
                    let mut iter_mask = vec![false; threads.len()];
                    let mut any = false;
                    for i in 0..threads.len() {
                        if !self.active(threads, mask, i) {
                            continue;
                        }
                        let c = self.eval(cond, group, &mut threads[i])?.as_bool();
                        self.counters.int_ops += 1;
                        if c {
                            iter_mask[i] = true;
                            any = true;
                            self.counters.loop_iterations += 1;
                        }
                    }
                    self.flush_accesses();
                    if !any {
                        break;
                    }
                    self.exec_block(body, group, threads, &iter_mask)?;
                    for i in 0..threads.len() {
                        if !iter_mask[i] || threads[i].returned {
                            continue;
                        }
                        let s = self.eval(step, group, &mut threads[i])?;
                        let current = threads[i]
                            .env
                            .get(var)
                            .cloned()
                            .ok_or_else(|| VgpuError::UnknownVariable(var.clone()))?;
                        let next = GpuValue::Int(current.as_i64() + s.as_i64());
                        self.counters.int_ops += 1;
                        threads[i].env.insert(var.clone(), next);
                    }
                    self.flush_accesses();
                }
                Ok(())
            }
        }
    }

    fn resolve_len(&self, e: &ArithExpr) -> Result<usize, VgpuError> {
        let lookup = |name: &str| self.params.get(name).map(GpuValue::as_i64);
        let v = e
            .evaluate_with(&lookup)
            .map_err(|_| VgpuError::SymbolicLength(e.to_string()))?;
        usize::try_from(v).map_err(|_| VgpuError::SymbolicLength(e.to_string()))
    }

    // ------------------------------------------------------------------ expression evaluation

    fn eval(
        &mut self,
        e: &CExpr,
        group: &mut Group,
        thread: &mut Thread,
    ) -> Result<GpuValue, VgpuError> {
        match e {
            CExpr::IntLit(v) => Ok(GpuValue::Int(*v)),
            CExpr::FloatLit(v) => Ok(GpuValue::Float(*v)),
            CExpr::Var(name) => self.lookup_var(name, group, thread),
            CExpr::Index(a) => {
                self.counters.int_ops += (a.op_count() - a.div_mod_count()) as u64;
                self.counters.div_mod_ops += a.div_mod_count() as u64;
                let v = self.eval_index(a, thread)?;
                Ok(GpuValue::Int(v))
            }
            CExpr::Bin(op, a, b) => {
                let a = self.eval(a, group, thread)?;
                let b = self.eval(b, group, thread)?;
                self.eval_bin(*op, a, b)
            }
            CExpr::Un(op, a) => {
                let v = self.eval(a, group, thread)?;
                Ok(match op {
                    CUnOp::Neg => {
                        self.counters.flops += 1;
                        match v {
                            GpuValue::Int(i) => GpuValue::Int(-i),
                            other => GpuValue::Float(-other.as_f64()),
                        }
                    }
                    CUnOp::Not => {
                        self.counters.int_ops += 1;
                        GpuValue::Bool(!v.as_bool())
                    }
                })
            }
            CExpr::Call(name, args) => self.eval_call(name, args, group, thread),
            CExpr::ArrayAccess(arr, idx) => {
                let ptr = self
                    .eval(arr, group, thread)?
                    .as_ptr()
                    .ok_or_else(|| VgpuError::NotAPointer(lift_ocl::print_expr(arr)))?;
                let idx = self.eval(idx, group, thread)?.as_i64();
                self.load(ptr, idx, group, thread, 1)
            }
            CExpr::Field(obj, field) => {
                let v = self.eval(obj, group, thread)?;
                let idx = field_index(field);
                match v {
                    GpuValue::Struct(fields) | GpuValue::Vector(fields) => fields
                        .get(idx)
                        .cloned()
                        .ok_or_else(|| VgpuError::UnknownVariable(format!("field {field}"))),
                    other => Ok(other),
                }
            }
            CExpr::Cast(ty, inner) => {
                let v = self.eval(inner, group, thread)?;
                Ok(match ty {
                    lift_ocl::CType::Int => GpuValue::Int(v.as_i64()),
                    lift_ocl::CType::Float | lift_ocl::CType::Double => GpuValue::Float(v.as_f64()),
                    lift_ocl::CType::Bool => GpuValue::Bool(v.as_bool()),
                    _ => v,
                })
            }
            CExpr::Ternary(c, t, other) => {
                let c = self.eval(c, group, thread)?.as_bool();
                self.counters.int_ops += 1;
                if c {
                    self.eval(t, group, thread)
                } else {
                    self.eval(other, group, thread)
                }
            }
            CExpr::StructLit(_, fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for f in fields {
                    out.push(self.eval(f, group, thread)?);
                }
                Ok(GpuValue::Struct(out))
            }
            CExpr::VectorLit(_, elems) => {
                let mut out = Vec::with_capacity(elems.len());
                for e in elems {
                    out.push(self.eval(e, group, thread)?);
                }
                Ok(GpuValue::Vector(out))
            }
        }
    }

    fn eval_index(&self, a: &ArithExpr, thread: &Thread) -> Result<i64, VgpuError> {
        let lookup = |name: &str| {
            thread
                .env
                .get(name)
                .map(GpuValue::as_i64)
                .or_else(|| self.params.get(name).map(GpuValue::as_i64))
        };
        a.evaluate_with(&lookup).map_err(|err| match err {
            lift_arith::EvalError::UnboundVariable(v) => VgpuError::UnknownVariable(v),
            lift_arith::EvalError::DivisionByZero => VgpuError::DivisionByZero,
        })
    }

    fn lookup_var(
        &self,
        name: &str,
        group: &Group,
        thread: &Thread,
    ) -> Result<GpuValue, VgpuError> {
        if let Some(v) = thread.env.get(name) {
            return Ok(v.clone());
        }
        if let Some(idx) = group.local_names.get(name) {
            return Ok(GpuValue::Ptr(Ptr {
                space: AddrSpace::Local,
                buffer: *idx,
                offset: 0,
            }));
        }
        if let Some(v) = self.params.get(name) {
            return Ok(v.clone());
        }
        Err(VgpuError::UnknownVariable(name.to_string()))
    }

    fn eval_bin(&mut self, op: CBinOp, a: GpuValue, b: GpuValue) -> Result<GpuValue, VgpuError> {
        // Pointer arithmetic and comparison.
        if let Some(p) = a.as_ptr() {
            return Ok(match op {
                CBinOp::Add => GpuValue::Ptr(Ptr {
                    offset: p.offset + b.as_i64(),
                    ..p
                }),
                CBinOp::Sub => GpuValue::Ptr(Ptr {
                    offset: p.offset - b.as_i64(),
                    ..p
                }),
                CBinOp::Eq => GpuValue::Bool(Some(p) == b.as_ptr()),
                CBinOp::Ne => GpuValue::Bool(Some(p) != b.as_ptr()),
                _ => return Err(VgpuError::NotAPointer("invalid pointer operation".into())),
            });
        }
        // Lane-wise vector arithmetic.
        if let GpuValue::Vector(lanes_a) = &a {
            let out: Result<Vec<GpuValue>, VgpuError> = lanes_a
                .iter()
                .enumerate()
                .map(|(i, la)| {
                    let lb = match &b {
                        GpuValue::Vector(lanes_b) => lanes_b[i].clone(),
                        other => other.clone(),
                    };
                    self.eval_bin(op, la.clone(), lb)
                })
                .collect();
            return Ok(GpuValue::Vector(out?));
        }
        if let (GpuValue::Int(x), GpuValue::Int(y)) = (&a, &b) {
            let (x, y) = (*x, *y);
            return Ok(match op {
                CBinOp::Add | CBinOp::Sub | CBinOp::Mul => {
                    self.counters.int_ops += 1;
                    GpuValue::Int(match op {
                        CBinOp::Add => x + y,
                        CBinOp::Sub => x - y,
                        _ => x * y,
                    })
                }
                CBinOp::Div | CBinOp::Mod => {
                    self.counters.div_mod_ops += 1;
                    if y == 0 {
                        return Err(VgpuError::DivisionByZero);
                    }
                    GpuValue::Int(if op == CBinOp::Div {
                        x.div_euclid(y)
                    } else {
                        x.rem_euclid(y)
                    })
                }
                _ => {
                    self.counters.int_ops += 1;
                    GpuValue::Bool(compare(op, x as f64, y as f64))
                }
            });
        }
        // Mixed / floating point.
        let (x, y) = (a.as_f64(), b.as_f64());
        Ok(match op {
            CBinOp::Add | CBinOp::Sub | CBinOp::Mul | CBinOp::Div => {
                self.counters.flops += 1;
                GpuValue::Float(match op {
                    CBinOp::Add => x + y,
                    CBinOp::Sub => x - y,
                    CBinOp::Mul => x * y,
                    _ => x / y,
                })
            }
            CBinOp::Mod => {
                self.counters.div_mod_ops += 1;
                GpuValue::Float(x % y)
            }
            _ => {
                self.counters.int_ops += 1;
                GpuValue::Bool(compare(op, x, y))
            }
        })
    }

    fn eval_call(
        &mut self,
        name: &str,
        args: &[CExpr],
        group: &mut Group,
        thread: &mut Thread,
    ) -> Result<GpuValue, VgpuError> {
        // OpenCL work-item functions.
        if let Some(builtin) = self.work_item_builtin(name, args, group, thread)? {
            return Ok(builtin);
        }
        // Vector loads/stores.
        if let Some(width) = vector_width(name, "vload") {
            let idx = self.eval(&args[0], group, thread)?.as_i64();
            let ptr = self
                .eval(&args[1], group, thread)?
                .as_ptr()
                .ok_or_else(|| VgpuError::NotAPointer(name.to_string()))?;
            let mut lanes = Vec::with_capacity(width);
            for lane in 0..width {
                lanes.push(self.load(
                    ptr,
                    idx * width as i64 + lane as i64,
                    group,
                    thread,
                    width,
                )?);
            }
            self.counters.vector_accesses += width as u64;
            return Ok(GpuValue::Vector(lanes));
        }
        if let Some(width) = vector_width(name, "vstore") {
            let value = self.eval(&args[0], group, thread)?;
            let idx = self.eval(&args[1], group, thread)?.as_i64();
            let ptr = self
                .eval(&args[2], group, thread)?
                .as_ptr()
                .ok_or_else(|| VgpuError::NotAPointer(name.to_string()))?;
            let lanes = match value {
                GpuValue::Vector(lanes) => lanes,
                other => vec![other; width],
            };
            for (lane, v) in lanes.iter().enumerate() {
                self.store(
                    ptr,
                    idx * width as i64 + lane as i64,
                    v.as_f64(),
                    group,
                    thread,
                    width,
                )?;
            }
            self.counters.vector_accesses += width as u64;
            return Ok(GpuValue::Int(0));
        }
        // Math builtins.
        match name {
            "sqrt" | "native_sqrt" | "rsqrt" | "fabs" | "exp" | "log" | "floor" => {
                let v = self.eval(&args[0], group, thread)?.as_f64();
                self.counters.flops += 4;
                let out = match name {
                    "sqrt" | "native_sqrt" => v.sqrt(),
                    "rsqrt" => 1.0 / v.sqrt(),
                    "fabs" => v.abs(),
                    "exp" => v.exp(),
                    "log" => v.ln(),
                    _ => v.floor(),
                };
                return Ok(GpuValue::Float(out));
            }
            "fmin" | "min" | "fmax" | "max" => {
                let a = self.eval(&args[0], group, thread)?.as_f64();
                let b = self.eval(&args[1], group, thread)?.as_f64();
                self.counters.flops += 1;
                let out = if name.ends_with("min") {
                    a.min(b)
                } else {
                    a.max(b)
                };
                return Ok(GpuValue::Float(out));
            }
            "mad" | "fma" => {
                let a = self.eval(&args[0], group, thread)?.as_f64();
                let b = self.eval(&args[1], group, thread)?.as_f64();
                let c = self.eval(&args[2], group, thread)?.as_f64();
                self.counters.flops += 2;
                return Ok(GpuValue::Float(a * b + c));
            }
            _ => {}
        }
        // User functions defined in the module.
        let fun = self
            .module
            .function(name)
            .ok_or_else(|| VgpuError::UnknownFunction(name.to_string()))?
            .clone();
        if fun.params.len() != args.len() {
            return Err(VgpuError::ArgumentMismatch {
                expected: fun.params.len(),
                found: args.len(),
            });
        }
        let mut values = Vec::with_capacity(args.len());
        for a in args {
            values.push(self.eval(a, group, thread)?);
        }
        // Bind parameters with save/restore so nested calls and loop variables are preserved.
        let saved: Vec<Option<GpuValue>> = fun
            .params
            .iter()
            .map(|(n, _)| thread.env.get(n).cloned())
            .collect();
        for ((n, _), v) in fun.params.iter().zip(values) {
            thread.env.insert(n.clone(), v);
        }
        let result = self.eval(&fun.body, group, thread);
        for ((n, _), old) in fun.params.iter().zip(saved) {
            match old {
                Some(v) => {
                    thread.env.insert(n.clone(), v);
                }
                None => {
                    thread.env.remove(n);
                }
            }
        }
        result
    }

    fn work_item_builtin(
        &mut self,
        name: &str,
        args: &[CExpr],
        group: &mut Group,
        thread: &mut Thread,
    ) -> Result<Option<GpuValue>, VgpuError> {
        let dims = [
            "get_global_id",
            "get_local_id",
            "get_group_id",
            "get_global_size",
            "get_local_size",
            "get_num_groups",
        ];
        if !dims.contains(&name) {
            return Ok(None);
        }
        let dim = self.eval(&args[0], group, thread)?.as_i64() as usize;
        let groups = self.config.num_groups();
        let v = match name {
            "get_global_id" => thread.gid[dim],
            "get_local_id" => thread.lid[dim],
            "get_group_id" => group.id[dim],
            "get_global_size" => self.config.global[dim],
            "get_local_size" => self.config.local[dim],
            _ => groups[dim],
        };
        Ok(Some(GpuValue::Int(v as i64)))
    }

    // ------------------------------------------------------------------ memory

    fn load(
        &mut self,
        ptr: Ptr,
        idx: i64,
        group: &Group,
        thread: &Thread,
        vector_width: usize,
    ) -> Result<GpuValue, VgpuError> {
        let addr = ptr.offset + idx;
        let value = match ptr.space {
            AddrSpace::Global => {
                let buf = &self.global[ptr.buffer];
                let slot = usize::try_from(addr)
                    .ok()
                    .filter(|a| *a < buf.len())
                    .ok_or(VgpuError::OutOfBounds {
                        space: "global",
                        index: addr,
                        len: buf.len(),
                    })?;
                self.counters.global_accesses += 1;
                self.access_log.push(Access {
                    thread: thread.linear,
                    buffer: ptr.buffer,
                    addr,
                    width: vector_width,
                });
                self.global[ptr.buffer][slot]
            }
            AddrSpace::Local => {
                let buf = &group.local[ptr.buffer];
                let slot = usize::try_from(addr)
                    .ok()
                    .filter(|a| *a < buf.len())
                    .ok_or(VgpuError::OutOfBounds {
                        space: "local",
                        index: addr,
                        len: buf.len(),
                    })?;
                self.counters.local_accesses += 1;
                buf[slot]
            }
            AddrSpace::Private => {
                let buf = &thread.private[ptr.buffer];
                let slot = usize::try_from(addr)
                    .ok()
                    .filter(|a| *a < buf.len())
                    .ok_or(VgpuError::OutOfBounds {
                        space: "private",
                        index: addr,
                        len: buf.len(),
                    })?;
                self.counters.private_accesses += 1;
                buf[slot]
            }
        };
        Ok(GpuValue::Float(f64::from(value)))
    }

    fn store(
        &mut self,
        ptr: Ptr,
        idx: i64,
        value: f64,
        group: &mut Group,
        thread: &mut Thread,
        vector_width: usize,
    ) -> Result<(), VgpuError> {
        let addr = ptr.offset + idx;
        match ptr.space {
            AddrSpace::Global => {
                let buf = &mut self.global[ptr.buffer];
                let len = buf.len();
                let slot = usize::try_from(addr).ok().filter(|a| *a < len).ok_or(
                    VgpuError::OutOfBounds {
                        space: "global",
                        index: addr,
                        len,
                    },
                )?;
                buf[slot] = value as f32;
                self.counters.global_accesses += 1;
                self.access_log.push(Access {
                    thread: thread.linear,
                    buffer: ptr.buffer,
                    addr,
                    width: vector_width,
                });
            }
            AddrSpace::Local => {
                let buf = &mut group.local[ptr.buffer];
                let len = buf.len();
                let slot = usize::try_from(addr).ok().filter(|a| *a < len).ok_or(
                    VgpuError::OutOfBounds {
                        space: "local",
                        index: addr,
                        len,
                    },
                )?;
                buf[slot] = value as f32;
                self.counters.local_accesses += 1;
            }
            AddrSpace::Private => {
                let buf = &mut thread.private[ptr.buffer];
                let len = buf.len();
                let slot = usize::try_from(addr).ok().filter(|a| *a < len).ok_or(
                    VgpuError::OutOfBounds {
                        space: "private",
                        index: addr,
                        len,
                    },
                )?;
                buf[slot] = value as f32;
                self.counters.private_accesses += 1;
            }
        }
        Ok(())
    }

    fn assign(
        &mut self,
        lhs: &CExpr,
        value: GpuValue,
        group: &mut Group,
        thread: &mut Thread,
    ) -> Result<(), VgpuError> {
        match lhs {
            CExpr::Var(name) => {
                thread.env.insert(name.clone(), value);
                Ok(())
            }
            CExpr::ArrayAccess(arr, idx) => {
                let ptr = self
                    .eval(arr, group, thread)?
                    .as_ptr()
                    .ok_or_else(|| VgpuError::NotAPointer(lift_ocl::print_expr(arr)))?;
                let idx = self.eval(idx, group, thread)?.as_i64();
                if !value.is_scalar() {
                    return Err(VgpuError::InvalidStore(lift_ocl::print_expr(lhs)));
                }
                self.store(ptr, idx, value.as_f64(), group, thread, 1)
            }
            CExpr::Field(obj, field) => {
                // Field assignment only supports struct-valued variables.
                if let CExpr::Var(name) = &**obj {
                    let idx = field_index(field);
                    let mut current = thread
                        .env
                        .get(name)
                        .cloned()
                        .unwrap_or(GpuValue::Struct(vec![GpuValue::Float(0.0); idx + 1]));
                    if let GpuValue::Struct(fields) | GpuValue::Vector(fields) = &mut current {
                        if fields.len() <= idx {
                            fields.resize(idx + 1, GpuValue::Float(0.0));
                        }
                        fields[idx] = value;
                    }
                    thread.env.insert(name.clone(), current);
                    Ok(())
                } else {
                    Err(VgpuError::InvalidStore(lift_ocl::print_expr(lhs)))
                }
            }
            other => Err(VgpuError::InvalidStore(lift_ocl::print_expr(other))),
        }
    }

    /// Groups the global accesses of the last lock-step statement execution into memory
    /// transactions per SIMD group and charges uncoalesced accesses.
    fn flush_accesses(&mut self) {
        if self.access_log.is_empty() {
            return;
        }
        let log = std::mem::take(&mut self.access_log);
        use std::collections::HashSet;
        let mut per_simd: HashMap<usize, HashSet<(usize, i64)>> = HashMap::new();
        let mut per_simd_count: HashMap<usize, usize> = HashMap::new();
        for access in &log {
            let simd_group = access.thread / COALESCE_GROUP;
            let segments = per_simd.entry(simd_group).or_default();
            // A vector access may straddle two segments; charge both.
            segments.insert((access.buffer, access.addr.div_euclid(SEGMENT_ELEMS)));
            let last = access.addr + access.width.max(1) as i64 - 1;
            segments.insert((access.buffer, last.div_euclid(SEGMENT_ELEMS)));
            *per_simd_count.entry(simd_group).or_default() += 1;
        }
        for (simd_group, segments) in per_simd {
            let accesses = per_simd_count[&simd_group];
            let ideal = accesses.div_ceil(COALESCE_GROUP).max(1);
            let transactions = segments.len() as u64;
            self.counters.global_transactions += transactions;
            self.counters.uncoalesced_accesses +=
                (transactions as usize).saturating_sub(ideal) as u64;
        }
    }
}

fn compare(op: CBinOp, x: f64, y: f64) -> bool {
    match op {
        CBinOp::Lt => x < y,
        CBinOp::Le => x <= y,
        CBinOp::Gt => x > y,
        CBinOp::Ge => x >= y,
        CBinOp::Eq => x == y,
        CBinOp::Ne => x != y,
        CBinOp::And => x != 0.0 && y != 0.0,
        CBinOp::Or => x != 0.0 || y != 0.0,
        _ => false,
    }
}

fn field_index(field: &str) -> usize {
    field
        .trim_start_matches('_')
        .trim_start_matches('s')
        .parse::<usize>()
        .unwrap_or(match field {
            "x" => 0,
            "y" => 1,
            "z" => 2,
            "w" => 3,
            _ => 0,
        })
}

fn vector_width(name: &str, prefix: &str) -> Option<usize> {
    name.strip_prefix(prefix)
        .and_then(|rest| rest.parse::<usize>().ok())
        .filter(|w| matches!(w, 2 | 4 | 8 | 16))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_ocl::{CFunction, CType, Fence, KernelParam};

    fn copy_kernel() -> Module {
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "copy".into(),
            params: vec![
                KernelParam {
                    name: "in".into(),
                    ty: CType::const_restrict_pointer(CType::Float, AddrSpace::Global),
                },
                KernelParam {
                    name: "out".into(),
                    ty: CType::pointer(CType::Float, AddrSpace::Global),
                },
            ],
            body: vec![CStmt::Assign {
                lhs: CExpr::var("out").at(CExpr::global_id(0)),
                rhs: CExpr::var("in").at(CExpr::global_id(0)),
            }],
        });
        m
    }

    #[test]
    fn copy_kernel_copies() {
        let m = copy_kernel();
        let gpu = VirtualGpu::new();
        let input: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let result = gpu
            .launch(
                &m,
                "copy",
                LaunchConfig::d1(64, 16),
                vec![KernelArg::Buffer(input.clone()), KernelArg::zeros(64)],
            )
            .expect("runs");
        assert_eq!(result.buffers[1], input);
        assert_eq!(result.report.counters.work_items, 64);
        assert_eq!(result.report.counters.work_groups, 4);
        assert!(result.report.counters.global_accesses >= 128);
    }

    #[test]
    fn unknown_kernel_is_reported() {
        let m = copy_kernel();
        let err = VirtualGpu::new()
            .launch(&m, "missing", LaunchConfig::d1(1, 1), vec![])
            .unwrap_err();
        assert_eq!(err, VgpuError::UnknownKernel("missing".into()));
    }

    #[test]
    fn argument_count_is_checked() {
        let m = copy_kernel();
        let err = VirtualGpu::new()
            .launch(
                &m,
                "copy",
                LaunchConfig::d1(16, 16),
                vec![KernelArg::zeros(16)],
            )
            .unwrap_err();
        assert_eq!(
            err,
            VgpuError::ArgumentMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn out_of_bounds_access_is_reported() {
        let m = copy_kernel();
        let err = VirtualGpu::new()
            .launch(
                &m,
                "copy",
                LaunchConfig::d1(64, 16),
                vec![KernelArg::Buffer(vec![0.0; 8]), KernelArg::zeros(64)],
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                VgpuError::OutOfBounds {
                    space: "global",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn for_loop_and_user_function() {
        // out[gid] = sum of in[gid*4 .. gid*4+4] via a user "add" function.
        let mut m = Module::new();
        m.add_function(CFunction {
            name: "add".into(),
            ret: CType::Float,
            params: vec![("a".into(), CType::Float), ("b".into(), CType::Float)],
            body: CExpr::var("a").add(CExpr::var("b")),
        });
        m.kernels.push(Kernel {
            name: "sum4".into(),
            params: vec![
                KernelParam {
                    name: "in".into(),
                    ty: CType::const_restrict_pointer(CType::Float, AddrSpace::Global),
                },
                KernelParam {
                    name: "out".into(),
                    ty: CType::pointer(CType::Float, AddrSpace::Global),
                },
            ],
            body: vec![
                CStmt::Decl {
                    ty: CType::Float,
                    name: "acc".into(),
                    addr: None,
                    array_len: None,
                    init: Some(CExpr::float(0.0)),
                },
                CStmt::For {
                    var: "i".into(),
                    init: CExpr::int(0),
                    cond: CExpr::var("i").lt(CExpr::int(4)),
                    step: CExpr::int(1),
                    body: vec![CStmt::Assign {
                        lhs: CExpr::var("acc"),
                        rhs: CExpr::Call(
                            "add".into(),
                            vec![
                                CExpr::var("acc"),
                                CExpr::var("in").at(CExpr::global_id(0)
                                    .mul(CExpr::int(4))
                                    .add(CExpr::var("i"))),
                            ],
                        ),
                    }],
                },
                CStmt::Assign {
                    lhs: CExpr::var("out").at(CExpr::global_id(0)),
                    rhs: CExpr::var("acc"),
                },
            ],
        });
        let input: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let result = VirtualGpu::new()
            .launch(
                &m,
                "sum4",
                LaunchConfig::d1(8, 8),
                vec![KernelArg::Buffer(input), KernelArg::zeros(8)],
            )
            .expect("runs");
        let expected: Vec<f32> = (0..8)
            .map(|g| (0..4).map(|i| (g * 4 + i) as f32).sum())
            .collect();
        assert_eq!(result.buffers[1], expected);
        assert!(result.report.counters.loop_iterations >= 32);
        assert!(result.report.counters.flops >= 32);
    }

    #[test]
    fn local_memory_and_barrier() {
        // Reverse the elements of each work group through local memory.
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "reverse".into(),
            params: vec![
                KernelParam {
                    name: "in".into(),
                    ty: CType::const_restrict_pointer(CType::Float, AddrSpace::Global),
                },
                KernelParam {
                    name: "out".into(),
                    ty: CType::pointer(CType::Float, AddrSpace::Global),
                },
            ],
            body: vec![
                CStmt::Decl {
                    ty: CType::Float,
                    name: "tmp".into(),
                    addr: Some(AddrSpace::Local),
                    array_len: Some(ArithExpr::cst(8)),
                    init: None,
                },
                CStmt::Assign {
                    lhs: CExpr::var("tmp").at(CExpr::local_id(0)),
                    rhs: CExpr::var("in").at(CExpr::global_id(0)),
                },
                CStmt::Barrier(Fence::local()),
                CStmt::Assign {
                    lhs: CExpr::var("out").at(CExpr::global_id(0)),
                    rhs: CExpr::var("tmp").at(CExpr::int(7).sub(CExpr::local_id(0))),
                },
            ],
        });
        let input: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let result = VirtualGpu::new()
            .launch(
                &m,
                "reverse",
                LaunchConfig::d1(16, 8),
                vec![KernelArg::Buffer(input), KernelArg::zeros(16)],
            )
            .expect("runs");
        let expected: Vec<f32> = vec![
            7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.0, 15.0, 14.0, 13.0, 12.0, 11.0, 10.0, 9.0, 8.0,
        ];
        assert_eq!(result.buffers[1], expected);
        assert_eq!(result.report.counters.barriers, 2);
        assert!(result.report.counters.local_accesses >= 32);
    }

    #[test]
    fn divergent_if_uses_masks() {
        // Only the first half of each work group writes.
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "half".into(),
            params: vec![KernelParam {
                name: "out".into(),
                ty: CType::pointer(CType::Float, AddrSpace::Global),
            }],
            body: vec![CStmt::If {
                cond: CExpr::local_id(0).lt(CExpr::int(4)),
                then: vec![CStmt::Assign {
                    lhs: CExpr::var("out").at(CExpr::global_id(0)),
                    rhs: CExpr::float(1.0),
                }],
                otherwise: Some(vec![CStmt::Assign {
                    lhs: CExpr::var("out").at(CExpr::global_id(0)),
                    rhs: CExpr::float(2.0),
                }]),
            }],
        });
        let result = VirtualGpu::new()
            .launch(
                &m,
                "half",
                LaunchConfig::d1(8, 8),
                vec![KernelArg::zeros(8)],
            )
            .expect("runs");
        assert_eq!(
            result.buffers[0],
            vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]
        );
    }

    #[test]
    fn vector_load_store_round_trip() {
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "vcopy".into(),
            params: vec![
                KernelParam {
                    name: "in".into(),
                    ty: CType::const_restrict_pointer(CType::Float, AddrSpace::Global),
                },
                KernelParam {
                    name: "out".into(),
                    ty: CType::pointer(CType::Float, AddrSpace::Global),
                },
            ],
            body: vec![CStmt::Expr(CExpr::Call(
                "vstore4".into(),
                vec![
                    CExpr::Call("vload4".into(), vec![CExpr::global_id(0), CExpr::var("in")]),
                    CExpr::global_id(0),
                    CExpr::var("out"),
                ],
            ))],
        });
        let input: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let result = VirtualGpu::new()
            .launch(
                &m,
                "vcopy",
                LaunchConfig::d1(8, 8),
                vec![KernelArg::Buffer(input.clone()), KernelArg::zeros(32)],
            )
            .expect("runs");
        assert_eq!(result.buffers[1], input);
        assert!(result.report.counters.vector_accesses >= 64);
    }

    #[test]
    fn coalesced_accesses_produce_fewer_transactions_than_strided() {
        // Coalesced: out[gid] = in[gid]. Strided: out[gid] = in[gid * 32].
        let make = |stride: i64| {
            let mut m = Module::new();
            m.kernels.push(Kernel {
                name: "k".into(),
                params: vec![
                    KernelParam {
                        name: "in".into(),
                        ty: CType::const_restrict_pointer(CType::Float, AddrSpace::Global),
                    },
                    KernelParam {
                        name: "out".into(),
                        ty: CType::pointer(CType::Float, AddrSpace::Global),
                    },
                ],
                body: vec![CStmt::Assign {
                    lhs: CExpr::var("out").at(CExpr::global_id(0)),
                    rhs: CExpr::var("in").at(CExpr::global_id(0).mul(CExpr::int(stride))),
                }],
            });
            m
        };
        let gpu = VirtualGpu::new();
        let coalesced = gpu
            .launch(
                &make(1),
                "k",
                LaunchConfig::d1(64, 64),
                vec![KernelArg::Buffer(vec![0.0; 64 * 32]), KernelArg::zeros(64)],
            )
            .unwrap();
        let strided = gpu
            .launch(
                &make(32),
                "k",
                LaunchConfig::d1(64, 64),
                vec![KernelArg::Buffer(vec![0.0; 64 * 32]), KernelArg::zeros(64)],
            )
            .unwrap();
        assert!(
            strided.report.counters.global_transactions
                > 4 * coalesced.report.counters.global_transactions,
            "strided {} vs coalesced {}",
            strided.report.counters.global_transactions,
            coalesced.report.counters.global_transactions
        );
        assert!(strided.report.counters.uncoalesced_accesses > 0);
        assert_eq!(coalesced.report.counters.uncoalesced_accesses, 0);
    }

    #[test]
    fn private_arrays_are_per_thread() {
        // Each thread fills a private array and sums it.
        let mut m = Module::new();
        m.kernels.push(Kernel {
            name: "priv".into(),
            params: vec![KernelParam {
                name: "out".into(),
                ty: CType::pointer(CType::Float, AddrSpace::Global),
            }],
            body: vec![
                CStmt::Decl {
                    ty: CType::Float,
                    name: "regs".into(),
                    addr: Some(AddrSpace::Private),
                    array_len: Some(ArithExpr::cst(4)),
                    init: None,
                },
                CStmt::For {
                    var: "i".into(),
                    init: CExpr::int(0),
                    cond: CExpr::var("i").lt(CExpr::int(4)),
                    step: CExpr::int(1),
                    body: vec![CStmt::Assign {
                        lhs: CExpr::var("regs").at(CExpr::var("i")),
                        rhs: CExpr::Cast(CType::Float, Box::new(CExpr::global_id(0))),
                    }],
                },
                CStmt::Assign {
                    lhs: CExpr::var("out").at(CExpr::global_id(0)),
                    rhs: CExpr::var("regs")
                        .at(CExpr::int(0))
                        .add(CExpr::var("regs").at(CExpr::int(3))),
                },
            ],
        });
        let result = VirtualGpu::new()
            .launch(
                &m,
                "priv",
                LaunchConfig::d1(4, 2),
                vec![KernelArg::zeros(4)],
            )
            .expect("runs");
        assert_eq!(result.buffers[0], vec![0.0, 2.0, 4.0, 6.0]);
        assert!(result.report.counters.private_accesses > 0);
    }
}
