//! Views: generating multi-dimensional array accesses (Section 5.3, Figure 5).
//!
//! Data-layout patterns (`split`, `join`, `gather`, `zip`, …) do not produce code; instead the
//! compiler records their effect in a *view* structure. When a user function finally reads or
//! writes an element, the view chain is consumed — walking from the most recent access down to
//! the underlying memory while maintaining an array-index stack and a tuple stack — to produce
//! a flat index expression into the buffer.
//!
//! The same machinery is used for read accesses and write accesses: writing through `join` is
//! the same index transformation as reading through `split`, writing through `scatter` is
//! reading through `gather`, and so on.

use std::fmt;

use lift_arith::ArithExpr;
use lift_ir::{AddressSpace, Literal, PadMode, Reorder};

/// How array accesses are combined into index expressions.
///
/// With `simplify` enabled the arithmetic smart constructors are used, firing the rules of
/// Section 5.3 eagerly; with it disabled the raw mechanical expressions of Figure 6 (line 1)
/// are kept, which is what the "no array-access simplification" configurations of Figure 8
/// measure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessBuilder {
    /// Whether to simplify the generated index expressions.
    pub simplify: bool,
}

impl AccessBuilder {
    /// Creates an access builder.
    pub fn new(simplify: bool) -> AccessBuilder {
        AccessBuilder { simplify }
    }

    fn add(&self, a: ArithExpr, b: ArithExpr) -> ArithExpr {
        if self.simplify {
            a + b
        } else {
            ArithExpr::Sum(vec![a, b])
        }
    }

    fn mul(&self, a: ArithExpr, b: ArithExpr) -> ArithExpr {
        if self.simplify {
            a * b
        } else {
            ArithExpr::Prod(vec![a, b])
        }
    }

    fn div(&self, a: ArithExpr, b: ArithExpr) -> ArithExpr {
        if self.simplify {
            a / b
        } else {
            ArithExpr::IntDiv(Box::new(a), Box::new(b))
        }
    }

    fn rem(&self, a: ArithExpr, b: ArithExpr) -> ArithExpr {
        if self.simplify {
            a % b
        } else {
            ArithExpr::Mod(Box::new(a), Box::new(b))
        }
    }

    fn sub(&self, a: ArithExpr, b: ArithExpr) -> ArithExpr {
        if self.simplify {
            a - b
        } else {
            ArithExpr::Sum(vec![a, ArithExpr::Prod(vec![ArithExpr::cst(-1), b])])
        }
    }

    fn reorder(&self, r: &Reorder, i: ArithExpr, n: &ArithExpr) -> ArithExpr {
        match r {
            Reorder::Identity => i,
            Reorder::Reverse => self.sub(self.sub(n.clone(), ArithExpr::cst(1)), i),
            Reorder::Stride(s) => {
                let quot = self.div(n.clone(), s.clone());
                let left = self.mul(self.rem(i.clone(), s.clone()), quot);
                self.add(left, self.div(i, s.clone()))
            }
        }
    }

    fn min(&self, a: ArithExpr, b: ArithExpr) -> ArithExpr {
        if self.simplify {
            a.min_of(b)
        } else {
            ArithExpr::Min(Box::new(a), Box::new(b))
        }
    }

    fn max(&self, a: ArithExpr, b: ArithExpr) -> ArithExpr {
        if self.simplify {
            a.max_of(b)
        } else {
            ArithExpr::Max(Box::new(a), Box::new(b))
        }
    }

    /// The source index a read at padded position `j` resolves to: the boundary-remapping
    /// arithmetic of the `pad` pattern (Section 3.2's stencil boundary handling), expressed
    /// with OpenCL's integer `min`/`max` builtins so no branches are emitted and — by
    /// construction — no index leaves `[0, n)`.
    fn pad(&self, mode: PadMode, j: ArithExpr, left: &ArithExpr, n: &ArithExpr) -> ArithExpr {
        let shifted = self.sub(j, left.clone());
        match mode {
            // clamp(s, 0, n-1) = min(max(s, 0), n - 1).
            PadMode::Clamp => self.min(
                self.max(shifted, ArithExpr::cst(0)),
                self.sub(n.clone(), ArithExpr::cst(1)),
            ),
            // One reflection at either end: min(max(s, -1 - s), 2n - 1 - s) equals
            //   -1 - s   for s < 0,
            //   s        for 0 <= s < n,
            //   2n-1 - s for s >= n
            // (valid while the pad amounts do not exceed the array length, which the
            // interpreter checks).
            PadMode::Mirror => {
                let reflected_low = self.sub(ArithExpr::cst(-1), shifted.clone());
                let reflected_high = self.sub(
                    self.sub(self.mul(ArithExpr::cst(2), n.clone()), ArithExpr::cst(1)),
                    shifted.clone(),
                );
                self.min(self.max(shifted, reflected_low), reflected_high)
            }
            // Euclidean remainder, emitted as the C-safe double-mod form because `%`
            // truncates towards zero for the negative left-hand sides a left pad produces.
            // The raw `Mod` nodes are built directly: the smart constructor would collapse
            // `(s mod n + n) mod n` to `s mod n`, which is only equivalent under the
            // *euclidean* semantics of the virtual GPU, not in printed OpenCL C.
            PadMode::Wrap => {
                let inner = ArithExpr::Mod(Box::new(shifted), Box::new(n.clone()));
                ArithExpr::Mod(Box::new(self.add(inner, n.clone())), Box::new(n.clone()))
            }
        }
    }
}

/// One layout transformation applied below some number of outer dimensions — the data of a
/// [`View::Layout`] node. `map(slide(…))`, `map(transpose)` and friends do not produce code:
/// their effect on the index stack is identical to the un-mapped pattern, just applied to
/// the dimensions *below* the mapped ones.
#[derive(Clone, Debug, PartialEq)]
pub enum LayoutOp {
    /// The value is `split chunk` of the base.
    Split {
        /// The chunk size.
        chunk: ArithExpr,
    },
    /// The value is `join` of the base, whose inner dimension has the given extent.
    Join {
        /// The extent of the joined (inner) dimension.
        inner: ArithExpr,
    },
    /// The dimension is read through a permutation.
    Reorder {
        /// The permutation.
        reorder: Reorder,
        /// The extent of the permuted dimension.
        len: ArithExpr,
    },
    /// The value is the transposition of the base.
    Transpose,
    /// The value is `slide size step` of the base.
    Slide {
        /// The window step.
        step: ArithExpr,
    },
    /// The value is `pad left right mode` of the base.
    Pad {
        /// Number of elements prepended.
        left: ArithExpr,
        /// The length of the *un-padded* dimension.
        len: ArithExpr,
        /// The boundary mode.
        mode: PadMode,
    },
}

impl LayoutOp {
    /// Applies the op's index transformation to the access stack (outermost remaining
    /// dimension on top) — the same algebra the dedicated [`View`] variants implement,
    /// shared so [`View::Layout`] can run it below `skip` untouched dimensions.
    fn apply(&self, builder: &AccessBuilder, stack: &mut Vec<ArithExpr>) {
        let pop = |stack: &mut Vec<ArithExpr>| stack.pop().unwrap_or_else(|| ArithExpr::cst(0));
        match self {
            LayoutOp::Split { chunk } => {
                let outer = pop(stack);
                let inner = pop(stack);
                stack.push(builder.add(builder.mul(outer, chunk.clone()), inner));
            }
            LayoutOp::Join { inner } => {
                let idx = pop(stack);
                stack.push(builder.rem(idx.clone(), inner.clone()));
                stack.push(builder.div(idx, inner.clone()));
            }
            LayoutOp::Reorder { reorder, len } => {
                let idx = pop(stack);
                stack.push(builder.reorder(reorder, idx, len));
            }
            LayoutOp::Transpose => {
                let a = pop(stack);
                let b = pop(stack);
                stack.push(a);
                stack.push(b);
            }
            LayoutOp::Slide { step } => {
                let window = pop(stack);
                let offset = pop(stack);
                stack.push(builder.add(builder.mul(window, step.clone()), offset));
            }
            LayoutOp::Pad { left, len, mode } => {
                let idx = pop(stack);
                stack.push(builder.pad(*mode, idx, left, len));
            }
        }
    }
}

/// A view of some data: either actual storage, or a chain of layout transformations applied to
/// other views.
#[derive(Clone, Debug, PartialEq)]
pub enum View {
    /// Data stored in a named buffer or variable.
    Memory {
        /// Buffer or variable name as it appears in the generated kernel.
        name: String,
        /// The address space the buffer lives in.
        space: AddressSpace,
        /// `true` when the "buffer" is a scalar variable (e.g. a reduction accumulator).
        scalar: bool,
        /// The extent of each array dimension of the stored value (outermost first), used to
        /// linearise multi-dimensional accesses.
        dims: Vec<ArithExpr>,
    },
    /// A compile-time constant (e.g. the initialiser of a reduction).
    Constant(Literal),
    /// One array dimension has been accessed with the given index.
    Access {
        /// The view being indexed.
        base: Box<View>,
        /// The index expression (typically a loop variable).
        index: ArithExpr,
    },
    /// The viewed value is `split chunk` of the base.
    Split {
        /// The view of the un-split value.
        base: Box<View>,
        /// The chunk size.
        chunk: ArithExpr,
    },
    /// The viewed value is `join` of the base, whose inner dimension has the given extent.
    Join {
        /// The view of the nested value.
        base: Box<View>,
        /// The extent of the joined (inner) dimension.
        inner: ArithExpr,
    },
    /// The outer dimension of the base is read through a permutation.
    Reorder {
        /// The view of the un-permuted value.
        base: Box<View>,
        /// The permutation.
        reorder: Reorder,
        /// The extent of the permuted dimension.
        len: ArithExpr,
    },
    /// The viewed value is the transposition of the base.
    Transpose {
        /// The view of the un-transposed value.
        base: Box<View>,
    },
    /// The viewed value is `slide size step` of the base.
    Slide {
        /// The view of the un-slid value.
        base: Box<View>,
        /// The window step.
        step: ArithExpr,
    },
    /// The viewed value is the element-wise tuple of several arrays.
    Zip {
        /// The views of the zipped arrays.
        bases: Vec<View>,
    },
    /// A tuple component of the base is being accessed.
    TupleComponent {
        /// The tuple-valued view.
        base: Box<View>,
        /// The component index.
        index: usize,
    },
    /// One or more [`LayoutOp`]s applied `skip` dimensions below the surface: the view of
    /// `mapⁿ(op)` (any map flavour — mapped layout patterns move no data, so they generate
    /// no loops), with `skip == 0` for a direct application such as the `pad` pattern.
    Layout {
        /// The view of the un-transformed value.
        base: Box<View>,
        /// How many outer dimensions the ops sit below (the number of enclosing maps).
        skip: usize,
        /// The transformations, outermost first.
        ops: Vec<LayoutOp>,
    },
    /// The viewed value reinterprets the base scalars as vectors of the given width.
    AsVector {
        /// The view of the scalar data.
        base: Box<View>,
        /// The vector width.
        width: usize,
    },
    /// The viewed value reinterprets the base vectors as scalars.
    AsScalar {
        /// The view of the vector data.
        base: Box<View>,
        /// The original vector width.
        width: usize,
    },
}

impl View {
    /// A view of a (flat) buffer with the given dimensions.
    pub fn memory(name: impl Into<String>, space: AddressSpace, dims: Vec<ArithExpr>) -> View {
        View::Memory {
            name: name.into(),
            space,
            scalar: false,
            dims,
        }
    }

    /// A view of a scalar variable.
    pub fn scalar_var(name: impl Into<String>, space: AddressSpace) -> View {
        View::Memory {
            name: name.into(),
            space,
            scalar: true,
            dims: Vec::new(),
        }
    }

    /// Wraps this view in an array access.
    pub fn access(self, index: ArithExpr) -> View {
        View::Access {
            base: Box::new(self),
            index,
        }
    }

    /// Wraps this view in a tuple-component access.
    pub fn component(self, index: usize) -> View {
        View::TupleComponent {
            base: Box::new(self),
            index,
        }
    }
}

/// Errors raised while consuming a view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViewError {
    /// A zip view was reached without a pending tuple projection.
    MissingTupleProjection,
    /// A tuple projection referred to a component that does not exist.
    TupleIndexOutOfRange {
        /// Requested component.
        index: usize,
        /// Available components.
        arity: usize,
    },
    /// The access did not reach down to scalar elements (too few indices for the buffer).
    PartialAccess {
        /// The buffer being accessed.
        memory: String,
    },
    /// Attempted to resolve a memory access on a constant view.
    ConstantAccess,
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::MissingTupleProjection => {
                write!(
                    f,
                    "a zipped value was accessed without selecting a tuple component"
                )
            }
            ViewError::TupleIndexOutOfRange { index, arity } => {
                write!(
                    f,
                    "tuple component {index} requested but only {arity} are zipped"
                )
            }
            ViewError::PartialAccess { memory } => {
                write!(
                    f,
                    "access into `{memory}` does not reach individual elements"
                )
            }
            ViewError::ConstantAccess => {
                write!(f, "cannot generate a memory access for a constant")
            }
        }
    }
}

impl std::error::Error for ViewError {}

/// The outcome of consuming a view.
#[derive(Clone, Debug, PartialEq)]
pub enum Resolved {
    /// The access resolves to a buffer element.
    MemoryAccess {
        /// Buffer or variable name.
        memory: String,
        /// Its address space.
        space: AddressSpace,
        /// `true` if the target is a scalar variable rather than a buffer.
        scalar: bool,
        /// The flat element index.
        index: ArithExpr,
        /// `Some(w)` when the access reads/writes a `w`-wide vector.
        vector_width: Option<usize>,
    },
    /// The access resolves to a compile-time constant.
    Literal(Literal),
}

/// Consumes a view, producing the memory access it denotes (Figure 5, right-hand side).
///
/// # Errors
///
/// Returns a [`ViewError`] if the access is structurally invalid (e.g. a zip consumed without
/// a tuple projection).
pub fn resolve(view: &View, builder: &AccessBuilder) -> Result<Resolved, ViewError> {
    let mut array_stack: Vec<ArithExpr> = Vec::new();
    let mut tuple_stack: Vec<usize> = Vec::new();
    walk(view, builder, &mut array_stack, &mut tuple_stack, None)
}

fn walk(
    view: &View,
    builder: &AccessBuilder,
    array_stack: &mut Vec<ArithExpr>,
    tuple_stack: &mut Vec<usize>,
    vector_width: Option<usize>,
) -> Result<Resolved, ViewError> {
    match view {
        View::Access { base, index } => {
            array_stack.push(index.clone());
            walk(base, builder, array_stack, tuple_stack, vector_width)
        }
        View::TupleComponent { base, index } => {
            tuple_stack.push(*index);
            walk(base, builder, array_stack, tuple_stack, vector_width)
        }
        // The dedicated layout variants share their index algebra with the mapped form:
        // each is exactly its `LayoutOp` applied at the surface (`skip == 0`).
        View::Split { base, chunk } => {
            LayoutOp::Split {
                chunk: chunk.clone(),
            }
            .apply(builder, array_stack);
            walk(base, builder, array_stack, tuple_stack, vector_width)
        }
        View::Join { base, inner } => {
            LayoutOp::Join {
                inner: inner.clone(),
            }
            .apply(builder, array_stack);
            walk(base, builder, array_stack, tuple_stack, vector_width)
        }
        View::Reorder { base, reorder, len } => {
            LayoutOp::Reorder {
                reorder: reorder.clone(),
                len: len.clone(),
            }
            .apply(builder, array_stack);
            walk(base, builder, array_stack, tuple_stack, vector_width)
        }
        View::Transpose { base } => {
            LayoutOp::Transpose.apply(builder, array_stack);
            walk(base, builder, array_stack, tuple_stack, vector_width)
        }
        View::Slide { base, step } => {
            LayoutOp::Slide { step: step.clone() }.apply(builder, array_stack);
            walk(base, builder, array_stack, tuple_stack, vector_width)
        }
        View::Layout { base, skip, ops } => {
            // Set the `skip` outer dimensions aside, run the ops on the dimensions below,
            // then restore the outer indices in their original order.
            let mut saved = Vec::with_capacity(*skip);
            for _ in 0..*skip {
                saved.push(array_stack.pop().unwrap_or_else(|| ArithExpr::cst(0)));
            }
            for op in ops {
                op.apply(builder, array_stack);
            }
            while let Some(idx) = saved.pop() {
                array_stack.push(idx);
            }
            walk(base, builder, array_stack, tuple_stack, vector_width)
        }
        View::Zip { bases } => {
            let component = tuple_stack.pop().ok_or(ViewError::MissingTupleProjection)?;
            let base = bases
                .get(component)
                .ok_or(ViewError::TupleIndexOutOfRange {
                    index: component,
                    arity: bases.len(),
                })?;
            walk(base, builder, array_stack, tuple_stack, vector_width)
        }
        View::AsVector { base, width } => {
            let idx = array_stack.pop().unwrap_or_else(|| ArithExpr::cst(0));
            array_stack.push(builder.mul(idx, ArithExpr::cst(*width as i64)));
            walk(base, builder, array_stack, tuple_stack, Some(*width))
        }
        View::AsScalar { base, .. } => {
            // Scalar elements of a vector array address the same flat storage.
            walk(base, builder, array_stack, tuple_stack, None)
        }
        View::Constant(lit) => {
            if array_stack.is_empty() {
                Ok(Resolved::Literal(*lit))
            } else {
                Err(ViewError::ConstantAccess)
            }
        }
        View::Memory {
            name,
            space,
            scalar,
            dims,
        } => {
            if *scalar {
                return Ok(Resolved::MemoryAccess {
                    memory: name.clone(),
                    space: *space,
                    scalar: true,
                    index: ArithExpr::cst(0),
                    vector_width,
                });
            }
            // Linearise the remaining indices (outermost dimension on top of the stack).
            if array_stack.len() < dims.len() {
                return Err(ViewError::PartialAccess {
                    memory: name.clone(),
                });
            }
            let mut index = ArithExpr::cst(0);
            for (d, extent) in dims.iter().enumerate() {
                let idx = array_stack.pop().unwrap_or_else(|| ArithExpr::cst(0));
                let _ = extent;
                // Stride of dimension d = product of the extents of the inner dimensions.
                let mut stride = ArithExpr::cst(1);
                for inner in &dims[d + 1..] {
                    stride = builder.mul(stride, inner.clone());
                }
                index = builder.add(index, builder.mul(idx, stride));
            }
            // Any indices left over address dimensions beyond the buffer's own type (they come
            // from views layered on top); fold them in assuming unit stride.
            while let Some(extra) = array_stack.pop() {
                index = builder.add(index, extra);
            }
            Ok(Resolved::MemoryAccess {
                memory: name.clone(),
                space: *space,
                scalar: false,
                index,
                vector_width,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simplifying() -> AccessBuilder {
        AccessBuilder::new(true)
    }

    fn raw() -> AccessBuilder {
        AccessBuilder::new(false)
    }

    fn n() -> ArithExpr {
        ArithExpr::size_var("N")
    }

    fn mem(name: &str, dims: Vec<ArithExpr>) -> View {
        View::memory(name, AddressSpace::Global, dims)
    }

    #[test]
    fn dot_product_first_access_matches_figure5() {
        // Figure 5: x[(2 * l_id) + (128 * wg_id) + i]
        let wg = ArithExpr::var_in_range("wg_id", 0, n() / 128);
        let l = ArithExpr::var_in_range("l_id", 0, ArithExpr::cst(64));
        let i = ArithExpr::var_in_range("i", 0, ArithExpr::cst(2));
        let x = mem("x", vec![n()]);
        let y = mem("y", vec![n()]);
        let zipped = View::Zip { bases: vec![x, y] };
        let split128 = View::Split {
            base: Box::new(zipped),
            chunk: ArithExpr::cst(128),
        };
        let per_wg = split128.access(wg.clone());
        let split2 = View::Split {
            base: Box::new(per_wg),
            chunk: ArithExpr::cst(2),
        };
        let per_thread = split2.access(l.clone());
        let element = per_thread.access(i.clone()).component(0);

        let resolved = resolve(&element, &simplifying()).expect("resolves");
        match resolved {
            Resolved::MemoryAccess { memory, index, .. } => {
                assert_eq!(memory, "x");
                assert_eq!(index, l * 2 + wg * 128 + i);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn second_zip_component_reads_the_other_array() {
        let i = ArithExpr::var_in_range("i", 0, n());
        let x = mem("x", vec![n()]);
        let y = mem("y", vec![n()]);
        let zipped = View::Zip { bases: vec![x, y] };
        let elem = zipped.access(i.clone()).component(1);
        match resolve(&elem, &simplifying()).unwrap() {
            Resolved::MemoryAccess { memory, index, .. } => {
                assert_eq!(memory, "y");
                assert_eq!(index, i);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zip_without_projection_is_an_error() {
        let i = ArithExpr::var_in_range("i", 0, n());
        let zipped = View::Zip {
            bases: vec![mem("x", vec![n()]), mem("y", vec![n()])],
        };
        let elem = zipped.access(i);
        assert_eq!(
            resolve(&elem, &simplifying()).unwrap_err(),
            ViewError::MissingTupleProjection
        );
    }

    #[test]
    fn join_then_access_recovers_two_dimensional_index() {
        // join of [[f]M]N accessed at k reads memory[k] because the memory itself is [[f]M]N.
        let m = ArithExpr::size_var("M");
        let k = ArithExpr::var_in_range("k", 0, n() * m.clone());
        let matrix = mem("a", vec![n(), m.clone()]);
        let joined = View::Join {
            base: Box::new(matrix),
            inner: m.clone(),
        };
        let elem = joined.access(k.clone());
        match resolve(&elem, &simplifying()).unwrap() {
            Resolved::MemoryAccess { index, .. } => {
                // (k / M) * M + k mod M == k by rule (4).
                assert_eq!(index, k);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn transpose_swaps_indices() {
        let m = ArithExpr::size_var("M");
        let row = ArithExpr::var_in_range("r", 0, m.clone());
        let col = ArithExpr::var_in_range("c", 0, n());
        let matrix = mem("a", vec![n(), m.clone()]);
        let transposed = View::Transpose {
            base: Box::new(matrix),
        };
        let elem = transposed.access(row.clone()).access(col.clone());
        match resolve(&elem, &simplifying()).unwrap() {
            Resolved::MemoryAccess { index, .. } => {
                assert_eq!(index, col * m + row);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn slide_offsets_by_the_step() {
        let w = ArithExpr::var_in_range("w", 0, n());
        let j = ArithExpr::var_in_range("j", 0, ArithExpr::cst(3));
        let input = mem("in", vec![n()]);
        let slid = View::Slide {
            base: Box::new(input),
            step: ArithExpr::cst(1),
        };
        let elem = slid.access(w.clone()).access(j.clone());
        match resolve(&elem, &simplifying()).unwrap() {
            Resolved::MemoryAccess { index, .. } => assert_eq!(index, w + j),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pad_clamp_emits_min_max_index_arithmetic() {
        // A padded read at position j reads in[min(max(j - 1, 0), N - 1)].
        let j = ArithExpr::var_in_range("j", 0, n() + 2);
        let input = mem("in", vec![n()]);
        let padded = View::Layout {
            base: Box::new(input),
            skip: 0,
            ops: vec![LayoutOp::Pad {
                left: ArithExpr::cst(1),
                len: n(),
                mode: PadMode::Clamp,
            }],
        };
        let elem = padded.access(j.clone());
        match resolve(&elem, &simplifying()).unwrap() {
            Resolved::MemoryAccess { index, .. } => {
                assert_eq!(
                    index,
                    (j - 1).max_of(ArithExpr::cst(0)).min_of(n() - 1),
                    "clamped index"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pad_wrap_emits_a_c_safe_double_mod() {
        let j = ArithExpr::var_in_range("j", 0, n() + 2);
        let input = mem("in", vec![n()]);
        let padded = View::Layout {
            base: Box::new(input),
            skip: 0,
            ops: vec![LayoutOp::Pad {
                left: ArithExpr::cst(1),
                len: n(),
                mode: PadMode::Wrap,
            }],
        };
        let elem = padded.access(j);
        match resolve(&elem, &simplifying()).unwrap() {
            Resolved::MemoryAccess { index, .. } => {
                // Both mods survive: under C's truncating `%` the inner mod alone would go
                // negative for the left pad.
                assert_eq!(index.div_mod_count(), 2, "index {index}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mapped_slide_applies_below_the_outer_dimension() {
        // map(slide(3, 1))(x)[i][w][e] reads x[i][w + e].
        let m = ArithExpr::size_var("M");
        let i = ArithExpr::var_in_range("i", 0, n());
        let w = ArithExpr::var_in_range("w", 0, m.clone() - 2);
        let e = ArithExpr::var_in_range("e", 0, ArithExpr::cst(3));
        let matrix = mem("a", vec![n(), m.clone()]);
        let slid_rows = View::Layout {
            base: Box::new(matrix),
            skip: 1,
            ops: vec![LayoutOp::Slide {
                step: ArithExpr::cst(1),
            }],
        };
        let elem = slid_rows
            .access(i.clone())
            .access(w.clone())
            .access(e.clone());
        match resolve(&elem, &simplifying()).unwrap() {
            Resolved::MemoryAccess { index, .. } => {
                assert_eq!(index, i * m + w + e);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mapped_transpose_swaps_the_inner_dimensions() {
        // map(transpose)(x)[i][a][b] reads x[i][b][a].
        let k = ArithExpr::size_var("K");
        let m = ArithExpr::size_var("M");
        let i = ArithExpr::var_in_range("i", 0, n());
        let a = ArithExpr::var_in_range("a", 0, m.clone());
        let b = ArithExpr::var_in_range("b", 0, k.clone());
        let cube = mem("c", vec![n(), k.clone(), m.clone()]);
        let t_rows = View::Layout {
            base: Box::new(cube),
            skip: 1,
            ops: vec![LayoutOp::Transpose],
        };
        let elem = t_rows.access(i.clone()).access(a.clone()).access(b.clone());
        match resolve(&elem, &simplifying()).unwrap() {
            Resolved::MemoryAccess { index, .. } => {
                assert_eq!(index, (i * k.clone() + b) * m + a);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reorder_stride_generates_the_transpose_index() {
        let rows = ArithExpr::size_var("R");
        let cols = ArithExpr::size_var("C");
        let len = rows.clone() * cols.clone();
        let i = ArithExpr::var_in_range("i", 0, len.clone());
        let input = mem("in", vec![len.clone()]);
        let reordered = View::Reorder {
            base: Box::new(input),
            reorder: Reorder::Stride(cols.clone()),
            len,
        };
        let elem = reordered.access(i.clone());
        match resolve(&elem, &simplifying()).unwrap() {
            Resolved::MemoryAccess { index, .. } => {
                assert_eq!(index, (i.clone() % cols.clone()) * rows + i / cols);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn raw_builder_keeps_unsimplified_indices() {
        // The same access with and without simplification: the raw index contains divisions
        // and modulos, the simplified one does not (Figure 6).
        let m = ArithExpr::size_var("M");
        let k = ArithExpr::var_in_range("k", 0, n() * m.clone());
        let matrix = mem("a", vec![n() * m.clone()]);
        let joined = View::Join {
            base: Box::new(View::Split {
                base: Box::new(matrix),
                chunk: m.clone(),
            }),
            inner: m,
        };
        let elem = joined.access(k.clone());
        let simplified = match resolve(&elem, &simplifying()).unwrap() {
            Resolved::MemoryAccess { index, .. } => index,
            other => panic!("unexpected {other:?}"),
        };
        let rough = match resolve(&elem, &raw()).unwrap() {
            Resolved::MemoryAccess { index, .. } => index,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(simplified, k);
        assert_eq!(simplified.div_mod_count(), 0);
        assert!(
            rough.div_mod_count() >= 2,
            "raw index should keep / and %: {rough}"
        );
    }

    #[test]
    fn scalar_variables_ignore_indices() {
        let acc = View::scalar_var("acc1", AddressSpace::Private);
        let elem = acc.access(ArithExpr::cst(0));
        match resolve(&elem, &simplifying()).unwrap() {
            Resolved::MemoryAccess {
                memory,
                scalar,
                index,
                ..
            } => {
                assert_eq!(memory, "acc1");
                assert!(scalar);
                assert_eq!(index, ArithExpr::cst(0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn constants_resolve_to_literals() {
        let v = View::Constant(Literal::Float(0.0));
        assert_eq!(
            resolve(&v, &simplifying()).unwrap(),
            Resolved::Literal(Literal::Float(0.0))
        );
        let bad = View::Constant(Literal::Float(0.0)).access(ArithExpr::cst(1));
        assert_eq!(
            resolve(&bad, &simplifying()).unwrap_err(),
            ViewError::ConstantAccess
        );
    }

    #[test]
    fn as_vector_accesses_are_marked() {
        let i = ArithExpr::var_in_range("i", 0, n());
        let input = mem("in", vec![n() * 4]);
        let vectors = View::AsVector {
            base: Box::new(input),
            width: 4,
        };
        let elem = vectors.access(i.clone());
        match resolve(&elem, &simplifying()).unwrap() {
            Resolved::MemoryAccess {
                index,
                vector_width,
                ..
            } => {
                assert_eq!(index, i * 4);
                assert_eq!(vector_width, Some(4));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_dimensional_memory_linearises_row_major() {
        let m = ArithExpr::size_var("M");
        let r = ArithExpr::var_in_range("r", 0, n());
        let c = ArithExpr::var_in_range("c", 0, m.clone());
        let matrix = mem("a", vec![n(), m.clone()]);
        let elem = matrix.access(r.clone()).access(c.clone());
        match resolve(&elem, &simplifying()).unwrap() {
            Resolved::MemoryAccess { index, .. } => assert_eq!(index, r * m + c),
            other => panic!("unexpected {other:?}"),
        }
    }
}
