//! OpenCL code generation (Section 5.5).
//!
//! The generator walks the typed Lift IR from the result backwards: every expression is asked
//! to produce its value into a *destination view*. Data-layout patterns transform the
//! destination (writing through `join` is reading through `split`), parallel and sequential
//! maps emit loops over the OpenCL work-item functions, reductions emit accumulation loops,
//! `iterate` emits the double-buffered loop of Figure 7, and user functions finally emit the
//! assignment `out[write-index] = f(in[read-index], …)` whose indices come from consuming the
//! read and write views.
//!
//! The three optimisations evaluated in the paper are applied here: array-access
//! simplification (through the [`AccessBuilder`]), control-flow simplification (loops whose
//! trip count is statically one collapse to a block or an `if`), and barrier elimination.

use std::collections::HashMap;

use lift_arith::ArithExpr;
use lift_ir::{
    AddressSpace, ExprId, ExprKind, FunDecl, FunDeclId, Literal, Pattern, Program, Reorder,
    ScalarExpr, ScalarKind, Type, TypeError, UserFun,
};
use lift_ocl::{
    AddrSpace, CExpr, CFunction, CStmt, CType, Fence, Kernel, KernelParam, Module, StructDef,
};

use crate::address_space::{infer_address_spaces, AddressSpaces};
use crate::options::CompilationOptions;
use crate::view::{resolve, AccessBuilder, Resolved, View, ViewError};

/// Errors produced by the compiler.
#[derive(Clone, Debug, PartialEq)]
pub enum CodegenError {
    /// Type inference failed.
    Type(TypeError),
    /// A view could not be consumed into an array access.
    View(ViewError),
    /// The program uses a combination of patterns the generator does not support.
    Unsupported(String),
    /// The program has no root lambda.
    MissingRoot,
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::Type(e) => write!(f, "type error: {e}"),
            CodegenError::View(e) => write!(f, "view error: {e}"),
            CodegenError::Unsupported(what) => write!(f, "unsupported program shape: {what}"),
            CodegenError::MissingRoot => write!(f, "the program has no root lambda"),
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<TypeError> for CodegenError {
    fn from(e: TypeError) -> Self {
        CodegenError::Type(e)
    }
}

impl From<ViewError> for CodegenError {
    fn from(e: ViewError) -> Self {
        CodegenError::View(e)
    }
}

/// Describes one parameter of the generated kernel so callers know what to pass at launch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelParamInfo {
    /// The buffer for the `index`-th input of the Lift program.
    Input {
        /// Kernel parameter name.
        name: String,
        /// Index of the corresponding root-lambda parameter.
        index: usize,
    },
    /// A scalar input of the Lift program.
    ScalarInput {
        /// Kernel parameter name.
        name: String,
        /// Index of the corresponding root-lambda parameter.
        index: usize,
    },
    /// The output buffer.
    Output {
        /// Kernel parameter name.
        name: String,
    },
    /// A size variable (array length) passed as an `int`.
    Size {
        /// Kernel parameter name (the variable name, e.g. `N`).
        name: String,
    },
}

/// The result of compiling a Lift program.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledKernel {
    /// The generated OpenCL module (structs, user functions, one kernel).
    pub module: Module,
    /// The kernel name.
    pub kernel_name: String,
    /// The kernel parameters in order.
    pub params: Vec<KernelParamInfo>,
    /// The number of elements of the output buffer (symbolic in the size variables).
    pub output_len: ArithExpr,
}

impl CompiledKernel {
    /// The OpenCL C source of the whole module.
    pub fn source(&self) -> String {
        lift_ocl::print_module(&self.module)
    }

    /// Number of non-empty source lines (the code-size metric of Table 1).
    pub fn line_count(&self) -> usize {
        self.source()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    }
}

/// Compiles a Lift program into an OpenCL kernel.
///
/// # Errors
///
/// Returns a [`CodegenError`] if the program is ill-typed or uses an unsupported combination
/// of patterns.
pub fn compile(
    program: &Program,
    options: &CompilationOptions,
) -> Result<CompiledKernel, CodegenError> {
    if let Some(name) = program.first_high_level_pattern() {
        return Err(CodegenError::Unsupported(format!(
            "high-level pattern `{name}` must be lowered to an OpenCL-specific pattern \
             (e.g. with the `lift-rewrite` exploration) before code generation"
        )));
    }
    let mut program = program.clone();
    lift_ir::infer_types(&mut program)?;
    let spaces = infer_address_spaces(&program);
    let generator = Generator {
        program,
        spaces,
        options: options.clone(),
        builder: AccessBuilder::new(options.array_access_simplification),
        module: Module::new(),
        decls: Vec::new(),
        views: HashMap::new(),
        counter: 0,
    };
    generator.generate()
}

struct Generator {
    program: Program,
    spaces: AddressSpaces,
    options: CompilationOptions,
    builder: AccessBuilder,
    module: Module,
    decls: Vec<CStmt>,
    views: HashMap<ExprId, View>,
    counter: usize,
}

impl Generator {
    fn fresh(&mut self, base: &str) -> String {
        let n = self.counter;
        self.counter += 1;
        if n == 0 {
            base.to_string()
        } else {
            format!("{base}_{n}")
        }
    }

    fn generate(mut self) -> Result<CompiledKernel, CodegenError> {
        if self.program.root().is_none() {
            return Err(CodegenError::MissingRoot);
        }
        let root_params = self.program.root_params().to_vec();
        let body = self.program.root_body();
        let body_type = self.program.type_of(body).clone();

        // Kernel parameters: inputs, output, then the size variables.
        let mut params = Vec::new();
        let mut kernel_params = Vec::new();
        let mut size_vars: Vec<String> = Vec::new();
        for (i, p) in root_params.iter().enumerate() {
            let ty = self.program.type_of(*p).clone();
            let name = match &self.program.expr(*p).kind {
                ExprKind::Param { name } => name.clone(),
                _ => format!("arg{i}"),
            };
            collect_size_vars(&ty, &mut size_vars);
            if ty.is_array() {
                kernel_params.push(KernelParam {
                    name: name.clone(),
                    ty: CType::const_restrict_pointer(
                        scalar_ctype(ty.innermost()),
                        AddrSpace::Global,
                    ),
                });
                params.push(KernelParamInfo::Input {
                    name: name.clone(),
                    index: i,
                });
                let dims = array_dims(&ty);
                self.views
                    .insert(*p, View::memory(name, AddressSpace::Global, dims));
            } else {
                kernel_params.push(KernelParam {
                    name: name.clone(),
                    ty: scalar_ctype(&ty),
                });
                params.push(KernelParamInfo::ScalarInput {
                    name: name.clone(),
                    index: i,
                });
                self.views
                    .insert(*p, View::scalar_var(name, AddressSpace::Private));
            }
        }
        collect_size_vars(&body_type, &mut size_vars);

        let out_name = "output".to_string();
        kernel_params.push(KernelParam {
            name: out_name.clone(),
            ty: CType::pointer(scalar_ctype(body_type.innermost()), AddrSpace::Global),
        });
        params.push(KernelParamInfo::Output {
            name: out_name.clone(),
        });
        let output_len = body_type.element_count();

        size_vars.sort();
        size_vars.dedup();
        for s in &size_vars {
            kernel_params.push(KernelParam {
                name: s.clone(),
                ty: CType::Int,
            });
            params.push(KernelParamInfo::Size { name: s.clone() });
        }

        let out_view = View::memory(out_name, AddressSpace::Global, array_dims(&body_type));
        let body_stmts = self.gen_expr(body, &out_view)?;

        let mut kernel_body = std::mem::take(&mut self.decls);
        kernel_body.extend(body_stmts);
        let kernel_name = self.program.name().to_string();
        self.module.kernels.push(Kernel {
            name: kernel_name.clone(),
            params: kernel_params,
            body: kernel_body,
        });

        Ok(CompiledKernel {
            module: self.module,
            kernel_name,
            params,
            output_len,
        })
    }

    // -------------------------------------------------------------------- expressions

    /// Generates code that writes the value of `expr` through the destination view.
    fn gen_expr(&mut self, expr: ExprId, dest: &View) -> Result<Vec<CStmt>, CodegenError> {
        match self.program.expr(expr).kind.clone() {
            ExprKind::Literal(lit) => {
                let target = resolve(dest, &self.builder)?;
                Ok(vec![store_stmt(&target, literal_expr(lit), &self.builder)?])
            }
            ExprKind::Param { name } => Err(CodegenError::Unsupported(format!(
                "program result is the unmodified parameter `{name}`; wrap it in map(id)"
            ))),
            ExprKind::FunCall { f, args } => self.gen_call(expr, f, &args, dest),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn gen_call(
        &mut self,
        expr: ExprId,
        f: FunDeclId,
        args: &[ExprId],
        dest: &View,
    ) -> Result<Vec<CStmt>, CodegenError> {
        let decl = self.program.decl(f).clone();
        match decl {
            FunDecl::Lambda { .. } | FunDecl::UserFun(_) => {
                let mut stmts = Vec::new();
                let mut views = Vec::new();
                let mut types = Vec::new();
                for a in args {
                    let (v, t) = self.read_view(*a, &mut stmts)?;
                    views.push(v);
                    types.push(t);
                }
                stmts.extend(self.gen_apply(f, &views, &types, dest)?);
                Ok(stmts)
            }
            FunDecl::Pattern(pattern) => match pattern {
                // Data-layout patterns transform the destination and recurse into the argument.
                Pattern::Join => {
                    let arg_ty = self.program.type_of(args[0]).clone();
                    let inner = inner_len(&arg_ty)?;
                    let new_dest = View::Split { base: Box::new(dest.clone()), chunk: inner };
                    self.gen_expr(args[0], &new_dest)
                }
                Pattern::Split { chunk } => {
                    let new_dest = View::Join { base: Box::new(dest.clone()), inner: chunk };
                    self.gen_expr(args[0], &new_dest)
                }
                Pattern::Scatter { reorder } => {
                    let arg_ty = self.program.type_of(args[0]).clone();
                    let len = outer_len(&arg_ty)?;
                    let new_dest =
                        View::Reorder { base: Box::new(dest.clone()), reorder, len };
                    self.gen_expr(args[0], &new_dest)
                }
                Pattern::Gather { reorder } => match reorder {
                    Reorder::Identity => self.gen_expr(args[0], dest),
                    _ => Err(CodegenError::Unsupported(
                        "gather directly on the write path (use it on the read side)".into(),
                    )),
                },
                Pattern::Transpose => {
                    let new_dest = View::Transpose { base: Box::new(dest.clone()) };
                    self.gen_expr(args[0], &new_dest)
                }
                Pattern::AsScalar => {
                    let arg_ty = self.program.type_of(args[0]).clone();
                    let width = vector_width_of(&arg_ty)?;
                    let new_dest = View::AsVector { base: Box::new(dest.clone()), width };
                    self.gen_expr(args[0], &new_dest)
                }
                Pattern::AsVector { width } => {
                    let new_dest = View::AsScalar { base: Box::new(dest.clone()), width };
                    self.gen_expr(args[0], &new_dest)
                }
                Pattern::Id => self.gen_expr(args[0], dest),
                Pattern::ToGlobal { f } | Pattern::ToLocal { f } | Pattern::ToPrivate { f } => {
                    self.gen_call(expr, f, args, dest)
                }
                Pattern::Slide { .. } | Pattern::Zip { .. } | Pattern::Get { .. } => {
                    Err(CodegenError::Unsupported(format!(
                        "`{}` cannot appear as the final producer of a value; it is a read-side pattern",
                        pattern.name()
                    )))
                }
                // Computational patterns: build read views for the arguments and apply.
                _ => {
                    let mut stmts = Vec::new();
                    let mut views = Vec::new();
                    let mut types = Vec::new();
                    for a in args {
                        let (v, t) = self.read_view(*a, &mut stmts)?;
                        views.push(v);
                        types.push(t);
                    }
                    stmts.extend(self.gen_pattern(expr, &pattern, &views, &types, dest)?);
                    Ok(stmts)
                }
            },
        }
    }

    /// Computes a readable view of `expr`, generating code into `stmts` if the expression is a
    /// computation that must be materialised first.
    fn read_view(
        &mut self,
        expr: ExprId,
        stmts: &mut Vec<CStmt>,
    ) -> Result<(View, Type), CodegenError> {
        let ty = self.program.type_of(expr).clone();
        if let Some(v) = self.views.get(&expr) {
            return Ok((v.clone(), ty));
        }
        let view = match self.program.expr(expr).kind.clone() {
            ExprKind::Literal(lit) => View::Constant(lit),
            ExprKind::Param { name } => {
                return Err(CodegenError::Unsupported(format!(
                    "parameter `{name}` used before it was bound to a view"
                )))
            }
            ExprKind::FunCall { f, args } => match self.program.decl(f).clone() {
                FunDecl::Pattern(pattern) => match pattern {
                    Pattern::Split { chunk } => {
                        let (base, _) = self.read_view(args[0], stmts)?;
                        View::Split {
                            base: Box::new(base),
                            chunk,
                        }
                    }
                    Pattern::Join => {
                        let arg_ty = self.program.type_of(args[0]).clone();
                        let inner = inner_len(&arg_ty)?;
                        let (base, _) = self.read_view(args[0], stmts)?;
                        View::Join {
                            base: Box::new(base),
                            inner,
                        }
                    }
                    Pattern::Gather { reorder } => {
                        let arg_ty = self.program.type_of(args[0]).clone();
                        let len = outer_len(&arg_ty)?;
                        let (base, _) = self.read_view(args[0], stmts)?;
                        View::Reorder {
                            base: Box::new(base),
                            reorder,
                            len,
                        }
                    }
                    Pattern::Scatter { reorder } => {
                        let arg_ty = self.program.type_of(args[0]).clone();
                        let len = outer_len(&arg_ty)?;
                        let inverse = invert_reorder(&reorder, &len)?;
                        let (base, _) = self.read_view(args[0], stmts)?;
                        View::Reorder {
                            base: Box::new(base),
                            reorder: inverse,
                            len,
                        }
                    }
                    Pattern::Transpose => {
                        let (base, _) = self.read_view(args[0], stmts)?;
                        View::Transpose {
                            base: Box::new(base),
                        }
                    }
                    Pattern::Slide { step, .. } => {
                        let (base, _) = self.read_view(args[0], stmts)?;
                        View::Slide {
                            base: Box::new(base),
                            step,
                        }
                    }
                    Pattern::Zip { .. } => {
                        let mut bases = Vec::with_capacity(args.len());
                        for a in args {
                            bases.push(self.read_view(a, stmts)?.0);
                        }
                        View::Zip { bases }
                    }
                    Pattern::Get { index } => {
                        let (base, _) = self.read_view(args[0], stmts)?;
                        base.component(index)
                    }
                    Pattern::AsVector { width } => {
                        let (base, _) = self.read_view(args[0], stmts)?;
                        View::AsVector {
                            base: Box::new(base),
                            width,
                        }
                    }
                    Pattern::AsScalar => {
                        let arg_ty = self.program.type_of(args[0]).clone();
                        let width = vector_width_of(&arg_ty)?;
                        let (base, _) = self.read_view(args[0], stmts)?;
                        View::AsScalar {
                            base: Box::new(base),
                            width,
                        }
                    }
                    Pattern::Id => self.read_view(args[0], stmts)?.0,
                    Pattern::Iterate { .. } => {
                        let (result_view, code) = self.gen_iterate(expr, f, &args)?;
                        stmts.extend(code);
                        result_view
                    }
                    _ => self.materialise(expr, stmts)?,
                },
                _ => self.materialise(expr, stmts)?,
            },
        };
        self.views.insert(expr, view.clone());
        Ok((view, ty))
    }

    /// Allocates a buffer (or scalar variable) for the value of `expr`, generates the code
    /// producing it, and returns a view of the new storage.
    fn materialise(&mut self, expr: ExprId, stmts: &mut Vec<CStmt>) -> Result<View, CodegenError> {
        let ty = self.program.type_of(expr).clone();
        let space = *self.spaces.get(&expr).unwrap_or(&AddressSpace::Private);
        let view = self.allocate(&ty, space)?;
        let code = self.gen_expr(expr, &view)?;
        stmts.extend(code);
        Ok(view)
    }

    /// Allocates storage of the given type in the given address space and returns its view.
    fn allocate(&mut self, ty: &Type, space: AddressSpace) -> Result<View, CodegenError> {
        let elem_count = ty.element_count();
        let scalar = elem_count.as_cst() == Some(1) && ty.array_depth() <= 1;
        if space == AddressSpace::Global {
            return Err(CodegenError::Unsupported(
                "intermediate results in global memory are not supported; use toLocal or \
                 toPrivate for intermediate storage"
                    .into(),
            ));
        }
        let ctype = scalar_ctype(ty.innermost());
        if scalar {
            let name = self.fresh("acc");
            self.decls.push(CStmt::Decl {
                ty: ctype,
                name: name.clone(),
                addr: None,
                array_len: None,
                init: None,
            });
            Ok(View::scalar_var(name, space))
        } else {
            let name = self.fresh("tmp");
            self.decls.push(CStmt::Decl {
                ty: ctype,
                name: name.clone(),
                addr: Some(addr_of(space)),
                array_len: Some(elem_count),
                init: None,
            });
            Ok(View::memory(name, space, array_dims(ty)))
        }
    }

    // -------------------------------------------------------------------- function application

    /// Generates code applying function `f` to data described by `views` (with the given
    /// types), writing the result through `dest`.
    fn gen_apply(
        &mut self,
        f: FunDeclId,
        views: &[View],
        types: &[Type],
        dest: &View,
    ) -> Result<Vec<CStmt>, CodegenError> {
        match self.program.decl(f).clone() {
            FunDecl::Lambda { params, body } => {
                if params.len() != views.len() {
                    return Err(CodegenError::Unsupported(
                        "lambda applied to the wrong number of arguments".into(),
                    ));
                }
                for (p, v) in params.iter().zip(views) {
                    self.views.insert(*p, v.clone());
                }
                // Re-annotate the lambda body for these argument types: the whole-program
                // inference may have typed it at a different (e.g. unrolled) instantiation.
                lift_ir::infer_call_types(&mut self.program, f, types)?;
                self.gen_expr(body, dest)
            }
            FunDecl::UserFun(uf) => {
                let call = self.user_fun_call(&uf, views, types, None)?;
                let target = resolve(dest, &self.builder)?;
                Ok(vec![store_stmt(&target, call, &self.builder)?])
            }
            FunDecl::Pattern(pattern) => self.gen_pattern_from_views(&pattern, views, types, dest),
        }
    }

    /// Dispatch for computational patterns reached through [`Generator::gen_call`].
    fn gen_pattern(
        &mut self,
        expr: ExprId,
        pattern: &Pattern,
        views: &[View],
        types: &[Type],
        dest: &View,
    ) -> Result<Vec<CStmt>, CodegenError> {
        match pattern {
            Pattern::Iterate { .. } => {
                // Iterate reached with an explicit destination: generate it, then copy.
                let f = match &self.program.expr(expr).kind {
                    ExprKind::FunCall { f, .. } => *f,
                    _ => unreachable!("gen_pattern is only called on calls"),
                };
                let args: Vec<ExprId> = match &self.program.expr(expr).kind {
                    ExprKind::FunCall { args, .. } => args.clone(),
                    _ => unreachable!("gen_pattern is only called on calls"),
                };
                let (result_view, mut stmts) = self.gen_iterate(expr, f, &args)?;
                let out_ty = self.program.type_of(expr).clone();
                stmts.extend(self.copy_loop(&result_view, dest, &out_ty)?);
                Ok(stmts)
            }
            _ => self.gen_pattern_from_views(pattern, views, types, dest),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn gen_pattern_from_views(
        &mut self,
        pattern: &Pattern,
        views: &[View],
        types: &[Type],
        dest: &View,
    ) -> Result<Vec<CStmt>, CodegenError> {
        match pattern {
            Pattern::MapSeq { f } => {
                self.gen_map_loop(MapKind::Seq, *f, &views[0], &types[0], dest)
            }
            Pattern::MapGlb { dim, f } => {
                self.gen_map_loop(MapKind::Global(*dim), *f, &views[0], &types[0], dest)
            }
            Pattern::MapWrg { dim, f } => {
                self.gen_map_loop(MapKind::WorkGroup(*dim), *f, &views[0], &types[0], dest)
            }
            Pattern::MapLcl { dim, f } => {
                self.gen_map_loop(MapKind::Local(*dim), *f, &views[0], &types[0], dest)
            }
            Pattern::MapVec { f } => self.gen_map_vec(*f, &views[0], &types[0], dest),
            Pattern::ReduceSeq { f } => {
                self.gen_reduce(*f, &views[0], &types[0], &views[1], &types[1], dest)
            }
            Pattern::Id => {
                // Identity over a scalar value: a single copy.
                let value = self.load_value(&views[0], &types[0])?;
                let target = resolve(dest, &self.builder)?;
                Ok(vec![store_stmt(&target, value, &self.builder)?])
            }
            Pattern::ToGlobal { f } | Pattern::ToLocal { f } | Pattern::ToPrivate { f } => {
                self.gen_apply(*f, views, types, dest)
            }
            other => Err(CodegenError::Unsupported(format!(
                "pattern `{}` cannot be generated in this position",
                other.name()
            ))),
        }
    }

    fn gen_map_loop(
        &mut self,
        kind: MapKind,
        f: FunDeclId,
        input: &View,
        input_ty: &Type,
        dest: &View,
    ) -> Result<Vec<CStmt>, CodegenError> {
        let (elem_ty, len) = input_ty
            .as_array()
            .map(|(e, l)| (e.clone(), l.clone()))
            .ok_or_else(|| CodegenError::Unsupported("map over a non-array value".into()))?;

        let (var_base, init, step, parallel_width) = match kind {
            MapKind::Seq => ("i", CExpr::int(0), CExpr::int(1), None),
            MapKind::Global(d) => (
                "gl_id",
                CExpr::global_id(d),
                CExpr::global_size(d),
                Some(self.options.global_size[d as usize]),
            ),
            MapKind::WorkGroup(d) => (
                "wg_id",
                CExpr::group_id(d),
                CExpr::num_groups(d),
                Some(self.options.num_groups()[d as usize]),
            ),
            MapKind::Local(d) => (
                "l_id",
                CExpr::local_id(d),
                CExpr::local_size(d),
                Some(self.options.local_size[d as usize]),
            ),
        };
        let var = self.fresh(var_base);
        let simplify_cf = self.options.control_flow_simplification;
        // A sequential map over a single element needs neither a loop nor a loop variable:
        // index the element directly with 0 (control-flow simplification, Section 5.5).
        let collapse_seq = simplify_cf && matches!(kind, MapKind::Seq) && len.as_cst() == Some(1);
        let loop_var = if collapse_seq {
            ArithExpr::cst(0)
        } else {
            ArithExpr::var_in_range(&var, 0, len.clone())
        };

        let elem_view = input.clone().access(loop_var.clone());
        let elem_dest = dest.clone().access(loop_var.clone());
        let body = self.gen_apply(f, &[elem_view], &[elem_ty], &elem_dest)?;

        let mut stmts = Vec::new();
        match (kind, len.as_cst(), parallel_width) {
            // Sequential map over a single element: no loop at all.
            (MapKind::Seq, Some(1), _) if simplify_cf => {
                stmts.extend(body);
            }
            // Parallel map with exactly as many threads as elements: a block with the id bound.
            (_, Some(n), Some(width)) if simplify_cf && n == width as i64 => {
                let mut block = vec![CStmt::Decl {
                    ty: CType::Int,
                    name: var.clone(),
                    addr: None,
                    array_len: None,
                    init: Some(init),
                }];
                block.extend(body);
                stmts.push(CStmt::Block(block));
            }
            // Fewer elements than threads: guard with an `if`.
            (_, Some(n), Some(width)) if simplify_cf && n < width as i64 => {
                let mut block = vec![CStmt::Decl {
                    ty: CType::Int,
                    name: var.clone(),
                    addr: None,
                    array_len: None,
                    init: Some(init),
                }];
                block.push(CStmt::If {
                    cond: CExpr::var(&var).lt(CExpr::Index(len.clone())),
                    then: body,
                    otherwise: None,
                });
                stmts.push(CStmt::Block(block));
            }
            _ => {
                stmts.push(CStmt::For {
                    var: var.clone(),
                    init,
                    cond: CExpr::var(&var).lt(CExpr::Index(len.clone())),
                    step,
                    body,
                });
            }
        }

        // Synchronisation after parallel local maps (Section 5.4). With barrier elimination
        // enabled, barriers protecting private results are dropped.
        let dest_space = view_space(dest);
        let barrier = match kind {
            MapKind::Local(_) => match dest_space {
                AddressSpace::Local => Some(Fence::local()),
                AddressSpace::Global => Some(Fence::global()),
                AddressSpace::Private => {
                    if self.options.barrier_elimination {
                        None
                    } else {
                        Some(Fence::local())
                    }
                }
            },
            _ => None,
        };
        if let Some(fence) = barrier {
            stmts.push(CStmt::Barrier(fence));
        }
        Ok(stmts)
    }

    fn gen_map_vec(
        &mut self,
        f: FunDeclId,
        input: &View,
        input_ty: &Type,
        dest: &View,
    ) -> Result<Vec<CStmt>, CodegenError> {
        let uf = match self.program.decl(f).clone() {
            FunDecl::UserFun(uf) => uf,
            _ => {
                return Err(CodegenError::Unsupported(
                    "mapVec expects a user function".into(),
                ))
            }
        };
        let width = match input_ty {
            Type::Vector(_, w) => *w,
            _ => {
                return Err(CodegenError::Unsupported(
                    "mapVec over a non-vector value".into(),
                ))
            }
        };
        let call = self.user_fun_call(
            &uf,
            std::slice::from_ref(input),
            std::slice::from_ref(input_ty),
            Some(width),
        )?;
        let target = resolve(dest, &self.builder)?;
        Ok(vec![store_stmt(&target, call, &self.builder)?])
    }

    fn gen_reduce(
        &mut self,
        f: FunDeclId,
        init_view: &View,
        init_ty: &Type,
        input_view: &View,
        input_ty: &Type,
        dest: &View,
    ) -> Result<Vec<CStmt>, CodegenError> {
        let (elem_ty, len) = input_ty
            .as_array()
            .map(|(e, l)| (e.clone(), l.clone()))
            .ok_or_else(|| CodegenError::Unsupported("reduce over a non-array value".into()))?;

        // Accumulate either directly in the destination (when it is a private scalar) or in a
        // fresh private accumulator written back once at the end, like `acc1` in Figure 7.
        let dest_resolved = resolve(&dest.clone().access(ArithExpr::cst(0)), &self.builder)?;
        let (acc_view, needs_writeback) = match &dest_resolved {
            Resolved::MemoryAccess {
                scalar: true,
                memory,
                ..
            } => (
                View::scalar_var(memory.clone(), AddressSpace::Private),
                false,
            ),
            _ => {
                let name = self.fresh("acc");
                self.decls.push(CStmt::Decl {
                    ty: scalar_ctype(init_ty.innermost()),
                    name: name.clone(),
                    addr: None,
                    array_len: None,
                    init: None,
                });
                (View::scalar_var(name, AddressSpace::Private), true)
            }
        };

        let mut stmts = Vec::new();
        // acc = init
        let init_value = self.load_value(init_view, init_ty)?;
        let acc_target = resolve(&acc_view, &self.builder)?;
        stmts.push(store_stmt(&acc_target, init_value, &self.builder)?);

        // Accumulation loop. A reduction over a single element needs no loop or loop variable.
        let collapse = self.options.control_flow_simplification && len.as_cst() == Some(1);
        let var = self.fresh("i");
        let loop_var = if collapse {
            ArithExpr::cst(0)
        } else {
            ArithExpr::var_in_range(&var, 0, len.clone())
        };
        let elem_view = input_view.clone().access(loop_var.clone());
        let body = self.gen_apply(
            f,
            &[acc_view.clone(), elem_view],
            &[init_ty.clone(), elem_ty],
            &acc_view,
        )?;
        if collapse {
            stmts.extend(body);
        } else {
            stmts.push(CStmt::For {
                var: var.clone(),
                init: CExpr::int(0),
                cond: CExpr::var(&var).lt(CExpr::Index(len)),
                step: CExpr::int(1),
                body,
            });
        }

        if needs_writeback {
            let acc_value = self.load_value(&acc_view, init_ty)?;
            stmts.push(store_stmt(&dest_resolved, acc_value, &self.builder)?);
        }
        Ok(stmts)
    }

    /// Generates the double-buffered loop for `iterate` (Figure 7, lines 17–29) and returns
    /// the view of the buffer holding the final result.
    fn gen_iterate(
        &mut self,
        expr: ExprId,
        f: FunDeclId,
        args: &[ExprId],
    ) -> Result<(View, Vec<CStmt>), CodegenError> {
        let (n, body_fun) = match self.program.decl(f).clone() {
            FunDecl::Pattern(Pattern::Iterate { n, f }) => (n, f),
            _ => {
                return Err(CodegenError::Unsupported(
                    "gen_iterate on a non-iterate".into(),
                ))
            }
        };
        let mut stmts = Vec::new();
        let (input_view, input_ty) = self.read_view(args[0], &mut stmts)?;
        let out_ty = self.program.type_of(expr).clone();

        let (elem_ty, in_len) = input_ty
            .as_array()
            .map(|(e, l)| (e.clone(), l.clone()))
            .ok_or_else(|| CodegenError::Unsupported("iterate over a non-array".into()))?;
        let out_len = outer_len(&out_ty)?;
        let (in_c, out_c) = match (in_len.as_cst(), out_len.as_cst()) {
            (Some(a), Some(b)) if a > 0 && b > 0 => (a, b),
            _ => {
                return Err(CodegenError::Unsupported(
                    "iterate requires statically known lengths".into(),
                ))
            }
        };
        // Per-iteration shrink factor k with k^n == in/out.
        let factor = if n == 0 || in_c == out_c {
            1
        } else {
            let mut k = 1i64;
            for candidate in 2..=in_c {
                if candidate.checked_pow(n as u32) == Some(in_c / out_c) {
                    k = candidate;
                    break;
                }
            }
            k
        };

        let space = match &input_view {
            View::Memory { space, .. } => *space,
            _ => {
                return Err(CodegenError::Unsupported(
                    "iterate input must be materialised in a buffer".into(),
                ))
            }
        };
        let input_name = match &input_view {
            View::Memory { name, .. } => name.clone(),
            _ => unreachable!("checked above"),
        };

        // Second buffer for double buffering.
        let pong = self.fresh("tmp");
        self.decls.push(CStmt::Decl {
            ty: scalar_ctype(elem_ty.innermost()),
            name: pong.clone(),
            addr: Some(addr_of(space)),
            array_len: Some(ArithExpr::cst(in_c)),
            init: None,
        });

        let in_ptr = self.fresh("iter_in");
        let out_ptr = self.fresh("iter_out");
        let size_name = self.fresh("size");
        let ptr_ty = CType::pointer(scalar_ctype(elem_ty.innermost()), addr_of(space));
        stmts.push(CStmt::Decl {
            ty: ptr_ty.clone(),
            name: in_ptr.clone(),
            addr: None,
            array_len: None,
            init: Some(CExpr::var(&input_name)),
        });
        stmts.push(CStmt::Decl {
            ty: ptr_ty,
            name: out_ptr.clone(),
            addr: None,
            array_len: None,
            init: Some(CExpr::var(&pong)),
        });
        stmts.push(CStmt::Decl {
            ty: CType::Int,
            name: size_name.clone(),
            addr: None,
            array_len: None,
            init: Some(CExpr::int(in_c)),
        });

        // Body: apply the iterated function from `in` (length `size`) to `out`.
        let size_var = ArithExpr::var_in_range(&size_name, 1, ArithExpr::cst(in_c + 1));
        let body_in_ty = Type::array(elem_ty.clone(), size_var.clone());
        let body_in_view = View::memory(in_ptr.clone(), space, vec![size_var.clone()]);
        let body_out_view = View::memory(
            out_ptr.clone(),
            space,
            vec![size_var.clone() / ArithExpr::cst(factor)],
        );
        let mut body = self.gen_apply(body_fun, &[body_in_view], &[body_in_ty], &body_out_view)?;
        body.push(CStmt::Barrier(Fence::local()));
        body.push(CStmt::Assign {
            lhs: CExpr::var(&size_name),
            rhs: CExpr::var(&size_name).div(CExpr::int(factor)),
        });
        // Swap the buffers: `in` becomes the buffer just written.
        body.push(CStmt::Assign {
            lhs: CExpr::var(&in_ptr),
            rhs: CExpr::Ternary(
                Box::new(CExpr::var(&out_ptr).eq(CExpr::var(&input_name))),
                Box::new(CExpr::var(&input_name)),
                Box::new(CExpr::var(&pong)),
            ),
        });
        body.push(CStmt::Assign {
            lhs: CExpr::var(&out_ptr),
            rhs: CExpr::Ternary(
                Box::new(CExpr::var(&in_ptr).eq(CExpr::var(&input_name))),
                Box::new(CExpr::var(&pong)),
                Box::new(CExpr::var(&input_name)),
            ),
        });

        let iter_var = self.fresh("iter");
        stmts.push(CStmt::For {
            var: iter_var.clone(),
            init: CExpr::int(0),
            cond: CExpr::var(&iter_var).lt(CExpr::int(n as i64)),
            step: CExpr::int(1),
            body,
        });

        let result_view = View::memory(in_ptr, space, vec![out_len]);
        Ok((result_view, stmts))
    }

    /// Emits a sequential element-by-element copy from `src` to `dest` (used when an `iterate`
    /// result must land in a caller-provided destination).
    fn copy_loop(
        &mut self,
        src: &View,
        dest: &View,
        ty: &Type,
    ) -> Result<Vec<CStmt>, CodegenError> {
        let (_, len) = ty
            .as_array()
            .map(|(e, l)| (e.clone(), l.clone()))
            .ok_or_else(|| CodegenError::Unsupported("copy of a non-array".into()))?;
        let var = self.fresh("c");
        let loop_var = ArithExpr::var_in_range(&var, 0, len.clone());
        let from = resolve(&src.clone().access(loop_var.clone()), &self.builder)?;
        let to = resolve(&dest.clone().access(loop_var), &self.builder)?;
        let body = vec![store_stmt(
            &to,
            load_expr(&from, &self.builder),
            &self.builder,
        )?];
        Ok(vec![CStmt::For {
            var: var.clone(),
            init: CExpr::int(0),
            cond: CExpr::var(&var).lt(CExpr::Index(len)),
            step: CExpr::int(1),
            body,
        }])
    }

    // -------------------------------------------------------------------- user functions

    /// Builds the call expression for a user function applied to the given argument views,
    /// registering the function (and any tuple structs) in the module.
    fn user_fun_call(
        &mut self,
        uf: &UserFun,
        views: &[View],
        types: &[Type],
        vector_width: Option<usize>,
    ) -> Result<CExpr, CodegenError> {
        let mut args = Vec::with_capacity(views.len());
        for (v, t) in views.iter().zip(types) {
            args.push(self.load_typed(v, t)?);
        }
        let fname = self.register_user_fun(uf, vector_width);
        Ok(CExpr::Call(fname, args))
    }

    /// Loads a value of the given type through a view: scalars load directly, tuples load each
    /// component into a struct literal, vectors use vector loads.
    fn load_typed(&mut self, view: &View, ty: &Type) -> Result<CExpr, CodegenError> {
        match ty {
            Type::Tuple(elems) => {
                let struct_name = ty.c_element_name();
                self.register_tuple_struct(ty);
                let mut fields = Vec::with_capacity(elems.len());
                for (i, elem_ty) in elems.iter().enumerate() {
                    let component = view.clone().component(i);
                    fields.push(self.load_typed(&component, elem_ty)?);
                }
                Ok(CExpr::StructLit(struct_name, fields))
            }
            _ => self.load_value(view, ty),
        }
    }

    fn load_value(&mut self, view: &View, _ty: &Type) -> Result<CExpr, CodegenError> {
        let resolved = resolve(view, &self.builder)?;
        Ok(load_expr(&resolved, &self.builder))
    }

    /// Registers the OpenCL function generated from a user function, returning its name.
    fn register_user_fun(&mut self, uf: &UserFun, vector_width: Option<usize>) -> String {
        let name = match vector_width {
            Some(w) => format!("{}_v{w}", uf.name()),
            None => uf.name().to_string(),
        };
        if self.module.function(&name).is_some() {
            return name;
        }
        let mut params = Vec::with_capacity(uf.arity());
        for (pname, pty) in uf.param_names().iter().zip(uf.param_types()) {
            let base = self.ctype_of(pty);
            let cty = match vector_width {
                Some(w) => CType::Vector(Box::new(base), w),
                None => base,
            };
            params.push((pname.clone(), cty));
        }
        let ret = match vector_width {
            Some(w) => CType::Vector(Box::new(self.ctype_of(uf.return_type())), w),
            None => self.ctype_of(uf.return_type()),
        };
        let body = scalar_to_cexpr(uf.body(), uf.param_names());
        self.module.add_function(CFunction {
            name: name.clone(),
            ret,
            params,
            body,
        });
        name
    }

    fn ctype_of(&mut self, ty: &Type) -> CType {
        match ty {
            Type::Tuple(_) => {
                self.register_tuple_struct(ty);
                CType::Struct(ty.c_element_name())
            }
            Type::Vector(k, w) => CType::Vector(Box::new(scalar_ctype(&Type::Scalar(*k))), *w),
            other => scalar_ctype(other),
        }
    }

    fn register_tuple_struct(&mut self, ty: &Type) {
        if let Type::Tuple(elems) = ty {
            let name = ty.c_element_name();
            let fields = elems
                .iter()
                .enumerate()
                .map(|(i, t)| (format!("_{i}"), scalar_ctype(t.innermost())))
                .collect();
            self.module.add_struct(StructDef { name, fields });
        }
    }
}

/// The flavours of map loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MapKind {
    Seq,
    Global(u8),
    WorkGroup(u8),
    Local(u8),
}

// ------------------------------------------------------------------------- helpers

fn addr_of(space: AddressSpace) -> AddrSpace {
    match space {
        AddressSpace::Global => AddrSpace::Global,
        AddressSpace::Local => AddrSpace::Local,
        AddressSpace::Private => AddrSpace::Private,
    }
}

fn scalar_ctype(ty: &Type) -> CType {
    match ty {
        Type::Scalar(ScalarKind::Float) => CType::Float,
        Type::Scalar(ScalarKind::Double) => CType::Double,
        Type::Scalar(ScalarKind::Int) => CType::Int,
        Type::Scalar(ScalarKind::Bool) => CType::Bool,
        Type::Vector(k, w) => CType::Vector(Box::new(scalar_ctype(&Type::Scalar(*k))), *w),
        Type::Tuple(_) => CType::Struct(ty.c_element_name()),
        Type::Array(elem, _) => scalar_ctype(elem.innermost()),
    }
}

/// The array dimensions of a type, outermost first (tuples and scalars have none).
fn array_dims(ty: &Type) -> Vec<ArithExpr> {
    let mut dims = Vec::new();
    let mut current = ty;
    while let Type::Array(elem, len) = current {
        dims.push(len.clone());
        current = elem;
    }
    dims
}

fn outer_len(ty: &Type) -> Result<ArithExpr, CodegenError> {
    ty.as_array()
        .map(|(_, l)| l.clone())
        .ok_or_else(|| CodegenError::Unsupported("expected an array type".into()))
}

fn inner_len(ty: &Type) -> Result<ArithExpr, CodegenError> {
    let (elem, _) = ty
        .as_array()
        .ok_or_else(|| CodegenError::Unsupported("expected a nested array type".into()))?;
    outer_len(elem)
}

fn vector_width_of(ty: &Type) -> Result<usize, CodegenError> {
    match ty.as_array().map(|(e, _)| e) {
        Some(Type::Vector(_, w)) => Ok(*w),
        _ => Err(CodegenError::Unsupported(
            "expected an array of vectors".into(),
        )),
    }
}

fn invert_reorder(reorder: &Reorder, len: &ArithExpr) -> Result<Reorder, CodegenError> {
    match reorder {
        Reorder::Identity => Ok(Reorder::Identity),
        Reorder::Reverse => Ok(Reorder::Reverse),
        Reorder::Stride(s) => Ok(Reorder::Stride(len.clone() / s.clone())),
    }
}

fn view_space(view: &View) -> AddressSpace {
    match view {
        View::Memory { space, .. } => *space,
        View::Constant(_) => AddressSpace::Private,
        View::Access { base, .. }
        | View::Split { base, .. }
        | View::Join { base, .. }
        | View::Reorder { base, .. }
        | View::Transpose { base }
        | View::Slide { base, .. }
        | View::TupleComponent { base, .. }
        | View::AsVector { base, .. }
        | View::AsScalar { base, .. } => view_space(base),
        View::Zip { bases } => bases.first().map_or(AddressSpace::Private, view_space),
    }
}

fn literal_expr(lit: Literal) -> CExpr {
    match lit {
        Literal::Float(v) => CExpr::float(f64::from(v)),
        Literal::Int(v) => CExpr::int(v),
    }
}

fn load_expr(resolved: &Resolved, builder: &AccessBuilder) -> CExpr {
    match resolved {
        Resolved::Literal(lit) => literal_expr(*lit),
        Resolved::MemoryAccess {
            memory,
            scalar: true,
            ..
        } => CExpr::var(memory),
        Resolved::MemoryAccess {
            memory,
            index,
            vector_width: Some(w),
            ..
        } => {
            let vec_index = if builder.simplify {
                index.clone() / ArithExpr::cst(*w as i64)
            } else {
                ArithExpr::IntDiv(Box::new(index.clone()), Box::new(ArithExpr::cst(*w as i64)))
            };
            CExpr::Call(
                format!("vload{w}"),
                vec![CExpr::Index(vec_index), CExpr::var(memory)],
            )
        }
        Resolved::MemoryAccess { memory, index, .. } => {
            CExpr::var(memory).at(CExpr::Index(index.clone()))
        }
    }
}

fn store_stmt(
    resolved: &Resolved,
    value: CExpr,
    builder: &AccessBuilder,
) -> Result<CStmt, CodegenError> {
    match resolved {
        Resolved::Literal(_) => Err(CodegenError::Unsupported(
            "cannot write into a constant view".into(),
        )),
        Resolved::MemoryAccess {
            memory,
            scalar: true,
            ..
        } => Ok(CStmt::Assign {
            lhs: CExpr::var(memory),
            rhs: value,
        }),
        Resolved::MemoryAccess {
            memory,
            index,
            vector_width: Some(w),
            ..
        } => {
            let vec_index = if builder.simplify {
                index.clone() / ArithExpr::cst(*w as i64)
            } else {
                ArithExpr::IntDiv(Box::new(index.clone()), Box::new(ArithExpr::cst(*w as i64)))
            };
            Ok(CStmt::Expr(CExpr::Call(
                format!("vstore{w}"),
                vec![value, CExpr::Index(vec_index), CExpr::var(memory)],
            )))
        }
        Resolved::MemoryAccess { memory, index, .. } => Ok(CStmt::Assign {
            lhs: CExpr::var(memory).at(CExpr::Index(index.clone())),
            rhs: value,
        }),
    }
}

/// Translates a user-function body into a C expression over the parameter names.
fn scalar_to_cexpr(body: &ScalarExpr, params: &[String]) -> CExpr {
    match body {
        ScalarExpr::Param(i) => CExpr::var(&params[*i]),
        ScalarExpr::ConstFloat(v) => CExpr::float(*v),
        ScalarExpr::ConstInt(v) => CExpr::int(*v),
        ScalarExpr::Get(e, i) => scalar_to_cexpr(e, params).field(format!("_{i}")),
        ScalarExpr::Tuple(es) => CExpr::StructLit(
            "tuple".into(),
            es.iter().map(|e| scalar_to_cexpr(e, params)).collect(),
        ),
        ScalarExpr::Bin(op, a, b) => {
            let a = scalar_to_cexpr(a, params);
            let b = scalar_to_cexpr(b, params);
            use lift_ir::BinOp::*;
            match op {
                Add => a.add(b),
                Sub => a.sub(b),
                Mul => a.mul(b),
                Div => a.div(b),
                Min => CExpr::Call("fmin".into(), vec![a, b]),
                Max => CExpr::Call("fmax".into(), vec![a, b]),
                Lt => a.lt(b),
                Gt => CExpr::Bin(lift_ocl::CBinOp::Gt, Box::new(a), Box::new(b)),
            }
        }
        ScalarExpr::Un(op, a) => {
            let a = scalar_to_cexpr(a, params);
            use lift_ir::UnOp::*;
            match op {
                Neg => CExpr::Un(lift_ocl::CUnOp::Neg, Box::new(a)),
                Sqrt => CExpr::Call("sqrt".into(), vec![a]),
                Rsqrt => CExpr::Call("rsqrt".into(), vec![a]),
                Fabs => CExpr::Call("fabs".into(), vec![a]),
                Exp => CExpr::Call("exp".into(), vec![a]),
            }
        }
        ScalarExpr::Select(c, t, e) => CExpr::Ternary(
            Box::new(scalar_to_cexpr(c, params)),
            Box::new(scalar_to_cexpr(t, params)),
            Box::new(scalar_to_cexpr(e, params)),
        ),
    }
}

fn collect_size_vars(ty: &Type, out: &mut Vec<String>) {
    match ty {
        Type::Array(elem, len) => {
            for v in len.vars() {
                out.push(v.name().to_string());
            }
            collect_size_vars(elem, out);
        }
        Type::Tuple(elems) => {
            for e in elems {
                collect_size_vars(e, out);
            }
        }
        _ => {}
    }
}
