//! OpenCL code generation (Section 5.5).
//!
//! The generator walks the typed Lift IR from the result backwards: every expression is asked
//! to produce its value into a *destination view*. Data-layout patterns transform the
//! destination (writing through `join` is reading through `split`), parallel and sequential
//! maps emit loops over the OpenCL work-item functions, reductions emit accumulation loops,
//! `iterate` emits the double-buffered loop of Figure 7, and user functions finally emit the
//! assignment `out[write-index] = f(in[read-index], …)` whose indices come from consuming the
//! read and write views.
//!
//! The three optimisations evaluated in the paper are applied here: array-access
//! simplification (through the [`AccessBuilder`]), control-flow simplification (loops whose
//! trip count is statically one collapse to a block or an `if`), and barrier elimination.

use std::collections::HashMap;

use lift_arith::ArithExpr;
use lift_ir::{
    AddressSpace, ExprId, ExprKind, FunDecl, FunDeclId, Literal, ParallelismLevel, Pattern,
    Program, Reorder, ScalarExpr, ScalarKind, Type, TypeError, UserFun,
};
use lift_ocl::{
    AddrSpace, CExpr, CFunction, CStmt, CType, Fence, Kernel, KernelParam, Module, StructDef,
};

use crate::address_space::{
    infer_address_spaces, infer_parallelism, AddressSpaces, ParallelismLevels,
};
use crate::options::CompilationOptions;
use crate::view::{resolve, AccessBuilder, LayoutOp, Resolved, View, ViewError};

/// Errors produced by the compiler.
#[derive(Clone, Debug, PartialEq)]
pub enum CodegenError {
    /// Type inference failed.
    Type(TypeError),
    /// A view could not be consumed into an array access.
    View(ViewError),
    /// The program uses a combination of patterns the generator does not support.
    Unsupported(String),
    /// The program has no root lambda.
    MissingRoot,
    /// Address-space inference produced no space for an intermediate that must be
    /// materialised. Before this variant existed the generator silently fell back to
    /// private memory, which can place a large array intermediate in per-thread registers
    /// without any diagnosis.
    MissingAddressSpace(String),
    /// The parallelism-ownership pass rejected a write that aliases across work items: a
    /// buffer owned at `owner_level` (e.g. a group-shared `__local` array) would be
    /// written wholesale by code executing at the finer `writer_level` (e.g. a `toLocal`
    /// staging buffer produced *inside* a `mapLcl` body, where every work item writes the
    /// whole array with work-item-varying data). Emitting such a kernel would compile a
    /// data race; it is a typed compile-time rejection instead.
    OwnershipViolation {
        /// Description of the buffer whose ownership was violated.
        buffer: String,
        /// Parallelism level of the offending write.
        writer_level: ParallelismLevel,
        /// Parallelism level that owns the buffer.
        owner_level: ParallelismLevel,
        /// Rendered producer expression (the write site).
        site: String,
    },
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::Type(e) => write!(f, "type error: {e}"),
            CodegenError::View(e) => write!(f, "view error: {e}"),
            CodegenError::Unsupported(what) => write!(f, "unsupported program shape: {what}"),
            CodegenError::MissingRoot => write!(f, "the program has no root lambda"),
            CodegenError::MissingAddressSpace(what) => {
                write!(f, "no address space inferred for an intermediate: {what}")
            }
            CodegenError::OwnershipViolation {
                buffer,
                writer_level,
                owner_level,
                site,
            } => write!(
                f,
                "parallelism-ownership violation: {buffer} is owned at {owner_level} level \
                 but written at {writer_level} level (every work item would write the whole \
                 shared buffer — a data race) at {site}"
            ),
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<TypeError> for CodegenError {
    fn from(e: TypeError) -> Self {
        CodegenError::Type(e)
    }
}

impl From<ViewError> for CodegenError {
    fn from(e: ViewError) -> Self {
        CodegenError::View(e)
    }
}

/// Describes one parameter of the generated kernel so callers know what to pass at launch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelParamInfo {
    /// The buffer for the `index`-th input of the Lift program.
    Input {
        /// Kernel parameter name.
        name: String,
        /// Index of the corresponding root-lambda parameter.
        index: usize,
    },
    /// A scalar input of the Lift program.
    ScalarInput {
        /// Kernel parameter name.
        name: String,
        /// Index of the corresponding root-lambda parameter.
        index: usize,
    },
    /// The output buffer.
    Output {
        /// Kernel parameter name.
        name: String,
    },
    /// A global temporary buffer carrying an intermediate across the kernels of a
    /// multi-kernel sequence. The host allocates it (see
    /// [`CompiledProgram::temp_buffers`]) and passes it to *every* kernel of the sequence.
    Temp {
        /// Kernel parameter name.
        name: String,
        /// Index of the corresponding entry in [`CompiledProgram::temp_buffers`].
        index: usize,
    },
    /// A size variable (array length) passed as an `int`.
    Size {
        /// Kernel parameter name (the variable name, e.g. `N`).
        name: String,
    },
}

/// The result of compiling a Lift program.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledKernel {
    /// The generated OpenCL module (structs, user functions, one kernel).
    pub module: Module,
    /// The kernel name.
    pub kernel_name: String,
    /// The kernel parameters in order.
    pub params: Vec<KernelParamInfo>,
    /// The number of elements of the output buffer (symbolic in the size variables).
    pub output_len: ArithExpr,
}

impl CompiledKernel {
    /// The OpenCL C source of the whole module.
    pub fn source(&self) -> String {
        lift_ocl::print_module(&self.module)
    }

    /// Number of non-empty, non-comment source lines (the code-size metric of Table 1).
    pub fn line_count(&self) -> usize {
        count_code_lines(&self.source())
    }

    /// Marshals launch arguments for the kernel's parameter list (see
    /// [`CompiledProgram::bind_args`]; single-kernel programs have no temporaries).
    ///
    /// # Errors
    ///
    /// Returns a message when an input is missing or a length cannot be evaluated.
    pub fn bind_args(
        &self,
        inputs: &[Vec<f32>],
        sizes: &lift_arith::Environment,
    ) -> Result<(Vec<lift_vgpu::KernelArg>, usize), String> {
        bind_launch_args(&self.params, &[], &self.output_len, inputs, sizes)
    }
}

/// Counts non-empty, non-comment lines: comment lines (the host-ABI block of multi-kernel
/// modules, `//` annotations) are not code and must not skew the Table 1 code-size metric.
fn count_code_lines(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty() && !l.starts_with("//") && !l.starts_with("/*") && !l.starts_with('*')
        })
        .count()
}

/// Marshals launch arguments for a compiled parameter list: input buffers are cloned from
/// `inputs` (indexed by root parameter), the output and every temporary are zero-filled to
/// their evaluated lengths, and size parameters are bound from `sizes`. Returns the
/// arguments and the index of the output among the *buffer* arguments (the index into
/// [`lift_vgpu::LaunchResult::buffers`] / [`lift_vgpu::SequenceResult::buffers`]).
fn bind_launch_args(
    params: &[KernelParamInfo],
    temps: &[TempBufferInfo],
    output_len: &ArithExpr,
    inputs: &[Vec<f32>],
    sizes: &lift_arith::Environment,
) -> Result<(Vec<lift_vgpu::KernelArg>, usize), String> {
    use lift_vgpu::KernelArg;
    let as_len = |e: &ArithExpr, what: &str| -> Result<usize, String> {
        let v = e
            .evaluate(sizes)
            .map_err(|err| format!("cannot evaluate {what}: {err}"))?;
        usize::try_from(v).map_err(|_| format!("negative {what}: {v}"))
    };
    let out_len = as_len(output_len, "output length")?;
    let mut args = Vec::with_capacity(params.len());
    let mut output_index = None;
    let mut buffers = 0usize;
    for p in params {
        match p {
            KernelParamInfo::Input { index, name } => {
                let data = inputs
                    .get(*index)
                    .ok_or_else(|| format!("missing input {index} for `{name}`"))?;
                args.push(KernelArg::Buffer(data.clone()));
                buffers += 1;
            }
            KernelParamInfo::ScalarInput { index, name } => {
                let v = inputs
                    .get(*index)
                    .and_then(|d| d.first())
                    .ok_or_else(|| format!("missing scalar input {index} for `{name}`"))?;
                args.push(KernelArg::Float(*v));
            }
            KernelParamInfo::Output { .. } => {
                output_index = Some(buffers);
                args.push(KernelArg::zeros(out_len));
                buffers += 1;
            }
            KernelParamInfo::Temp { index, name } => {
                let temp = temps
                    .get(*index)
                    .ok_or_else(|| format!("missing temp buffer {index} for `{name}`"))?;
                let len = as_len(&temp.elem_count, "temp buffer length")?;
                args.push(KernelArg::zeros(len));
                buffers += 1;
            }
            KernelParamInfo::Size { name } => {
                let v = sizes
                    .get(name)
                    .ok_or_else(|| format!("unbound size `{name}`"))?;
                args.push(KernelArg::Int(v));
            }
        }
    }
    let output_index = output_index.ok_or_else(|| "no output parameter".to_string())?;
    Ok((args, output_index))
}

/// One kernel of a compiled multi-kernel program, in launch order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelStage {
    /// The kernel name within the module.
    pub name: String,
    /// Whether the kernel body reads work-item ids. A sequential stage computes the same
    /// result in every thread, so the host launches it with a single work item.
    pub parallel: bool,
}

/// A global temporary buffer the host must allocate for a multi-kernel program.
#[derive(Clone, Debug, PartialEq)]
pub struct TempBufferInfo {
    /// The kernel parameter name every kernel binds the buffer to.
    pub name: String,
    /// Number of elements (symbolic in the size variables).
    pub elem_count: ArithExpr,
}

/// The result of compiling a Lift program that may span several kernels.
///
/// Programs whose intermediates live in global memory are split at each device-wide
/// synchronisation point into a *sequence* of kernels: the producer stage writes the
/// intermediate to a host-allocated global temporary, the kernel boundary provides the
/// device-wide barrier OpenCL lacks, and the consumer stage reads it back. All kernels share
/// one parameter list ([`CompiledProgram::params`]: inputs, output, temporaries, sizes), so
/// the host passes the same arguments to every stage.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledProgram {
    /// The generated OpenCL module (structs, user functions, one kernel per stage).
    pub module: Module,
    /// The kernels in launch order.
    pub kernels: Vec<KernelStage>,
    /// Global temporaries shared by the stages (empty for single-kernel programs).
    pub temp_buffers: Vec<TempBufferInfo>,
    /// The shared kernel parameters, in order.
    pub params: Vec<KernelParamInfo>,
    /// The number of elements of the output buffer (symbolic in the size variables).
    pub output_len: ArithExpr,
}

impl CompiledProgram {
    /// The OpenCL C source of the whole module.
    pub fn source(&self) -> String {
        lift_ocl::print_module(&self.module)
    }

    /// Number of non-empty, non-comment source lines (the code-size metric of Table 1).
    ///
    /// Comment lines are excluded so the host-ABI documentation block of multi-kernel
    /// modules does not inflate the code size relative to single-kernel programs.
    pub fn line_count(&self) -> usize {
        count_code_lines(&self.source())
    }

    /// Whether the program compiled to more than one kernel.
    pub fn is_multi_kernel(&self) -> bool {
        self.kernels.len() > 1
    }

    /// Marshals launch arguments for the shared parameter list of the kernel sequence.
    /// Returns the arguments (pass the same vector to every stage via
    /// [`lift_vgpu::ExecutionRequest::launch_sequence`]) and the index of the output among
    /// the *buffer* arguments.
    ///
    /// # Errors
    ///
    /// Returns a message when an input is missing or a length cannot be evaluated.
    pub fn bind_args(
        &self,
        inputs: &[Vec<f32>],
        sizes: &lift_arith::Environment,
    ) -> Result<(Vec<lift_vgpu::KernelArg>, usize), String> {
        bind_launch_args(
            &self.params,
            &self.temp_buffers,
            &self.output_len,
            inputs,
            sizes,
        )
    }

    /// The per-stage launch plan for an execution under `launch`: parallel stages use the
    /// requested ND-range, sequential stages run as a single work item. Feed the plan to
    /// [`lift_vgpu::ExecutionRequest::launch_sequence`], which pools the shared buffers
    /// across stages and picks the execution engine.
    pub fn launch_plan(&self, launch: lift_vgpu::LaunchConfig) -> Vec<lift_vgpu::KernelLaunchSpec> {
        self.kernels
            .iter()
            .map(|k| lift_vgpu::KernelLaunchSpec {
                kernel: k.name.clone(),
                launch: if k.parallel {
                    launch
                } else {
                    lift_vgpu::LaunchConfig::d1(1, 1)
                },
            })
            .collect()
    }
}

/// Compiles a Lift program into a single OpenCL kernel.
///
/// This is the single-kernel entry point: programs whose intermediates force a split into
/// several kernels (global-memory intermediates) are rejected — use [`compile_program`] for
/// those. For every program this function accepts, the result is identical to the sole
/// kernel of [`compile_program`].
///
/// # Errors
///
/// Returns a [`CodegenError`] if the program is ill-typed, uses an unsupported combination
/// of patterns, or compiles to more than one kernel.
pub fn compile(
    program: &Program,
    options: &CompilationOptions,
) -> Result<CompiledKernel, CodegenError> {
    let compiled = compile_program(program, options)?;
    if compiled.is_multi_kernel() {
        return Err(CodegenError::Unsupported(format!(
            "the program compiles to {} kernels (its global-memory intermediates split it \
             at device-wide synchronisation points); use `compile_program` and execute the \
             kernel sequence",
            compiled.kernels.len()
        )));
    }
    let kernel_name = compiled.kernels[0].name.clone();
    Ok(CompiledKernel {
        module: compiled.module,
        kernel_name,
        params: compiled.params,
        output_len: compiled.output_len,
    })
}

/// Compiles a Lift program into a sequence of one or more OpenCL kernels.
///
/// Intermediates placed in global memory (via `toGlobal` or address-space inference) are
/// materialised into host-allocated temporaries, and the program is split after each such
/// producer: the kernel boundary is the device-wide synchronisation point. Single-kernel
/// programs compile exactly as with [`compile`].
///
/// # Errors
///
/// Returns a [`CodegenError`] if the program is ill-typed or uses an unsupported combination
/// of patterns (e.g. a global intermediate nested inside a pattern, where no device-wide
/// synchronisation is possible).
pub fn compile_program(
    program: &Program,
    options: &CompilationOptions,
) -> Result<CompiledProgram, CodegenError> {
    if let Some(name) = program.first_high_level_pattern() {
        return Err(CodegenError::Unsupported(format!(
            "high-level pattern `{name}` must be lowered to an OpenCL-specific pattern \
             (e.g. with the `lift-rewrite` exploration) before code generation"
        )));
    }
    let mut program = program.clone();
    lift_ir::infer_types(&mut program)?;
    let spaces = infer_address_spaces(&program);
    let levels = infer_parallelism(&program);
    let generator = Generator {
        program,
        spaces,
        levels,
        options: options.clone(),
        builder: AccessBuilder::new(options.array_access_simplification),
        module: Module::new(),
        decls: Vec::new(),
        views: HashMap::new(),
        counter: 0,
        nesting: 0,
        active_parallel: Vec::new(),
        temp_buffers: Vec::new(),
        segment_decls: Vec::new(),
    };
    generator.generate()
}

/// Marker statement separating two kernels in the top-level statement stream. It is emitted
/// only at nesting depth zero and consumed by [`Generator::generate`]'s segment split, so it
/// never appears in a finished kernel.
const KERNEL_SPLIT_MARKER: &str = "__lift_kernel_split__";

struct Generator {
    program: Program,
    spaces: AddressSpaces,
    /// Parallelism level of each expression's evaluation site (the ownership pass); the
    /// generator consults it wherever it allocates group-shared storage.
    levels: ParallelismLevels,
    options: CompilationOptions,
    builder: AccessBuilder,
    module: Module,
    decls: Vec<CStmt>,
    views: HashMap<ExprId, View>,
    counter: usize,
    /// Depth of enclosing pattern bodies (map/reduce/iterate loops). Kernel splits are only
    /// legal at depth zero: a split inside a loop body would need a device-wide barrier
    /// *within* a kernel, which OpenCL does not have.
    nesting: usize,
    /// The parallel map loops currently open around the statement being generated, as
    /// `(pattern name, dimension)`. Two nested loops over the *same* kind and dimension
    /// both stride the same work-item id, so index pairs off the diagonal are computed by
    /// no work item at all — a silent coverage miscompile rejected in [`Generator::gen_map_loop`].
    active_parallel: Vec<(&'static str, u8)>,
    /// Global temporaries allocated so far: `(parameter name, value type)`.
    temp_buffers: Vec<(String, Type)>,
    /// Per-finished-segment declaration groups (one entry is pushed at every kernel split;
    /// the declarations of the final segment are taken from `decls` at the end).
    segment_decls: Vec<Vec<CStmt>>,
}

impl Generator {
    fn fresh(&mut self, base: &str) -> String {
        let n = self.counter;
        self.counter += 1;
        if n == 0 {
            base.to_string()
        } else {
            format!("{base}_{n}")
        }
    }

    fn generate(mut self) -> Result<CompiledProgram, CodegenError> {
        if self.program.root().is_none() {
            return Err(CodegenError::MissingRoot);
        }
        let root_params = self.program.root_params().to_vec();
        let body = self.program.root_body();
        let body_type = self.program.type_of(body).clone();

        // Kernel parameters: inputs, output, temporaries (discovered during generation),
        // then the size variables.
        let mut params = Vec::new();
        let mut kernel_params = Vec::new();
        let mut size_vars: Vec<String> = Vec::new();
        for (i, p) in root_params.iter().enumerate() {
            let ty = self.program.type_of(*p).clone();
            let name = match &self.program.expr(*p).kind {
                ExprKind::Param { name } => name.clone(),
                _ => format!("arg{i}"),
            };
            collect_size_vars(&ty, &mut size_vars);
            if ty.is_array() {
                kernel_params.push(KernelParam {
                    name: name.clone(),
                    ty: CType::const_restrict_pointer(
                        scalar_ctype(ty.innermost()),
                        AddrSpace::Global,
                    ),
                });
                params.push(KernelParamInfo::Input {
                    name: name.clone(),
                    index: i,
                });
                let dims = array_dims(&ty);
                self.views
                    .insert(*p, View::memory(name, AddressSpace::Global, dims));
            } else {
                kernel_params.push(KernelParam {
                    name: name.clone(),
                    ty: scalar_ctype(&ty),
                });
                params.push(KernelParamInfo::ScalarInput {
                    name: name.clone(),
                    index: i,
                });
                self.views
                    .insert(*p, View::scalar_var(name, AddressSpace::Private));
            }
        }
        collect_size_vars(&body_type, &mut size_vars);

        let out_name = "output".to_string();
        kernel_params.push(KernelParam {
            name: out_name.clone(),
            ty: CType::pointer(scalar_ctype(body_type.innermost()), AddrSpace::Global),
        });
        params.push(KernelParamInfo::Output {
            name: out_name.clone(),
        });
        let output_len = body_type.element_count();

        let out_view = View::memory(out_name, AddressSpace::Global, array_dims(&body_type));
        let body_stmts = self.gen_expr(body, &out_view)?;
        self.segment_decls.push(std::mem::take(&mut self.decls));

        // Temporary-buffer parameters (shared by every kernel of the sequence).
        let mut temp_buffers = Vec::new();
        for (index, (name, ty)) in self.temp_buffers.iter().enumerate() {
            let elem_count = ty.element_count();
            collect_size_vars(ty, &mut size_vars);
            kernel_params.push(KernelParam {
                name: name.clone(),
                ty: CType::pointer(scalar_ctype(ty.innermost()), AddrSpace::Global),
            });
            params.push(KernelParamInfo::Temp {
                name: name.clone(),
                index,
            });
            self.module.temp_buffers.push(lift_ocl::TempBufferDecl {
                name: name.clone(),
                elem: scalar_ctype(ty.innermost()),
                len: elem_count.clone(),
            });
            temp_buffers.push(TempBufferInfo {
                name: name.clone(),
                elem_count,
            });
        }

        size_vars.sort();
        size_vars.dedup();
        for s in &size_vars {
            kernel_params.push(KernelParam {
                name: s.clone(),
                ty: CType::Int,
            });
            params.push(KernelParamInfo::Size { name: s.clone() });
        }

        // Split the top-level statement stream into kernel bodies at the split markers
        // (one marker was emitted after each global-temporary producer).
        let mut segments: Vec<Vec<CStmt>> = vec![Vec::new()];
        for stmt in body_stmts {
            if matches!(&stmt, CStmt::Comment(c) if c == KERNEL_SPLIT_MARKER) {
                segments.push(Vec::new());
            } else {
                segments
                    .last_mut()
                    .expect("segments is non-empty")
                    .push(stmt);
            }
        }
        // Every marker snapshots one declaration group; a mismatch means a marker was
        // buried below the top level (which the nesting guard forbids) and zipping the two
        // lists would silently drop a kernel body — make it a hard error, not a debug
        // assertion.
        if segments.len() != self.segment_decls.len() {
            return Err(CodegenError::Unsupported(format!(
                "internal error: {} kernel segments but {} declaration groups — a kernel \
                 split marker escaped the top-level statement stream",
                segments.len(),
                self.segment_decls.len()
            )));
        }

        // A value in private or local memory does not survive a kernel boundary: reject any
        // derivation whose later stage reads a declaration of an earlier one.
        let mut earlier_decls: std::collections::HashSet<String> = std::collections::HashSet::new();
        for (i, segment) in segments.iter().enumerate() {
            let decls = &self.segment_decls[i];
            if i > 0 {
                if let Some(name) = segment
                    .iter()
                    .chain(decls.iter())
                    .find_map(|s| stmt_reference_in(s, &earlier_decls))
                {
                    return Err(CodegenError::Unsupported(format!(
                        "intermediate `{name}` lives in private or local memory but is \
                         consumed after a device-wide synchronisation point; it must be \
                         staged in global memory (toGlobal) to cross the kernel boundary"
                    )));
                }
            }
            for s in decls.iter().chain(segment.iter()) {
                collect_decl_names(s, &mut earlier_decls);
            }
        }

        let base_name = self.program.name().to_string();
        let multi = segments.len() > 1;
        let mut kernels = Vec::new();
        for (i, (decls, segment)) in self.segment_decls.drain(..).zip(segments).enumerate() {
            let mut kernel_body = decls;
            kernel_body.extend(segment);
            let name = if multi {
                format!("{base_name}_k{i}")
            } else {
                base_name.clone()
            };
            let kernel = Kernel {
                name: name.clone(),
                params: kernel_params.clone(),
                body: kernel_body,
            };
            let parallel = kernel.uses_work_items();
            self.module.kernels.push(kernel);
            kernels.push(KernelStage { name, parallel });
        }

        Ok(CompiledProgram {
            module: self.module,
            kernels,
            temp_buffers,
            params,
            output_len,
        })
    }

    // -------------------------------------------------------------------- expressions

    /// Generates code that writes the value of `expr` through the destination view.
    fn gen_expr(&mut self, expr: ExprId, dest: &View) -> Result<Vec<CStmt>, CodegenError> {
        match self.program.expr(expr).kind.clone() {
            ExprKind::Literal(lit) => {
                let target = resolve(dest, &self.builder)?;
                Ok(vec![store_stmt(&target, literal_expr(lit), &self.builder)?])
            }
            ExprKind::Param { name } => Err(CodegenError::Unsupported(format!(
                "program result is the unmodified parameter `{name}`; wrap it in map(id)"
            ))),
            ExprKind::FunCall { f, args } => self.gen_call(expr, f, &args, dest),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn gen_call(
        &mut self,
        expr: ExprId,
        f: FunDeclId,
        args: &[ExprId],
        dest: &View,
    ) -> Result<Vec<CStmt>, CodegenError> {
        let decl = self.program.decl(f).clone();
        match decl {
            FunDecl::Lambda { .. } | FunDecl::UserFun(_) => {
                let mut stmts = Vec::new();
                let mut views = Vec::new();
                let mut types = Vec::new();
                for a in args {
                    let (v, t) = self.read_view(*a, &mut stmts)?;
                    views.push(v);
                    types.push(t);
                }
                stmts.extend(self.gen_apply(f, &views, &types, dest)?);
                Ok(stmts)
            }
            FunDecl::Pattern(pattern) => match pattern {
                // Data-layout patterns transform the destination and recurse into the argument.
                Pattern::Join => {
                    let arg_ty = self.program.type_of(args[0]).clone();
                    let inner = inner_len(&arg_ty)?;
                    let new_dest = View::Split { base: Box::new(dest.clone()), chunk: inner };
                    self.gen_expr(args[0], &new_dest)
                }
                Pattern::Split { chunk } => {
                    let new_dest = View::Join { base: Box::new(dest.clone()), inner: chunk };
                    self.gen_expr(args[0], &new_dest)
                }
                Pattern::Scatter { reorder } => {
                    let arg_ty = self.program.type_of(args[0]).clone();
                    let len = outer_len(&arg_ty)?;
                    let new_dest =
                        View::Reorder { base: Box::new(dest.clone()), reorder, len };
                    self.gen_expr(args[0], &new_dest)
                }
                Pattern::Gather { reorder } => match reorder {
                    Reorder::Identity => self.gen_expr(args[0], dest),
                    _ => Err(CodegenError::Unsupported(
                        "gather directly on the write path (use it on the read side)".into(),
                    )),
                },
                Pattern::Transpose => {
                    let new_dest = View::Transpose { base: Box::new(dest.clone()) };
                    self.gen_expr(args[0], &new_dest)
                }
                Pattern::AsScalar => {
                    let arg_ty = self.program.type_of(args[0]).clone();
                    let width = vector_width_of(&arg_ty)?;
                    let new_dest = View::AsVector { base: Box::new(dest.clone()), width };
                    self.gen_expr(args[0], &new_dest)
                }
                Pattern::AsVector { width } => {
                    let new_dest = View::AsScalar { base: Box::new(dest.clone()), width };
                    self.gen_expr(args[0], &new_dest)
                }
                Pattern::Id => self.gen_expr(args[0], dest),
                Pattern::ToGlobal { f } | Pattern::ToLocal { f } | Pattern::ToPrivate { f } => {
                    self.gen_call(expr, f, args, dest)
                }
                Pattern::Slide { .. }
                | Pattern::Pad { .. }
                | Pattern::Zip { .. }
                | Pattern::Get { .. } => {
                    Err(CodegenError::Unsupported(format!(
                        "`{}` cannot appear as the final producer of a value; it is a read-side pattern",
                        pattern.name()
                    )))
                }
                // Computational patterns: build read views for the arguments and apply.
                _ => {
                    let mut stmts = Vec::new();
                    let mut views = Vec::new();
                    let mut types = Vec::new();
                    for a in args {
                        let (v, t) = self.read_view(*a, &mut stmts)?;
                        views.push(v);
                        types.push(t);
                    }
                    stmts.extend(self.gen_pattern(expr, &pattern, &views, &types, dest)?);
                    Ok(stmts)
                }
            },
        }
    }

    /// Computes a readable view of `expr`, generating code into `stmts` if the expression is a
    /// computation that must be materialised first.
    fn read_view(
        &mut self,
        expr: ExprId,
        stmts: &mut Vec<CStmt>,
    ) -> Result<(View, Type), CodegenError> {
        let ty = self.program.type_of(expr).clone();
        if let Some(v) = self.views.get(&expr) {
            return Ok((v.clone(), ty));
        }
        let view = match self.program.expr(expr).kind.clone() {
            ExprKind::Literal(lit) => View::Constant(lit),
            ExprKind::Param { name } => {
                return Err(CodegenError::Unsupported(format!(
                    "parameter `{name}` used before it was bound to a view"
                )))
            }
            ExprKind::FunCall { f, args } => match self.program.decl(f).clone() {
                FunDecl::Pattern(pattern) => match pattern {
                    Pattern::Split { chunk } => {
                        let (base, _) = self.read_view(args[0], stmts)?;
                        View::Split {
                            base: Box::new(base),
                            chunk,
                        }
                    }
                    Pattern::Join => {
                        let arg_ty = self.program.type_of(args[0]).clone();
                        let inner = inner_len(&arg_ty)?;
                        let (base, _) = self.read_view(args[0], stmts)?;
                        View::Join {
                            base: Box::new(base),
                            inner,
                        }
                    }
                    Pattern::Gather { reorder } => {
                        let arg_ty = self.program.type_of(args[0]).clone();
                        let len = outer_len(&arg_ty)?;
                        let (base, _) = self.read_view(args[0], stmts)?;
                        View::Reorder {
                            base: Box::new(base),
                            reorder,
                            len,
                        }
                    }
                    Pattern::Scatter { reorder } => {
                        let arg_ty = self.program.type_of(args[0]).clone();
                        let len = outer_len(&arg_ty)?;
                        let inverse = invert_reorder(&reorder, &len)?;
                        let (base, _) = self.read_view(args[0], stmts)?;
                        View::Reorder {
                            base: Box::new(base),
                            reorder: inverse,
                            len,
                        }
                    }
                    Pattern::Transpose => {
                        let (base, _) = self.read_view(args[0], stmts)?;
                        View::Transpose {
                            base: Box::new(base),
                        }
                    }
                    Pattern::Slide { step, .. } => {
                        let (base, _) = self.read_view(args[0], stmts)?;
                        View::Slide {
                            base: Box::new(base),
                            step,
                        }
                    }
                    Pattern::Pad { left, mode, .. } => {
                        let arg_ty = self.program.type_of(args[0]).clone();
                        let len = outer_len(&arg_ty)?;
                        let (base, _) = self.read_view(args[0], stmts)?;
                        View::Layout {
                            base: Box::new(base),
                            skip: 0,
                            ops: vec![LayoutOp::Pad { left, len, mode }],
                        }
                    }
                    Pattern::Zip { .. } => {
                        let mut bases = Vec::with_capacity(args.len());
                        for a in args {
                            bases.push(self.read_view(a, stmts)?.0);
                        }
                        View::Zip { bases }
                    }
                    Pattern::Get { index } => {
                        let (base, _) = self.read_view(args[0], stmts)?;
                        base.component(index)
                    }
                    Pattern::AsVector { width } => {
                        let (base, _) = self.read_view(args[0], stmts)?;
                        View::AsVector {
                            base: Box::new(base),
                            width,
                        }
                    }
                    Pattern::AsScalar => {
                        let arg_ty = self.program.type_of(args[0]).clone();
                        let width = vector_width_of(&arg_ty)?;
                        let (base, _) = self.read_view(args[0], stmts)?;
                        View::AsScalar {
                            base: Box::new(base),
                            width,
                        }
                    }
                    Pattern::Id => self.read_view(args[0], stmts)?.0,
                    Pattern::Iterate { .. } => {
                        let (result_view, code) = self.gen_iterate(expr, f, &args)?;
                        stmts.extend(code);
                        result_view
                    }
                    // A map (of any flavour) whose function is purely a layout chain moves
                    // no data: it becomes a view transformation of the dimensions below the
                    // mapped ones instead of a loop-and-materialise. This is what makes 2D
                    // stencil compositions (`slide2d` = map(transpose) ∘ slide ∘ map(slide),
                    // `pad2d` = map(pad) ∘ pad) — and their map-fused forms such as
                    // `mapSeq(λx. slide(pad(x)))` — compile without intermediate buffers.
                    pattern => {
                        let nested = match &pattern {
                            Pattern::MapSeq { f }
                            | Pattern::MapGlb { f, .. }
                            | Pattern::MapWrg { f, .. }
                            | Pattern::MapLcl { f, .. } => Some(*f),
                            _ => None,
                        };
                        let mapped = nested.and_then(|f| {
                            let elem_ty = self.program.type_of(args[0]).as_array()?.0.clone();
                            let (base, _) = self.read_view(args[0], stmts).ok()?;
                            self.layout_fun_view(f, &elem_ty, 1, base)
                        });
                        match mapped {
                            Some(view) => view,
                            None => self.materialise(expr, stmts)?,
                        }
                    }
                },
                _ => self.materialise(expr, stmts)?,
            },
        };
        self.views.insert(expr, view.clone());
        Ok((view, ty))
    }

    /// The [`LayoutOp`] of a pure layout pattern applied to a value of type `arg_ty`, or
    /// `None` when the pattern is not a layout transformation.
    fn layout_op(&self, p: &Pattern, arg_ty: &Type) -> Option<LayoutOp> {
        match p {
            Pattern::Slide { step, .. } => Some(LayoutOp::Slide { step: step.clone() }),
            Pattern::Split { chunk } => Some(LayoutOp::Split {
                chunk: chunk.clone(),
            }),
            Pattern::Join => {
                let inner = inner_len(arg_ty).ok()?;
                Some(LayoutOp::Join { inner })
            }
            Pattern::Transpose => Some(LayoutOp::Transpose),
            Pattern::Gather { reorder } => {
                let len = outer_len(arg_ty).ok()?;
                Some(LayoutOp::Reorder {
                    reorder: reorder.clone(),
                    len,
                })
            }
            Pattern::Scatter { reorder } => {
                // Reading through a scatter is reading through the inverse permutation.
                let len = outer_len(arg_ty).ok()?;
                let inverse = invert_reorder(reorder, &len).ok()?;
                Some(LayoutOp::Reorder {
                    reorder: inverse,
                    len,
                })
            }
            Pattern::Pad { left, mode, .. } => {
                let len = outer_len(arg_ty).ok()?;
                Some(LayoutOp::Pad {
                    left: left.clone(),
                    len,
                    mode: *mode,
                })
            }
            _ => None,
        }
    }

    /// Builds the view of applying function `f` (element-wise, `skip` mapped dimensions
    /// below the surface) to the data viewed by `base`, **iff** `f` is a pure layout
    /// function: a layout pattern, a further map of one, or a lambda whose body is a chain
    /// of layout applications of its parameter (the shape map fusion produces, e.g.
    /// `λx. slide(pad(x))`).
    ///
    /// `elem_ty` is the type of the values `f` is applied to, which supplies the dimension
    /// extents some ops need (`join`'s inner length, `pad`'s un-padded length, …).
    fn layout_fun_view(
        &self,
        f: FunDeclId,
        elem_ty: &Type,
        skip: usize,
        base: View,
    ) -> Option<View> {
        match self.program.decl(f) {
            FunDecl::Pattern(p) => match p {
                Pattern::MapSeq { f }
                | Pattern::MapGlb { f, .. }
                | Pattern::MapWrg { f, .. }
                | Pattern::MapLcl { f, .. } => {
                    let (inner_elem, _) = elem_ty.as_array()?;
                    self.layout_fun_view(*f, inner_elem, skip + 1, base)
                }
                Pattern::Id => Some(base),
                p => {
                    let op = self.layout_op(p, elem_ty)?;
                    Some(View::Layout {
                        base: Box::new(base),
                        skip,
                        ops: vec![op],
                    })
                }
            },
            FunDecl::Lambda { params, body } => {
                let [param] = params.as_slice() else {
                    return None;
                };
                self.layout_expr_view(*body, *param, skip, base)
            }
            FunDecl::UserFun(_) => None,
        }
    }

    /// The lambda-body recursion of [`Generator::layout_fun_view`]: a chain of unary layout
    /// applications terminating at `param`. Views wrap from the inside out, so the
    /// outermost application ends up as the outermost [`View::Layout`] node — the order the
    /// view walk consumes them in.
    fn layout_expr_view(&self, e: ExprId, param: ExprId, skip: usize, base: View) -> Option<View> {
        match &self.program.expr(e).kind {
            ExprKind::Param { .. } if e == param => Some(base),
            ExprKind::FunCall { f, args } => {
                let [arg] = args.as_slice() else {
                    return None;
                };
                let (f, arg) = (*f, *arg);
                let arg_ty = self.program.expr(arg).ty.clone()?;
                let inner = self.layout_expr_view(arg, param, skip, base)?;
                match self.program.decl(f) {
                    FunDecl::Pattern(p) => match p {
                        Pattern::MapSeq { f }
                        | Pattern::MapGlb { f, .. }
                        | Pattern::MapWrg { f, .. }
                        | Pattern::MapLcl { f, .. } => {
                            let (inner_elem, _) = arg_ty.as_array()?;
                            self.layout_fun_view(*f, inner_elem, skip + 1, inner)
                        }
                        Pattern::Id => Some(inner),
                        p => {
                            let op = self.layout_op(p, &arg_ty)?;
                            Some(View::Layout {
                                base: Box::new(inner),
                                skip,
                                ops: vec![op],
                            })
                        }
                    },
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Allocates a buffer (or scalar variable) for the value of `expr`, generates the code
    /// producing it, and returns a view of the new storage.
    ///
    /// A global-memory intermediate becomes a host-allocated temporary shared by a kernel
    /// *sequence*: the producing code ends the current kernel (the kernel boundary is the
    /// device-wide synchronisation point) and the consumer reads the temporary in the next
    /// one.
    fn materialise(&mut self, expr: ExprId, stmts: &mut Vec<CStmt>) -> Result<View, CodegenError> {
        let ty = self.program.type_of(expr).clone();
        let space = match self.spaces.get(&expr) {
            Some(space) => *space,
            // A scalar always fits a register; anything larger without an inferred space
            // is a compiler bug upstream — refuse instead of silently spilling a large
            // array into per-thread private memory.
            None if ty.is_scalar() => AddressSpace::Private,
            None => {
                return Err(CodegenError::MissingAddressSpace(format!(
                    "an intermediate of type `{ty}` must be materialised, but address-space \
                     inference did not visit it"
                )))
            }
        };
        if space == AddressSpace::Global {
            return self.materialise_global(expr, &ty, stmts);
        }
        self.check_ownership(expr, &ty, space)?;
        let view = self.allocate(&ty, space)?;
        let code = self.gen_expr(expr, &view)?;
        // A group-shared `__local` array is fenced where it finishes materialising: the
        // ownership check above guarantees the producing code runs at work-group level,
        // where control flow is uniform — unlike the bodies of nested `mapLcl` loops,
        // whose own trailing barriers (the pre-refactor placement) become divergent as
        // soon as an outer map guards or strides them (2D tiling does both). Inside a
        // loop (`nesting > 0`) the buffer is re-staged every iteration, so a *leading*
        // fence also closes the previous iteration's reads before they are overwritten.
        let cooperative =
            space == AddressSpace::Local && !matches!(&view, View::Memory { scalar: true, .. });
        if cooperative && self.options.barrier_elimination {
            if self.nesting > 0 {
                stmts.push(CStmt::Barrier(Fence::local()));
            }
            stmts.extend(code);
            stmts.push(CStmt::Barrier(Fence::local()));
        } else {
            stmts.extend(code);
        }
        Ok(view)
    }

    /// The parallelism-ownership check: refuses to allocate a group-shared `__local` array
    /// whose producing code executes at work-item level. The array is allocated once per
    /// work group, but the producer would run per work item with work-item-varying data —
    /// every work item writing the whole buffer is a write-write data race. (Local
    /// *scalars* compile to per-thread registers and private memory is per-work-item by
    /// construction, so neither can alias across work items.)
    fn check_ownership(
        &self,
        expr: ExprId,
        ty: &Type,
        space: AddressSpace,
    ) -> Result<(), CodegenError> {
        if space != AddressSpace::Local {
            return Ok(());
        }
        let scalar = ty.element_count().as_cst() == Some(1) && ty.array_depth() <= 1;
        if scalar {
            return Ok(());
        }
        let writer_level = self
            .levels
            .get(&expr)
            .copied()
            .unwrap_or(ParallelismLevel::WorkGroup);
        if writer_level.is_work_item() {
            return Err(CodegenError::OwnershipViolation {
                buffer: format!("a __local intermediate of type `{ty}`"),
                writer_level,
                owner_level: ParallelismLevel::owner_of(space),
                site: render_site(&self.program, expr),
            });
        }
        Ok(())
    }

    /// Materialises `expr` into a global temporary and splits the program: the producing
    /// code ends the current kernel, and everything generated afterwards belongs to the
    /// next kernel of the sequence.
    fn materialise_global(
        &mut self,
        expr: ExprId,
        ty: &Type,
        stmts: &mut Vec<CStmt>,
    ) -> Result<View, CodegenError> {
        if self.nesting > 0 {
            return Err(CodegenError::Unsupported(
                "a global-memory intermediate inside a nested pattern would need a \
                 device-wide barrier within a kernel, which OpenCL does not have; only \
                 top-level pipeline stages can be split into separate kernels"
                    .into(),
            ));
        }
        if !ty.is_array() {
            return Err(CodegenError::Unsupported(format!(
                "a non-array intermediate of type `{ty}` cannot be staged in global memory"
            )));
        }
        let name = self.fresh("tmp_g");
        self.temp_buffers.push((name.clone(), ty.clone()));
        let view = View::memory(name, AddressSpace::Global, array_dims(ty));
        let code = self.gen_expr(expr, &view)?;
        stmts.extend(code);
        // Device-wide synchronisation point: end the current kernel here.
        stmts.push(CStmt::Comment(KERNEL_SPLIT_MARKER.into()));
        self.segment_decls.push(std::mem::take(&mut self.decls));
        Ok(view)
    }

    /// Allocates storage of the given type in local or private memory and returns its view
    /// (global intermediates go through [`Generator::materialise_global`] instead).
    fn allocate(&mut self, ty: &Type, space: AddressSpace) -> Result<View, CodegenError> {
        let elem_count = ty.element_count();
        let scalar = elem_count.as_cst() == Some(1) && ty.array_depth() <= 1;
        debug_assert_ne!(space, AddressSpace::Global, "handled by materialise_global");
        let ctype = scalar_ctype(ty.innermost());
        if scalar {
            let name = self.fresh("acc");
            self.decls.push(CStmt::Decl {
                ty: ctype,
                name: name.clone(),
                addr: None,
                array_len: None,
                init: None,
            });
            Ok(View::scalar_var(name, space))
        } else {
            let name = self.fresh("tmp");
            self.decls.push(CStmt::Decl {
                ty: ctype,
                name: name.clone(),
                addr: Some(addr_of(space)),
                array_len: Some(elem_count),
                init: None,
            });
            Ok(View::memory(name, space, array_dims(ty)))
        }
    }

    // -------------------------------------------------------------------- function application

    /// Generates code applying function `f` to data described by `views` (with the given
    /// types), writing the result through `dest`.
    fn gen_apply(
        &mut self,
        f: FunDeclId,
        views: &[View],
        types: &[Type],
        dest: &View,
    ) -> Result<Vec<CStmt>, CodegenError> {
        match self.program.decl(f).clone() {
            FunDecl::Lambda { params, body } => {
                if params.len() != views.len() {
                    return Err(CodegenError::Unsupported(
                        "lambda applied to the wrong number of arguments".into(),
                    ));
                }
                for (p, v) in params.iter().zip(views) {
                    self.views.insert(*p, v.clone());
                }
                // Re-annotate the lambda body for these argument types: the whole-program
                // inference may have typed it at a different (e.g. unrolled) instantiation.
                lift_ir::infer_call_types(&mut self.program, f, types)?;
                self.gen_expr(body, dest)
            }
            FunDecl::UserFun(uf) => {
                let call = self.user_fun_call(&uf, views, types, None)?;
                let target = resolve(dest, &self.builder)?;
                Ok(vec![store_stmt(&target, call, &self.builder)?])
            }
            FunDecl::Pattern(pattern) => self.gen_pattern_from_views(&pattern, views, types, dest),
        }
    }

    /// Dispatch for computational patterns reached through [`Generator::gen_call`].
    fn gen_pattern(
        &mut self,
        expr: ExprId,
        pattern: &Pattern,
        views: &[View],
        types: &[Type],
        dest: &View,
    ) -> Result<Vec<CStmt>, CodegenError> {
        match pattern {
            Pattern::Iterate { .. } => {
                // Iterate reached with an explicit destination: generate it, then copy.
                let f = match &self.program.expr(expr).kind {
                    ExprKind::FunCall { f, .. } => *f,
                    _ => unreachable!("gen_pattern is only called on calls"),
                };
                let args: Vec<ExprId> = match &self.program.expr(expr).kind {
                    ExprKind::FunCall { args, .. } => args.clone(),
                    _ => unreachable!("gen_pattern is only called on calls"),
                };
                let (result_view, mut stmts) = self.gen_iterate(expr, f, &args)?;
                let out_ty = self.program.type_of(expr).clone();
                stmts.extend(self.copy_loop(&result_view, dest, &out_ty)?);
                Ok(stmts)
            }
            _ => self.gen_pattern_from_views(pattern, views, types, dest),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn gen_pattern_from_views(
        &mut self,
        pattern: &Pattern,
        views: &[View],
        types: &[Type],
        dest: &View,
    ) -> Result<Vec<CStmt>, CodegenError> {
        match pattern {
            Pattern::MapSeq { f } => {
                self.gen_map_loop(MapKind::Seq, *f, &views[0], &types[0], dest)
            }
            Pattern::MapGlb { dim, f } => {
                self.gen_map_loop(MapKind::Global(*dim), *f, &views[0], &types[0], dest)
            }
            Pattern::MapWrg { dim, f } => {
                self.gen_map_loop(MapKind::WorkGroup(*dim), *f, &views[0], &types[0], dest)
            }
            Pattern::MapLcl { dim, f } => {
                self.gen_map_loop(MapKind::Local(*dim), *f, &views[0], &types[0], dest)
            }
            Pattern::MapVec { f } => self.gen_map_vec(*f, &views[0], &types[0], dest),
            Pattern::ReduceSeq { f } => {
                self.gen_reduce(*f, &views[0], &types[0], &views[1], &types[1], dest)
            }
            Pattern::Id => {
                // Identity over a scalar value: a single copy.
                let value = self.load_value(&views[0], &types[0])?;
                let target = resolve(dest, &self.builder)?;
                Ok(vec![store_stmt(&target, value, &self.builder)?])
            }
            Pattern::ToGlobal { f } | Pattern::ToLocal { f } | Pattern::ToPrivate { f } => {
                self.gen_apply(*f, views, types, dest)
            }
            other => Err(CodegenError::Unsupported(format!(
                "pattern `{}` cannot be generated in this position",
                other.name()
            ))),
        }
    }

    /// The distributed-write half of the parallelism-ownership pass (the dual of
    /// [`Generator::check_ownership`]): a parallel map writes one result cell per work
    /// item (`mapGlb`/`mapLcl`) or per work group (`mapWrg`), so its destination must be
    /// shared at least as widely as the map distributes. Writing into narrower memory —
    /// a `mapGlb` result landing in a per-thread `__private` array, or a `mapWrg` result
    /// in a per-group `__local` one — leaves every owner holding only its own slice: a
    /// consumer reading the whole array sees the other cells uninitialised on a real GPU,
    /// even though the in-order virtual GPU masks it (the dynamic race detector catches
    /// it as conflicting writes to whatever the garbage feeds).
    fn check_distribution(
        &self,
        kind: MapKind,
        input_ty: &Type,
        dest: &View,
    ) -> Result<(), CodegenError> {
        let dest_space = view_space(dest);
        let (name, writer_level, violation) = match kind {
            MapKind::Seq => return Ok(()),
            MapKind::Global(_) => (
                "mapGlb",
                ParallelismLevel::WorkItem,
                dest_space != AddressSpace::Global,
            ),
            MapKind::WorkGroup(_) => (
                "mapWrg",
                ParallelismLevel::WorkGroup,
                dest_space != AddressSpace::Global,
            ),
            MapKind::Local(_) => (
                "mapLcl",
                ParallelismLevel::WorkItem,
                dest_space == AddressSpace::Private,
            ),
        };
        if !violation {
            return Ok(());
        }
        let space = match dest_space {
            AddressSpace::Local => "__local",
            _ => "__private",
        };
        Err(CodegenError::OwnershipViolation {
            buffer: format!("the {space} destination of a distributed `{name}`"),
            writer_level,
            owner_level: ParallelismLevel::owner_of(dest_space),
            site: format!("{name} over `{input_ty}`"),
        })
    }

    fn gen_map_loop(
        &mut self,
        kind: MapKind,
        f: FunDeclId,
        input: &View,
        input_ty: &Type,
        dest: &View,
    ) -> Result<Vec<CStmt>, CodegenError> {
        let (elem_ty, len) = input_ty
            .as_array()
            .map(|(e, l)| (e.clone(), l.clone()))
            .ok_or_else(|| CodegenError::Unsupported("map over a non-array value".into()))?;
        self.check_distribution(kind, input_ty, dest)?;
        // The dimension-aware half of the distribution check: nesting two parallel loops
        // of the same kind over the same dimension makes both stride the same work-item
        // id, so only the "diagonal" index pairs are ever computed — the off-diagonal
        // cells are written by no work item. This is a silent miscompile (the in-order
        // virtual GPU masks it for some launches), rejected statically instead.
        let parallel_tag = match kind {
            MapKind::Seq => None,
            MapKind::Global(d) => Some(("mapGlb", d)),
            MapKind::WorkGroup(d) => Some(("mapWrg", d)),
            MapKind::Local(d) => Some(("mapLcl", d)),
        };
        if let Some(tag) = parallel_tag {
            if self.active_parallel.contains(&tag) {
                return Err(CodegenError::Unsupported(format!(
                    "nested `{}` loops over dimension {}: both stride the same work-item \
                     id, so off-diagonal index pairs are computed by no work item; \
                     distribute the inner map over a different dimension (e.g. `{}` with \
                     dim 1) or lower it sequentially",
                    tag.0, tag.1, tag.0
                )));
            }
        }

        let (var_base, init, step, parallel_width) = match kind {
            MapKind::Seq => ("i", CExpr::int(0), CExpr::int(1), None),
            MapKind::Global(d) => (
                "gl_id",
                CExpr::global_id(d),
                CExpr::global_size(d),
                Some(self.options.global_size[d as usize]),
            ),
            MapKind::WorkGroup(d) => (
                "wg_id",
                CExpr::group_id(d),
                CExpr::num_groups(d),
                Some(self.options.num_groups()[d as usize]),
            ),
            MapKind::Local(d) => (
                "l_id",
                CExpr::local_id(d),
                CExpr::local_size(d),
                Some(self.options.local_size[d as usize]),
            ),
        };
        let var = self.fresh(var_base);
        let simplify_cf = self.options.control_flow_simplification;
        // A sequential map over a single element needs neither a loop nor a loop variable:
        // index the element directly with 0 (control-flow simplification, Section 5.5).
        let collapse_seq = simplify_cf && matches!(kind, MapKind::Seq) && len.as_cst() == Some(1);
        let loop_var = if collapse_seq {
            ArithExpr::cst(0)
        } else {
            ArithExpr::var_in_range(&var, 0, len.clone())
        };

        let elem_view = input.clone().access(loop_var.clone());
        let elem_dest = dest.clone().access(loop_var.clone());
        self.nesting += 1;
        if let Some(tag) = parallel_tag {
            self.active_parallel.push(tag);
        }
        let body = self.gen_apply(f, &[elem_view], &[elem_ty], &elem_dest);
        if parallel_tag.is_some() {
            self.active_parallel.pop();
        }
        self.nesting -= 1;
        let body = body?;

        let mut stmts = Vec::new();
        match (kind, len.as_cst(), parallel_width) {
            // Sequential map over a single element: no loop at all.
            (MapKind::Seq, Some(1), _) if simplify_cf => {
                stmts.extend(body);
            }
            // Parallel map with exactly as many threads as elements: a block with the id bound.
            (_, Some(n), Some(width)) if simplify_cf && n == width as i64 => {
                let mut block = vec![CStmt::Decl {
                    ty: CType::Int,
                    name: var.clone(),
                    addr: None,
                    array_len: None,
                    init: Some(init),
                }];
                block.extend(body);
                stmts.push(CStmt::Block(block));
            }
            // Fewer elements than threads: guard with an `if`.
            (_, Some(n), Some(width)) if simplify_cf && n < width as i64 => {
                let mut block = vec![CStmt::Decl {
                    ty: CType::Int,
                    name: var.clone(),
                    addr: None,
                    array_len: None,
                    init: Some(init),
                }];
                block.push(CStmt::If {
                    cond: CExpr::var(&var).lt(CExpr::Index(len.clone())),
                    then: body,
                    otherwise: None,
                });
                stmts.push(CStmt::Block(block));
            }
            _ => {
                stmts.push(CStmt::For {
                    var: var.clone(),
                    init,
                    cond: CExpr::var(&var).lt(CExpr::Index(len.clone())),
                    step,
                    body,
                });
            }
        }

        // Synchronisation after parallel local maps (Section 5.4). With barrier
        // elimination enabled no per-loop barrier is emitted at all: `__local` buffers are
        // fenced once where they finish materialising (see [`Generator::materialise`],
        // always at uniform work-group-level control flow), and a write to global memory
        // is never read back within the same kernel (global intermediates split the kernel
        // sequence, whose boundary is the device-wide barrier), so its fence is dead.
        // Without elimination every local map keeps its naive trailing barrier — the
        // unoptimised configuration Figure 8 measures.
        let dest_space = view_space(dest);
        let barrier = match kind {
            MapKind::Local(_) if !self.options.barrier_elimination => match dest_space {
                AddressSpace::Local | AddressSpace::Private => Some(Fence::local()),
                AddressSpace::Global => Some(Fence::global()),
            },
            _ => None,
        };
        if let Some(fence) = barrier {
            stmts.push(CStmt::Barrier(fence));
        }
        Ok(stmts)
    }

    fn gen_map_vec(
        &mut self,
        f: FunDeclId,
        input: &View,
        input_ty: &Type,
        dest: &View,
    ) -> Result<Vec<CStmt>, CodegenError> {
        let uf = match self.program.decl(f).clone() {
            FunDecl::UserFun(uf) => uf,
            _ => {
                return Err(CodegenError::Unsupported(
                    "mapVec expects a user function".into(),
                ))
            }
        };
        let width = match input_ty {
            Type::Vector(_, w) => *w,
            _ => {
                return Err(CodegenError::Unsupported(
                    "mapVec over a non-vector value".into(),
                ))
            }
        };
        let call = self.user_fun_call(
            &uf,
            std::slice::from_ref(input),
            std::slice::from_ref(input_ty),
            Some(width),
        )?;
        let target = resolve(dest, &self.builder)?;
        Ok(vec![store_stmt(&target, call, &self.builder)?])
    }

    fn gen_reduce(
        &mut self,
        f: FunDeclId,
        init_view: &View,
        init_ty: &Type,
        input_view: &View,
        input_ty: &Type,
        dest: &View,
    ) -> Result<Vec<CStmt>, CodegenError> {
        let (elem_ty, len) = input_ty
            .as_array()
            .map(|(e, l)| (e.clone(), l.clone()))
            .ok_or_else(|| CodegenError::Unsupported("reduce over a non-array value".into()))?;

        // Accumulate either directly in the destination (when it is a private scalar) or in a
        // fresh private accumulator written back once at the end, like `acc1` in Figure 7.
        let dest_resolved = resolve(&dest.clone().access(ArithExpr::cst(0)), &self.builder)?;
        let (acc_view, needs_writeback) = match &dest_resolved {
            Resolved::MemoryAccess {
                scalar: true,
                memory,
                ..
            } => (
                View::scalar_var(memory.clone(), AddressSpace::Private),
                false,
            ),
            _ => {
                let name = self.fresh("acc");
                self.decls.push(CStmt::Decl {
                    ty: scalar_ctype(init_ty.innermost()),
                    name: name.clone(),
                    addr: None,
                    array_len: None,
                    init: None,
                });
                (View::scalar_var(name, AddressSpace::Private), true)
            }
        };

        let mut stmts = Vec::new();
        // acc = init
        let init_value = self.load_value(init_view, init_ty)?;
        let acc_target = resolve(&acc_view, &self.builder)?;
        stmts.push(store_stmt(&acc_target, init_value, &self.builder)?);

        // Accumulation loop. A reduction over a single element needs no loop or loop variable.
        let collapse = self.options.control_flow_simplification && len.as_cst() == Some(1);
        let var = self.fresh("i");
        let loop_var = if collapse {
            ArithExpr::cst(0)
        } else {
            ArithExpr::var_in_range(&var, 0, len.clone())
        };
        let elem_view = input_view.clone().access(loop_var.clone());
        self.nesting += 1;
        let body = self.gen_apply(
            f,
            &[acc_view.clone(), elem_view],
            &[init_ty.clone(), elem_ty],
            &acc_view,
        );
        self.nesting -= 1;
        let body = body?;
        if collapse {
            stmts.extend(body);
        } else {
            stmts.push(CStmt::For {
                var: var.clone(),
                init: CExpr::int(0),
                cond: CExpr::var(&var).lt(CExpr::Index(len)),
                step: CExpr::int(1),
                body,
            });
        }

        if needs_writeback {
            let acc_value = self.load_value(&acc_view, init_ty)?;
            stmts.push(store_stmt(&dest_resolved, acc_value, &self.builder)?);
        }
        Ok(stmts)
    }

    /// Generates the double-buffered loop for `iterate` (Figure 7, lines 17–29) and returns
    /// the view of the buffer holding the final result.
    fn gen_iterate(
        &mut self,
        expr: ExprId,
        f: FunDeclId,
        args: &[ExprId],
    ) -> Result<(View, Vec<CStmt>), CodegenError> {
        let (n, body_fun) = match self.program.decl(f).clone() {
            FunDecl::Pattern(Pattern::Iterate { n, f }) => (n, f),
            _ => {
                return Err(CodegenError::Unsupported(
                    "gen_iterate on a non-iterate".into(),
                ))
            }
        };
        let mut stmts = Vec::new();
        let (input_view, input_ty) = self.read_view(args[0], &mut stmts)?;
        let out_ty = self.program.type_of(expr).clone();

        let (elem_ty, in_len) = input_ty
            .as_array()
            .map(|(e, l)| (e.clone(), l.clone()))
            .ok_or_else(|| CodegenError::Unsupported("iterate over a non-array".into()))?;
        let out_len = outer_len(&out_ty)?;
        let (in_c, out_c) = match (in_len.as_cst(), out_len.as_cst()) {
            (Some(a), Some(b)) if a > 0 && b > 0 => (a, b),
            _ => {
                return Err(CodegenError::Unsupported(
                    "iterate requires statically known lengths".into(),
                ))
            }
        };
        // Per-iteration shrink factor k with k^n == in/out.
        let factor = if n == 0 || in_c == out_c {
            1
        } else {
            let mut k = 1i64;
            for candidate in 2..=in_c {
                if candidate.checked_pow(n as u32) == Some(in_c / out_c) {
                    k = candidate;
                    break;
                }
            }
            k
        };

        let space = match &input_view {
            View::Memory { space, .. } => *space,
            _ => {
                return Err(CodegenError::Unsupported(
                    "iterate input must be materialised in a buffer".into(),
                ))
            }
        };
        if space == AddressSpace::Global {
            // The double-buffered loop would have to declare its second buffer in global
            // memory, which a kernel cannot allocate (and its barriers would only
            // synchronise one work group). This silently produced an invalid kernel-local
            // `global` array before; it is a typed error now.
            return Err(CodegenError::Unsupported(
                "`iterate` over a global-memory buffer is not supported; stage the data in \
                 local or private memory first (e.g. with toLocal)"
                    .into(),
            ));
        }
        let input_name = match &input_view {
            View::Memory { name, .. } => name.clone(),
            _ => unreachable!("checked above"),
        };
        // The double-buffered loop writes the whole ping/pong pair each sweep, so a local
        // iterate is only sound where the group executes it uniformly or its body
        // partitions writes across work items — same ownership rule as `materialise`.
        self.check_ownership(expr, &Type::array(elem_ty.clone(), in_len.clone()), space)?;

        // Second buffer for double buffering.
        let pong = self.fresh("tmp");
        self.decls.push(CStmt::Decl {
            ty: scalar_ctype(elem_ty.innermost()),
            name: pong.clone(),
            addr: Some(addr_of(space)),
            array_len: Some(ArithExpr::cst(in_c)),
            init: None,
        });

        let in_ptr = self.fresh("iter_in");
        let out_ptr = self.fresh("iter_out");
        let size_name = self.fresh("size");
        let ptr_ty = CType::pointer(scalar_ctype(elem_ty.innermost()), addr_of(space));
        stmts.push(CStmt::Decl {
            ty: ptr_ty.clone(),
            name: in_ptr.clone(),
            addr: None,
            array_len: None,
            init: Some(CExpr::var(&input_name)),
        });
        stmts.push(CStmt::Decl {
            ty: ptr_ty,
            name: out_ptr.clone(),
            addr: None,
            array_len: None,
            init: Some(CExpr::var(&pong)),
        });
        stmts.push(CStmt::Decl {
            ty: CType::Int,
            name: size_name.clone(),
            addr: None,
            array_len: None,
            init: Some(CExpr::int(in_c)),
        });

        // Body: apply the iterated function from `in` (length `size`) to `out`.
        let size_var = ArithExpr::var_in_range(&size_name, 1, ArithExpr::cst(in_c + 1));
        let body_in_ty = Type::array(elem_ty.clone(), size_var.clone());
        let body_in_view = View::memory(in_ptr.clone(), space, vec![size_var.clone()]);
        let body_out_view = View::memory(
            out_ptr.clone(),
            space,
            vec![size_var.clone() / ArithExpr::cst(factor)],
        );
        self.nesting += 1;
        let body = self.gen_apply(body_fun, &[body_in_view], &[body_in_ty], &body_out_view);
        self.nesting -= 1;
        let mut body = body?;
        body.push(CStmt::Barrier(Fence::local()));
        body.push(CStmt::Assign {
            lhs: CExpr::var(&size_name),
            rhs: CExpr::var(&size_name).div(CExpr::int(factor)),
        });
        // Swap the buffers: `in` becomes the buffer just written.
        body.push(CStmt::Assign {
            lhs: CExpr::var(&in_ptr),
            rhs: CExpr::Ternary(
                Box::new(CExpr::var(&out_ptr).eq(CExpr::var(&input_name))),
                Box::new(CExpr::var(&input_name)),
                Box::new(CExpr::var(&pong)),
            ),
        });
        body.push(CStmt::Assign {
            lhs: CExpr::var(&out_ptr),
            rhs: CExpr::Ternary(
                Box::new(CExpr::var(&in_ptr).eq(CExpr::var(&input_name))),
                Box::new(CExpr::var(&pong)),
                Box::new(CExpr::var(&input_name)),
            ),
        });

        let iter_var = self.fresh("iter");
        stmts.push(CStmt::For {
            var: iter_var.clone(),
            init: CExpr::int(0),
            cond: CExpr::var(&iter_var).lt(CExpr::int(n as i64)),
            step: CExpr::int(1),
            body,
        });

        let result_view = View::memory(in_ptr, space, vec![out_len]);
        Ok((result_view, stmts))
    }

    /// Emits a sequential element-by-element copy from `src` to `dest` (used when an `iterate`
    /// result must land in a caller-provided destination).
    fn copy_loop(
        &mut self,
        src: &View,
        dest: &View,
        ty: &Type,
    ) -> Result<Vec<CStmt>, CodegenError> {
        let (_, len) = ty
            .as_array()
            .map(|(e, l)| (e.clone(), l.clone()))
            .ok_or_else(|| CodegenError::Unsupported("copy of a non-array".into()))?;
        let var = self.fresh("c");
        let loop_var = ArithExpr::var_in_range(&var, 0, len.clone());
        let from = resolve(&src.clone().access(loop_var.clone()), &self.builder)?;
        let to = resolve(&dest.clone().access(loop_var), &self.builder)?;
        let body = vec![store_stmt(
            &to,
            load_expr(&from, &self.builder),
            &self.builder,
        )?];
        Ok(vec![CStmt::For {
            var: var.clone(),
            init: CExpr::int(0),
            cond: CExpr::var(&var).lt(CExpr::Index(len)),
            step: CExpr::int(1),
            body,
        }])
    }

    // -------------------------------------------------------------------- user functions

    /// Builds the call expression for a user function applied to the given argument views,
    /// registering the function (and any tuple structs) in the module.
    fn user_fun_call(
        &mut self,
        uf: &UserFun,
        views: &[View],
        types: &[Type],
        vector_width: Option<usize>,
    ) -> Result<CExpr, CodegenError> {
        let mut args = Vec::with_capacity(views.len());
        for (v, t) in views.iter().zip(types) {
            args.push(self.load_typed(v, t)?);
        }
        let fname = self.register_user_fun(uf, vector_width);
        Ok(CExpr::Call(fname, args))
    }

    /// Loads a value of the given type through a view: scalars load directly, tuples load each
    /// component into a struct literal, vectors use vector loads.
    fn load_typed(&mut self, view: &View, ty: &Type) -> Result<CExpr, CodegenError> {
        match ty {
            Type::Tuple(elems) => {
                let struct_name = ty.c_element_name();
                self.register_tuple_struct(ty);
                let mut fields = Vec::with_capacity(elems.len());
                for (i, elem_ty) in elems.iter().enumerate() {
                    let component = view.clone().component(i);
                    fields.push(self.load_typed(&component, elem_ty)?);
                }
                Ok(CExpr::StructLit(struct_name, fields))
            }
            _ => self.load_value(view, ty),
        }
    }

    fn load_value(&mut self, view: &View, _ty: &Type) -> Result<CExpr, CodegenError> {
        let resolved = resolve(view, &self.builder)?;
        Ok(load_expr(&resolved, &self.builder))
    }

    /// Registers the OpenCL function generated from a user function, returning its name.
    fn register_user_fun(&mut self, uf: &UserFun, vector_width: Option<usize>) -> String {
        let name = match vector_width {
            Some(w) => format!("{}_v{w}", uf.name()),
            None => uf.name().to_string(),
        };
        if self.module.function(&name).is_some() {
            return name;
        }
        let mut params = Vec::with_capacity(uf.arity());
        for (pname, pty) in uf.param_names().iter().zip(uf.param_types()) {
            let base = self.ctype_of(pty);
            let cty = match vector_width {
                Some(w) => CType::Vector(Box::new(base), w),
                None => base,
            };
            params.push((pname.clone(), cty));
        }
        let ret = match vector_width {
            Some(w) => CType::Vector(Box::new(self.ctype_of(uf.return_type())), w),
            None => self.ctype_of(uf.return_type()),
        };
        let body = scalar_to_cexpr(uf.body(), uf.param_names());
        self.module.add_function(CFunction {
            name: name.clone(),
            ret,
            params,
            body,
        });
        name
    }

    fn ctype_of(&mut self, ty: &Type) -> CType {
        match ty {
            Type::Tuple(_) => {
                self.register_tuple_struct(ty);
                CType::Struct(ty.c_element_name())
            }
            Type::Vector(k, w) => CType::Vector(Box::new(scalar_ctype(&Type::Scalar(*k))), *w),
            other => scalar_ctype(other),
        }
    }

    fn register_tuple_struct(&mut self, ty: &Type) {
        if let Type::Tuple(elems) = ty {
            let name = ty.c_element_name();
            let fields = elems
                .iter()
                .enumerate()
                .map(|(i, t)| (format!("_{i}"), scalar_ctype(t.innermost())))
                .collect();
            self.module.add_struct(StructDef { name, fields });
        }
    }
}

/// The flavours of map loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MapKind {
    Seq,
    Global(u8),
    WorkGroup(u8),
    Local(u8),
}

// ------------------------------------------------------------------------- helpers

/// Renders the producer expression of an ownership violation as one flattened line
/// (bounded length), so the typed error carries a readable site without a full listing.
fn render_site(program: &Program, expr: ExprId) -> String {
    let rendered = lift_ir::pretty::pretty_expr(program, expr, 0);
    let flat = rendered.split_whitespace().collect::<Vec<_>>().join(" ");
    if flat.chars().count() > 120 {
        let mut cut: String = flat.chars().take(120).collect();
        cut.push('…');
        cut
    } else {
        flat
    }
}

fn addr_of(space: AddressSpace) -> AddrSpace {
    match space {
        AddressSpace::Global => AddrSpace::Global,
        AddressSpace::Local => AddrSpace::Local,
        AddressSpace::Private => AddrSpace::Private,
    }
}

fn scalar_ctype(ty: &Type) -> CType {
    match ty {
        Type::Scalar(ScalarKind::Float) => CType::Float,
        Type::Scalar(ScalarKind::Double) => CType::Double,
        Type::Scalar(ScalarKind::Int) => CType::Int,
        Type::Scalar(ScalarKind::Bool) => CType::Bool,
        Type::Vector(k, w) => CType::Vector(Box::new(scalar_ctype(&Type::Scalar(*k))), *w),
        Type::Tuple(_) => CType::Struct(ty.c_element_name()),
        Type::Array(elem, _) => scalar_ctype(elem.innermost()),
    }
}

/// The array dimensions of a type, outermost first (tuples and scalars have none).
fn array_dims(ty: &Type) -> Vec<ArithExpr> {
    let mut dims = Vec::new();
    let mut current = ty;
    while let Type::Array(elem, len) = current {
        dims.push(len.clone());
        current = elem;
    }
    dims
}

fn outer_len(ty: &Type) -> Result<ArithExpr, CodegenError> {
    ty.as_array()
        .map(|(_, l)| l.clone())
        .ok_or_else(|| CodegenError::Unsupported("expected an array type".into()))
}

fn inner_len(ty: &Type) -> Result<ArithExpr, CodegenError> {
    let (elem, _) = ty
        .as_array()
        .ok_or_else(|| CodegenError::Unsupported("expected a nested array type".into()))?;
    outer_len(elem)
}

fn vector_width_of(ty: &Type) -> Result<usize, CodegenError> {
    match ty.as_array().map(|(e, _)| e) {
        Some(Type::Vector(_, w)) => Ok(*w),
        _ => Err(CodegenError::Unsupported(
            "expected an array of vectors".into(),
        )),
    }
}

fn invert_reorder(reorder: &Reorder, len: &ArithExpr) -> Result<Reorder, CodegenError> {
    match reorder {
        Reorder::Identity => Ok(Reorder::Identity),
        Reorder::Reverse => Ok(Reorder::Reverse),
        Reorder::Stride(s) => Ok(Reorder::Stride(len.clone() / s.clone())),
    }
}

fn view_space(view: &View) -> AddressSpace {
    match view {
        View::Memory { space, .. } => *space,
        View::Constant(_) => AddressSpace::Private,
        View::Access { base, .. }
        | View::Split { base, .. }
        | View::Join { base, .. }
        | View::Reorder { base, .. }
        | View::Transpose { base }
        | View::Slide { base, .. }
        | View::Layout { base, .. }
        | View::TupleComponent { base, .. }
        | View::AsVector { base, .. }
        | View::AsScalar { base, .. } => view_space(base),
        View::Zip { bases } => bases.first().map_or(AddressSpace::Private, view_space),
    }
}

fn literal_expr(lit: Literal) -> CExpr {
    match lit {
        Literal::Float(v) => CExpr::float(f64::from(v)),
        Literal::Int(v) => CExpr::int(v),
    }
}

fn load_expr(resolved: &Resolved, builder: &AccessBuilder) -> CExpr {
    match resolved {
        Resolved::Literal(lit) => literal_expr(*lit),
        Resolved::MemoryAccess {
            memory,
            scalar: true,
            ..
        } => CExpr::var(memory),
        Resolved::MemoryAccess {
            memory,
            index,
            vector_width: Some(w),
            ..
        } => {
            let vec_index = if builder.simplify {
                index.clone() / ArithExpr::cst(*w as i64)
            } else {
                ArithExpr::IntDiv(Box::new(index.clone()), Box::new(ArithExpr::cst(*w as i64)))
            };
            CExpr::Call(
                format!("vload{w}"),
                vec![CExpr::Index(vec_index), CExpr::var(memory)],
            )
        }
        Resolved::MemoryAccess { memory, index, .. } => {
            CExpr::var(memory).at(CExpr::Index(index.clone()))
        }
    }
}

fn store_stmt(
    resolved: &Resolved,
    value: CExpr,
    builder: &AccessBuilder,
) -> Result<CStmt, CodegenError> {
    match resolved {
        Resolved::Literal(_) => Err(CodegenError::Unsupported(
            "cannot write into a constant view".into(),
        )),
        Resolved::MemoryAccess {
            memory,
            scalar: true,
            ..
        } => Ok(CStmt::Assign {
            lhs: CExpr::var(memory),
            rhs: value,
        }),
        Resolved::MemoryAccess {
            memory,
            index,
            vector_width: Some(w),
            ..
        } => {
            let vec_index = if builder.simplify {
                index.clone() / ArithExpr::cst(*w as i64)
            } else {
                ArithExpr::IntDiv(Box::new(index.clone()), Box::new(ArithExpr::cst(*w as i64)))
            };
            Ok(CStmt::Expr(CExpr::Call(
                format!("vstore{w}"),
                vec![value, CExpr::Index(vec_index), CExpr::var(memory)],
            )))
        }
        Resolved::MemoryAccess { memory, index, .. } => Ok(CStmt::Assign {
            lhs: CExpr::var(memory).at(CExpr::Index(index.clone())),
            rhs: value,
        }),
    }
}

/// Translates a user-function body into a C expression over the parameter names.
fn scalar_to_cexpr(body: &ScalarExpr, params: &[String]) -> CExpr {
    match body {
        ScalarExpr::Param(i) => CExpr::var(&params[*i]),
        ScalarExpr::ConstFloat(v) => CExpr::float(*v),
        ScalarExpr::ConstInt(v) => CExpr::int(*v),
        ScalarExpr::Get(e, i) => scalar_to_cexpr(e, params).field(format!("_{i}")),
        ScalarExpr::Tuple(es) => CExpr::StructLit(
            "tuple".into(),
            es.iter().map(|e| scalar_to_cexpr(e, params)).collect(),
        ),
        ScalarExpr::Bin(op, a, b) => {
            let a = scalar_to_cexpr(a, params);
            let b = scalar_to_cexpr(b, params);
            use lift_ir::BinOp::*;
            match op {
                Add => a.add(b),
                Sub => a.sub(b),
                Mul => a.mul(b),
                Div => a.div(b),
                Min => CExpr::Call("fmin".into(), vec![a, b]),
                Max => CExpr::Call("fmax".into(), vec![a, b]),
                Lt => a.lt(b),
                Gt => CExpr::Bin(lift_ocl::CBinOp::Gt, Box::new(a), Box::new(b)),
            }
        }
        ScalarExpr::Un(op, a) => {
            let a = scalar_to_cexpr(a, params);
            use lift_ir::UnOp::*;
            match op {
                Neg => CExpr::Un(lift_ocl::CUnOp::Neg, Box::new(a)),
                Sqrt => CExpr::Call("sqrt".into(), vec![a]),
                Rsqrt => CExpr::Call("rsqrt".into(), vec![a]),
                Fabs => CExpr::Call("fabs".into(), vec![a]),
                Exp => CExpr::Call("exp".into(), vec![a]),
            }
        }
        ScalarExpr::Select(c, t, e) => CExpr::Ternary(
            Box::new(scalar_to_cexpr(c, params)),
            Box::new(scalar_to_cexpr(t, params)),
            Box::new(scalar_to_cexpr(e, params)),
        ),
    }
}

/// Collects every name declared by the statement (top-level declarations, block-scoped
/// declarations and loop variables) into `out`.
fn collect_decl_names(stmt: &CStmt, out: &mut std::collections::HashSet<String>) {
    match stmt {
        CStmt::Decl { name, .. } => {
            out.insert(name.clone());
        }
        CStmt::Block(body) => {
            for s in body {
                collect_decl_names(s, out);
            }
        }
        CStmt::For { var, body, .. } => {
            out.insert(var.clone());
            for s in body {
                collect_decl_names(s, out);
            }
        }
        CStmt::If {
            then, otherwise, ..
        } => {
            for s in then.iter().chain(otherwise.iter().flatten()) {
                collect_decl_names(s, out);
            }
        }
        _ => {}
    }
}

/// Returns the first variable referenced by the statement that is contained in `names`
/// (used to detect a kernel reading a declaration of an earlier kernel).
fn stmt_reference_in(stmt: &CStmt, names: &std::collections::HashSet<String>) -> Option<String> {
    let in_expr = |e: &CExpr| expr_reference_in(e, names);
    match stmt {
        CStmt::Comment(_) | CStmt::Return | CStmt::Barrier(_) => None,
        CStmt::Decl { init, .. } => init.as_ref().and_then(in_expr),
        CStmt::Assign { lhs, rhs } => in_expr(lhs).or_else(|| in_expr(rhs)),
        CStmt::Expr(e) => in_expr(e),
        CStmt::Block(body) => body.iter().find_map(|s| stmt_reference_in(s, names)),
        CStmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => in_expr(init)
            .or_else(|| in_expr(cond))
            .or_else(|| in_expr(step))
            .or_else(|| body.iter().find_map(|s| stmt_reference_in(s, names))),
        CStmt::If {
            cond,
            then,
            otherwise,
        } => in_expr(cond).or_else(|| {
            then.iter()
                .chain(otherwise.iter().flatten())
                .find_map(|s| stmt_reference_in(s, names))
        }),
    }
}

fn expr_reference_in(e: &CExpr, names: &std::collections::HashSet<String>) -> Option<String> {
    match e {
        CExpr::IntLit(_) | CExpr::FloatLit(_) => None,
        CExpr::Var(n) => names.contains(n).then(|| n.clone()),
        CExpr::Index(a) => a
            .vars()
            .into_iter()
            .find(|v| names.contains(v.name()))
            .map(|v| v.name().to_string()),
        CExpr::Bin(_, a, b) | CExpr::ArrayAccess(a, b) => {
            expr_reference_in(a, names).or_else(|| expr_reference_in(b, names))
        }
        CExpr::Un(_, a) | CExpr::Field(a, _) | CExpr::Cast(_, a) => expr_reference_in(a, names),
        CExpr::Call(_, args) | CExpr::StructLit(_, args) | CExpr::VectorLit(_, args) => {
            args.iter().find_map(|a| expr_reference_in(a, names))
        }
        CExpr::Ternary(c, t, o) => expr_reference_in(c, names)
            .or_else(|| expr_reference_in(t, names))
            .or_else(|| expr_reference_in(o, names)),
    }
}

fn collect_size_vars(ty: &Type, out: &mut Vec<String>) {
    match ty {
        Type::Array(elem, len) => {
            for v in len.vars() {
                out.push(v.name().to_string());
            }
            collect_size_vars(elem, out);
        }
        Type::Tuple(elems) => {
            for e in elems {
                collect_size_vars(e, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_ir::UserFun;

    /// `reduceSeq(add, 0)(mapSeq(id)(x))` — the mapped array must be materialised before
    /// the reduction reads it.
    fn reduce_of_map(n: usize) -> Program {
        let mut p = Program::new("t");
        let id = p.user_fun(UserFun::id_float());
        let add = p.user_fun(UserFun::add());
        let m = p.map_seq(id);
        let red = p.reduce_seq(add, 0.0);
        p.with_root(vec![("x", Type::array(Type::float(), n))], |p, params| {
            let mapped = p.apply1(m, params[0]);
            p.apply1(red, mapped)
        });
        p
    }

    #[test]
    fn missing_address_space_is_an_explicit_error() {
        // Regression: `materialise` used to fall back to private memory silently when
        // address-space inference had not visited the expression, which could place a large
        // array intermediate in per-thread registers. Driving the generator with an *empty*
        // space map pins the typed error.
        let mut program = reduce_of_map(16);
        lift_ir::infer_types(&mut program).expect("typechecks");
        let options = CompilationOptions::all_optimisations();
        let generator = Generator {
            program,
            spaces: AddressSpaces::new(), // deliberately empty: no inference results
            levels: ParallelismLevels::new(),
            options: options.clone(),
            builder: AccessBuilder::new(options.array_access_simplification),
            module: Module::new(),
            decls: Vec::new(),
            views: HashMap::new(),
            counter: 0,
            nesting: 0,
            active_parallel: Vec::new(),
            temp_buffers: Vec::new(),
            segment_decls: Vec::new(),
        };
        let err = generator
            .generate()
            .expect_err("must not fall back to private");
        assert!(
            matches!(err, CodegenError::MissingAddressSpace(_)),
            "{err:?}"
        );
        // The same program compiles fine with real address-space inference (as a two-stage
        // sequence: the mapped array is inferred global, so the reduction becomes a second
        // kernel).
        let compiled =
            compile_program(&reduce_of_map(16), &CompilationOptions::all_optimisations())
                .expect("compiles with real inference");
        assert_eq!(compiled.kernels.len(), 2);
    }

    #[test]
    fn nested_global_intermediate_is_a_typed_error() {
        // toGlobal(mapSeq(id)) *inside* a mapGlb element: the consumer sits in the same
        // nested scope, so no device-wide synchronisation point exists between producer and
        // consumer — splitting is impossible and the error says so.
        let mut p = Program::new("t");
        let id = p.user_fun(UserFun::id_float());
        let add = p.user_fun(UserFun::add());
        let copy = p.map_seq(id);
        let copy_global = p.to_global(copy);
        let red = p.reduce_seq(add, 0.0);
        let per_chunk = p.compose(&[red, copy_global]);
        let glb = p.map_glb(0, per_chunk);
        let s = p.split(16usize);
        p.with_root(
            vec![("x", Type::array(Type::float(), 64usize))],
            |p, params| {
                let split = p.apply1(s, params[0]);
                p.apply1(glb, split)
            },
        );
        let err = compile_program(&p, &CompilationOptions::all_optimisations())
            .expect_err("nested global intermediates cannot be split");
        assert!(
            matches!(&err, CodegenError::Unsupported(m) if m.contains("device-wide barrier")),
            "{err:?}"
        );
    }

    #[test]
    fn iterate_over_a_global_buffer_is_a_typed_error() {
        // Regression: this used to emit a kernel-local `global` array declaration for the
        // iterate's second buffer — invalid OpenCL, silently mis-executed by the virtual
        // GPU as private memory.
        let mut p = Program::new("t");
        let id = p.user_fun(UserFun::id_float());
        let m = p.map_seq(id);
        let it = p.iterate(2, m);
        p.with_root(
            vec![("x", Type::array(Type::float(), 8usize))],
            |p, params| p.apply1(it, params[0]),
        );
        let err = compile_program(&p, &CompilationOptions::all_optimisations())
            .expect_err("iterate over a global buffer");
        assert!(
            matches!(&err, CodegenError::Unsupported(m) if m.contains("iterate")),
            "{err:?}"
        );
    }

    #[test]
    fn top_level_global_intermediate_splits_into_two_kernels() {
        // mapGlb(toGlobal(reduceSeq)) feeding a kernel-level reduceSeq: the canonical
        // two-stage shape. (The full pipeline version lives in tests/multi_kernel.rs; this
        // pins the codegen-level contract.)
        let mut p = Program::new("two_stage");
        let add = p.user_fun(UserFun::add());
        let red1 = p.reduce_seq(add, 0.0);
        let red1_global = p.to_global(red1);
        let glb = p.map_glb(0, red1_global);
        let red2 = p.reduce_seq(add, 0.0);
        let s = p.split(16usize);
        let j = p.join();
        p.with_root(
            vec![("x", Type::array(Type::float(), 64usize))],
            |p, params| {
                let split = p.apply1(s, params[0]);
                let partials = p.apply1(glb, split);
                let joined = p.apply1(j, partials);
                p.apply1(red2, joined)
            },
        );
        let compiled = compile_program(&p, &CompilationOptions::all_optimisations())
            .expect("two-stage program compiles");
        assert_eq!(compiled.kernels.len(), 2);
        assert_eq!(compiled.temp_buffers.len(), 1);
        assert!(compiled.kernels[0].parallel);
        assert!(!compiled.kernels[1].parallel);
        // Both kernels share the parameter list, including the temporary.
        let tmp = &compiled.temp_buffers[0].name;
        for kernel in &compiled.module.kernels {
            assert!(kernel.params.iter().any(|param| &param.name == tmp));
        }
        // No split marker leaks into the printed source.
        assert!(!compiled.source().contains(KERNEL_SPLIT_MARKER));
    }

    /// The PR 5 miscompile: per-work-item `toLocal` staging inside a `mapLcl` body. Every
    /// work item materialises its own tile into a `__local` buffer that is allocated once
    /// per group, so the work items race on the shared array. This must now be rejected
    /// statically by the ownership pass, not just filtered by vgpu validation.
    fn racy_per_item_staging() -> Program {
        let mut p = Program::new("racy_stage");
        let id = p.user_fun(UserFun::id_float());
        let add = p.user_fun(UserFun::add());
        let copy_lcl = {
            let m = p.map_seq(id);
            p.to_local(m)
        };
        let red = p.reduce_seq(add, 0.0);
        let stage_and_reduce = p.lambda(&["t"], |p, params| {
            let staged = p.apply1(copy_lcl, params[0]);
            p.apply1(red, staged)
        });
        let lcl = p.map_lcl(0, stage_and_reduce);
        let inner_split = p.split(4usize);
        let group_body = p.compose(&[lcl, inner_split]);
        let wrg = p.map_wrg(0, group_body);
        let s = p.split(16usize);
        let j = p.join();
        p.with_root(
            vec![("x", Type::array(Type::float(), 64usize))],
            |p, params| {
                let split = p.apply1(s, params[0]);
                let mapped = p.apply1(wrg, split);
                p.apply1(j, mapped)
            },
        );
        p
    }

    #[test]
    fn per_work_item_local_staging_is_an_ownership_violation() {
        let p = racy_per_item_staging();
        let err = compile_program(&p, &CompilationOptions::all_optimisations())
            .expect_err("per-work-item local staging must be rejected");
        match &err {
            CodegenError::OwnershipViolation {
                buffer,
                writer_level,
                owner_level,
                site,
            } => {
                assert!(buffer.contains("__local"), "{buffer}");
                assert!(writer_level.is_work_item(), "{writer_level}");
                assert_eq!(*owner_level, ParallelismLevel::WorkGroup);
                assert!(site.contains("toLocal"), "{site}");
            }
            other => panic!("expected OwnershipViolation, got {other:?}"),
        }
        // The rendered message names both levels so rejection telemetry is self-describing.
        let msg = err.to_string();
        assert!(msg.contains("work-group"), "{msg}");
        assert!(msg.contains("data race"), "{msg}");
    }

    #[test]
    fn cooperative_local_staging_still_compiles() {
        // The stencil-wrg-tiling shape: `toLocal(mapLcl id)` applied to the whole tile in
        // the mapWrg body. The copy is cooperative — each work item writes its own slice of
        // the shared buffer — so the ownership pass must accept it.
        let mut p = Program::new("coop_stage");
        let id = p.user_fun(UserFun::id_float());
        let copy_coop = {
            let m = p.map_lcl(0, id);
            p.to_local(m)
        };
        let consume = {
            let id2 = p.user_fun(UserFun::id_float());
            p.map_lcl(0, id2)
        };
        let group_body = p.compose(&[consume, copy_coop]);
        let wrg = p.map_wrg(0, group_body);
        let s = p.split(16usize);
        let j = p.join();
        p.with_root(
            vec![("x", Type::array(Type::float(), 64usize))],
            |p, params| {
                let split = p.apply1(s, params[0]);
                let mapped = p.apply1(wrg, split);
                p.apply1(j, mapped)
            },
        );
        let compiled = compile_program(&p, &CompilationOptions::all_optimisations())
            .expect("cooperative staging is sound and must compile");
        let source = compiled.source();
        assert!(source.contains("local float"), "{source}");
        assert!(source.contains("barrier(CLK_LOCAL_MEM_FENCE)"), "{source}");
    }

    #[test]
    fn distributed_partials_in_private_memory_are_an_ownership_violation() {
        // The two-stage shape *without* `toGlobal` on the partials: `mapGlb(reduceSeq)`
        // feeding a kernel-level reduceSeq. The per-item partial sums inherit the
        // reduction initialiser's private space, so the distributed map would write one
        // cell of each thread's own `__private` copy — the consuming reduction then reads
        // 7 uninitialised cells on a real GPU. The in-order virtual GPU masks the bug
        // (the last thread sees every partial), which is exactly why it must die at
        // compile time.
        let mut p = Program::new("two_stage_private");
        let add = p.user_fun(UserFun::add());
        let red1 = p.reduce_seq(add, 0.0);
        let glb = p.map_glb(0, red1);
        let red2 = p.reduce_seq(add, 0.0);
        let s = p.split(16usize);
        let j = p.join();
        p.with_root(
            vec![("x", Type::array(Type::float(), 64usize))],
            |p, params| {
                let split = p.apply1(s, params[0]);
                let partials = p.apply1(glb, split);
                let joined = p.apply1(j, partials);
                p.apply1(red2, joined)
            },
        );
        let err = compile_program(&p, &CompilationOptions::all_optimisations())
            .expect_err("distributed partials in private memory must be rejected");
        match &err {
            CodegenError::OwnershipViolation {
                buffer,
                writer_level,
                owner_level,
                site,
            } => {
                assert!(buffer.contains("__private"), "{buffer}");
                assert!(buffer.contains("mapGlb"), "{buffer}");
                assert_eq!(*writer_level, ParallelismLevel::WorkItem);
                assert_eq!(*owner_level, ParallelismLevel::WorkItem);
                assert!(site.contains("mapGlb"), "{site}");
            }
            other => panic!("expected OwnershipViolation, got {other:?}"),
        }
    }

    #[test]
    fn group_distributed_result_in_local_memory_is_an_ownership_violation() {
        // mapWrg(mapLcl(reduceSeq)) whose per-group results land in `__local` memory via
        // `toLocal`, consumed by a kernel-level reduction: each group's copy of the buffer
        // holds only that group's cells, so the cross-group read is garbage everywhere but
        // group 0's slice.
        let mut p = Program::new("wrg_local");
        let add = p.user_fun(UserFun::add());
        let red1 = p.reduce_seq(add, 0.0);
        let lcl = p.map_lcl(0, red1);
        let group_body = {
            let inner_split = p.split(4usize);
            let joined = p.compose(&[lcl, inner_split]);
            p.to_local(joined)
        };
        let wrg = p.map_wrg(0, group_body);
        let red2 = p.reduce_seq(add, 0.0);
        let s = p.split(16usize);
        let j = p.join();
        p.with_root(
            vec![("x", Type::array(Type::float(), 64usize))],
            |p, params| {
                let split = p.apply1(s, params[0]);
                let partials = p.apply1(wrg, split);
                let joined = p.apply1(j, partials);
                let flat = p.apply1(j, joined);
                p.apply1(red2, flat)
            },
        );
        let err = compile_program(&p, &CompilationOptions::all_optimisations())
            .expect_err("group-distributed result in local memory must be rejected");
        match &err {
            CodegenError::OwnershipViolation { buffer, .. } => {
                assert!(buffer.contains("__local"), "{buffer}");
                assert!(buffer.contains("mapWrg"), "{buffer}");
            }
            other => panic!("expected OwnershipViolation, got {other:?}"),
        }
    }

    #[test]
    fn group_uniform_sequential_staging_still_compiles() {
        // `toLocal(mapSeq id)` directly in the mapWrg body (not under mapLcl): every work
        // item writes the same values to the shared buffer — redundant, group-uniform, and
        // race-free in lock-step execution. The pass keys on the *parallelism level* of the
        // materialisation site (work-group here), so this stays accepted.
        let mut p = Program::new("uniform_stage");
        let add = p.user_fun(UserFun::add());
        let copy_lcl = p.copy_to_local();
        let red = p.reduce_seq(add, 0.0);
        let red_global = p.to_global(red);
        let group_body = p.lambda(&["tile"], |p, params| {
            let staged = p.apply1(copy_lcl, params[0]);
            p.apply1(red_global, staged)
        });
        let wrg = p.map_wrg(0, group_body);
        let s = p.split(16usize);
        p.with_root(
            vec![("x", Type::array(Type::float(), 64usize))],
            |p, params| {
                let split = p.apply1(s, params[0]);
                p.apply1(wrg, split)
            },
        );
        compile_program(&p, &CompilationOptions::all_optimisations())
            .expect("group-uniform staging is race-free and must compile");
    }
}
