//! # The Lift compiler
//!
//! This crate implements the compilation flow of Section 5 of the paper:
//!
//! 1. type analysis (provided by `lift-ir`),
//! 2. [`address_space`] — address-space inference (Algorithm 1),
//! 3. memory allocation — performed while generating code, using the inferred address spaces,
//! 4. [`view`] — construction and consumption of views for multi-dimensional array accesses,
//!    with the symbolic index simplification of Section 5.3,
//! 5. barrier elimination and control-flow simplification,
//! 6. [`codegen`] — OpenCL code generation.
//!
//! The entry point is [`compile`], which turns a Lift [`Program`](lift_ir::Program) into a
//! [`CompiledKernel`] containing the OpenCL module, the kernel parameter list and metadata.
//! The [`CompilationOptions`] select which optimisations run, mirroring the three
//! configurations compared in Figure 8 of the paper.
//!
//! ```
//! use lift_codegen::{compile, CompilationOptions};
//! use lift_ir::prelude::*;
//! use lift_arith::ArithExpr;
//!
//! // map(id) over a vector, i.e. a parallel copy.
//! let n = ArithExpr::size_var("N");
//! let mut p = Program::new("copy");
//! let id = p.user_fun(UserFun::id_float());
//! let m = p.map_glb(0, id);
//! p.with_root(vec![("x", Type::array(Type::float(), n))], |p, params| {
//!     p.apply1(m, params[0])
//! });
//! let kernel = compile(&p, &CompilationOptions::all_optimisations()).unwrap();
//! assert!(kernel.source().contains("kernel void copy"));
//! ```

pub mod address_space;
pub mod codegen;
pub mod options;
pub mod view;

pub use address_space::{
    infer_address_spaces, infer_parallelism, AddressSpaces, ParallelismLevels,
};
pub use codegen::{
    compile, compile_program, CodegenError, CompiledKernel, CompiledProgram, KernelParamInfo,
    KernelStage, TempBufferInfo,
};
pub use options::CompilationOptions;
pub use view::{resolve, AccessBuilder, Resolved, View, ViewError};
