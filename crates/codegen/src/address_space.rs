//! Address space inference (Algorithm 1 of the paper).
//!
//! Every expression of a Lift program is assigned one of the three OpenCL address spaces.
//! Scalars and literals live in private memory, array parameters in global memory, and the
//! `toGlobal` / `toLocal` / `toPrivate` wrappers override the address space the wrapped
//! function writes to. Maps and `iterate` propagate the requested space into their nested
//! function; `reduceSeq` writes where its initialiser lives.

use std::collections::HashMap;

use lift_ir::{AddressSpace, ExprId, ExprKind, FunDecl, FunDeclId, Pattern, Program};

/// The per-expression address spaces computed by [`infer_address_spaces`].
pub type AddressSpaces = HashMap<ExprId, AddressSpace>;

/// Runs address space inference over a typed program.
///
/// Follows Algorithm 1: parameters of the root lambda get private (scalars) or global
/// (arrays) memory, and the body is visited recursively with an optional `writeTo` override
/// established by the `to*` wrapper patterns.
pub fn infer_address_spaces(program: &Program) -> AddressSpaces {
    let mut spaces = AddressSpaces::new();
    let Some(root) = program.root() else {
        return spaces;
    };
    for &p in program.root_params() {
        let space = match &program.expr(p).ty {
            Some(t) if t.is_scalar() => AddressSpace::Private,
            _ => AddressSpace::Global,
        };
        spaces.insert(p, space);
    }
    let body = program.root_body();
    infer_expr(program, body, None, &mut spaces);
    let _ = root;
    spaces
}

/// Infers the address space of `expr` given the requested `write_to` override, recording it in
/// `spaces` and returning it.
fn infer_expr(
    program: &Program,
    expr: ExprId,
    write_to: Option<AddressSpace>,
    spaces: &mut AddressSpaces,
) -> AddressSpace {
    let space = match &program.expr(expr).kind {
        ExprKind::Literal(_) => AddressSpace::Private,
        ExprKind::Param { .. } => *spaces.get(&expr).unwrap_or(&AddressSpace::Global),
        ExprKind::FunCall { f, args } => {
            let arg_spaces: Vec<AddressSpace> = args
                .iter()
                .map(|a| infer_expr(program, *a, write_to, spaces))
                .collect();
            infer_call(program, *f, args, &arg_spaces, write_to, spaces)
        }
    };
    spaces.insert(expr, space);
    space
}

/// Infers the address space of calling `f` (Algorithm 1, `inferASFunCall` + the per-pattern
/// cases of `inferASExpr`).
#[allow(clippy::only_used_in_recursion)] // `write_to` threads Algorithm 1's W parameter
fn infer_call(
    program: &Program,
    f: FunDeclId,
    args: &[ExprId],
    arg_spaces: &[AddressSpace],
    write_to: Option<AddressSpace>,
    spaces: &mut AddressSpaces,
) -> AddressSpace {
    match program.decl(f) {
        FunDecl::Lambda { params, body } => {
            for (p, s) in params.iter().zip(arg_spaces) {
                spaces.insert(*p, *s);
            }
            infer_expr(program, *body, write_to, spaces)
        }
        FunDecl::UserFun(_) => {
            // A user function writes to the requested space, or to the common space of its
            // arguments, defaulting to global when they disagree.
            write_to.unwrap_or_else(|| {
                let first = arg_spaces.first().copied().unwrap_or(AddressSpace::Private);
                if arg_spaces.iter().all(|s| *s == first) {
                    first
                } else {
                    AddressSpace::Global
                }
            })
        }
        FunDecl::Pattern(pattern) => match pattern {
            Pattern::ToGlobal { f } => infer_call(
                program,
                *f,
                args,
                arg_spaces,
                Some(AddressSpace::Global),
                spaces,
            ),
            Pattern::ToLocal { f } => infer_call(
                program,
                *f,
                args,
                arg_spaces,
                Some(AddressSpace::Local),
                spaces,
            ),
            Pattern::ToPrivate { f } => infer_call(
                program,
                *f,
                args,
                arg_spaces,
                Some(AddressSpace::Private),
                spaces,
            ),
            Pattern::ReduceSeq { f } => {
                // The reduction writes into the memory of its initialiser (args[0]) unless a
                // `to*` wrapper requested a space explicitly — `toGlobal(reduceSeq(…))` is
                // how a work item publishes its partial result to global memory for a
                // following device-wide stage.
                let init_space = arg_spaces.first().copied().unwrap_or(AddressSpace::Private);
                let target = write_to.unwrap_or(init_space);
                let elem_spaces = vec![init_space, *arg_spaces.get(1).unwrap_or(&init_space)];
                infer_call(program, *f, args, &elem_spaces, Some(target), spaces);
                target
            }
            Pattern::MapSeq { f }
            | Pattern::MapGlb { f, .. }
            | Pattern::MapWrg { f, .. }
            | Pattern::MapLcl { f, .. }
            | Pattern::MapVec { f }
            | Pattern::Iterate { f, .. } => {
                infer_call(program, *f, args, arg_spaces, write_to, spaces)
            }
            // Data-layout patterns keep the address space of their argument.
            _ => arg_spaces.first().copied().unwrap_or(AddressSpace::Private),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_arith::ArithExpr;
    use lift_ir::{Type, UserFun};

    fn float_array(n: impl Into<ArithExpr>) -> Type {
        Type::array(Type::float(), n)
    }

    #[test]
    fn parameters_follow_the_opencl_rules() {
        let mut p = Program::new("t");
        let id = p.user_fun(UserFun::id_float());
        let m = p.map_glb(0, id);
        p.with_root(
            vec![("x", float_array(16usize)), ("alpha", Type::float())],
            |p, params| p.apply1(m, params[0]),
        );
        lift_ir::infer_types(&mut p).unwrap();
        let spaces = infer_address_spaces(&p);
        assert_eq!(spaces[&p.root_params()[0]], AddressSpace::Global);
        assert_eq!(spaces[&p.root_params()[1]], AddressSpace::Private);
    }

    #[test]
    fn to_local_overrides_the_write_space() {
        let mut p = Program::new("t");
        let idf = p.user_fun(UserFun::id_float());
        let ml = p.map_lcl(0, idf);
        let copy_local = p.to_local(ml);
        let wg = p.map_wrg(0, copy_local);
        let s = p.split(16usize);
        p.with_root(vec![("x", float_array(64usize))], |p, params| {
            let split = p.apply1(s, params[0]);
            p.apply1(wg, split)
        });
        lift_ir::infer_types(&mut p).unwrap();
        let spaces = infer_address_spaces(&p);
        assert_eq!(spaces[&p.root_body()], AddressSpace::Local);
    }

    #[test]
    fn plain_map_keeps_global_space() {
        let mut p = Program::new("t");
        let id = p.user_fun(UserFun::id_float());
        let m = p.map_glb(0, id);
        p.with_root(vec![("x", float_array(16usize))], |p, params| {
            p.apply1(m, params[0])
        });
        lift_ir::infer_types(&mut p).unwrap();
        let spaces = infer_address_spaces(&p);
        assert_eq!(spaces[&p.root_body()], AddressSpace::Global);
    }

    #[test]
    fn reduce_writes_where_its_initialiser_lives() {
        let mut p = Program::new("t");
        let add = p.user_fun(UserFun::add());
        let r = p.reduce_seq(add, 0.0);
        p.with_root(vec![("x", float_array(16usize))], |p, params| {
            p.apply1(r, params[0])
        });
        lift_ir::infer_types(&mut p).unwrap();
        let spaces = infer_address_spaces(&p);
        // The literal initialiser lives in private memory, so the reduction result does too.
        assert_eq!(spaces[&p.root_body()], AddressSpace::Private);
    }

    #[test]
    fn to_global_forces_global_even_inside_local_pipelines() {
        let mut p = Program::new("t");
        let idf = p.user_fun(UserFun::id_float());
        let ml = p.map_lcl(0, idf);
        let copy_global = p.to_global(ml);
        let wg = p.map_wrg(0, copy_global);
        let s = p.split(16usize);
        p.with_root(vec![("x", float_array(64usize))], |p, params| {
            let split = p.apply1(s, params[0]);
            p.apply1(wg, split)
        });
        lift_ir::infer_types(&mut p).unwrap();
        let spaces = infer_address_spaces(&p);
        assert_eq!(spaces[&p.root_body()], AddressSpace::Global);
    }

    #[test]
    fn to_global_overrides_a_reduction_write_space() {
        // mapGlb(toGlobal(reduceSeq(add, 0))) over split chunks: each work item publishes
        // its partial sum to global memory (the producer half of a two-stage reduction).
        let mut p = Program::new("t");
        let add = p.user_fun(UserFun::add());
        let red = p.reduce_seq(add, 0.0);
        let red_global = p.to_global(red);
        let glb = p.map_glb(0, red_global);
        let s = p.split(16usize);
        p.with_root(vec![("x", float_array(64usize))], |p, params| {
            let split = p.apply1(s, params[0]);
            p.apply1(glb, split)
        });
        lift_ir::infer_types(&mut p).unwrap();
        let spaces = infer_address_spaces(&p);
        assert_eq!(spaces[&p.root_body()], AddressSpace::Global);
    }

    #[test]
    fn unwrapped_reduction_still_writes_where_its_initialiser_lives() {
        let mut p = Program::new("t");
        let add = p.user_fun(UserFun::add());
        let red = p.reduce_seq(add, 0.0);
        let glb = p.map_glb(0, red);
        let s = p.split(16usize);
        p.with_root(vec![("x", float_array(64usize))], |p, params| {
            let split = p.apply1(s, params[0]);
            p.apply1(glb, split)
        });
        lift_ir::infer_types(&mut p).unwrap();
        let spaces = infer_address_spaces(&p);
        assert_eq!(spaces[&p.root_body()], AddressSpace::Private);
    }

    #[test]
    fn layout_patterns_keep_their_argument_space() {
        let mut p = Program::new("t");
        let s = p.split(8usize);
        p.with_root(vec![("x", float_array(64usize))], |p, params| {
            p.apply1(s, params[0])
        });
        lift_ir::infer_types(&mut p).unwrap();
        let spaces = infer_address_spaces(&p);
        assert_eq!(spaces[&p.root_body()], AddressSpace::Global);
    }
}
