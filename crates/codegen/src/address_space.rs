//! Address space inference (Algorithm 1 of the paper) and the parallelism-ownership pass
//! built on top of it.
//!
//! Every expression of a Lift program is assigned one of the three OpenCL address spaces.
//! Scalars and literals live in private memory, array parameters in global memory, and the
//! `toGlobal` / `toLocal` / `toPrivate` wrappers override the address space the wrapped
//! function writes to. Maps and `iterate` propagate the requested space into their nested
//! function; `reduceSeq` writes where its initialiser lives.
//!
//! A second walk ([`infer_parallelism`]) annotates every expression with the
//! [`ParallelismLevel`] of its evaluation site: work-group level for the kernel top level
//! and `mapWrg` bodies (executed uniformly by every work item of a group), work-item level
//! inside `mapLcl`/`mapGlb` bodies (where data varies per work item), and sequential lanes
//! below that. The generator consults these levels wherever it allocates a buffer: a
//! group-shared `__local` array whose producing code runs at work-item level would be
//! written wholesale by *every* work item with work-item-varying data — a data race — and
//! is rejected with `CodegenError::OwnershipViolation` instead of being emitted.

use std::collections::HashMap;

use lift_ir::{
    AddressSpace, ExprId, ExprKind, FunDecl, FunDeclId, ParallelismLevel, Pattern, Program,
};

/// The per-expression address spaces computed by [`infer_address_spaces`].
pub type AddressSpaces = HashMap<ExprId, AddressSpace>;

/// The per-expression parallelism levels computed by [`infer_parallelism`].
pub type ParallelismLevels = HashMap<ExprId, ParallelismLevel>;

/// Runs address space inference over a typed program.
///
/// Follows Algorithm 1: parameters of the root lambda get private (scalars) or global
/// (arrays) memory, and the body is visited recursively with an optional `writeTo` override
/// established by the `to*` wrapper patterns.
pub fn infer_address_spaces(program: &Program) -> AddressSpaces {
    let mut spaces = AddressSpaces::new();
    let Some(root) = program.root() else {
        return spaces;
    };
    for &p in program.root_params() {
        let space = match &program.expr(p).ty {
            Some(t) if t.is_scalar() => AddressSpace::Private,
            _ => AddressSpace::Global,
        };
        spaces.insert(p, space);
    }
    let body = program.root_body();
    infer_expr(program, body, None, &mut spaces);
    let _ = root;
    spaces
}

/// Infers the address space of `expr` given the requested `write_to` override, recording it in
/// `spaces` and returning it.
fn infer_expr(
    program: &Program,
    expr: ExprId,
    write_to: Option<AddressSpace>,
    spaces: &mut AddressSpaces,
) -> AddressSpace {
    let space = match &program.expr(expr).kind {
        ExprKind::Literal(_) => AddressSpace::Private,
        ExprKind::Param { .. } => *spaces.get(&expr).unwrap_or(&AddressSpace::Global),
        ExprKind::FunCall { f, args } => {
            let arg_spaces: Vec<AddressSpace> = args
                .iter()
                .map(|a| infer_expr(program, *a, write_to, spaces))
                .collect();
            infer_call(program, *f, args, &arg_spaces, write_to, spaces)
        }
    };
    spaces.insert(expr, space);
    space
}

/// Infers the address space of calling `f` (Algorithm 1, `inferASFunCall` + the per-pattern
/// cases of `inferASExpr`).
#[allow(clippy::only_used_in_recursion)] // `write_to` threads Algorithm 1's W parameter
fn infer_call(
    program: &Program,
    f: FunDeclId,
    args: &[ExprId],
    arg_spaces: &[AddressSpace],
    write_to: Option<AddressSpace>,
    spaces: &mut AddressSpaces,
) -> AddressSpace {
    match program.decl(f) {
        FunDecl::Lambda { params, body } => {
            for (p, s) in params.iter().zip(arg_spaces) {
                spaces.insert(*p, *s);
            }
            infer_expr(program, *body, write_to, spaces)
        }
        FunDecl::UserFun(_) => {
            // A user function writes to the requested space, or to the common space of its
            // arguments, defaulting to global when they disagree.
            write_to.unwrap_or_else(|| {
                let first = arg_spaces.first().copied().unwrap_or(AddressSpace::Private);
                if arg_spaces.iter().all(|s| *s == first) {
                    first
                } else {
                    AddressSpace::Global
                }
            })
        }
        FunDecl::Pattern(pattern) => match pattern {
            Pattern::ToGlobal { f } => infer_call(
                program,
                *f,
                args,
                arg_spaces,
                Some(AddressSpace::Global),
                spaces,
            ),
            Pattern::ToLocal { f } => infer_call(
                program,
                *f,
                args,
                arg_spaces,
                Some(AddressSpace::Local),
                spaces,
            ),
            Pattern::ToPrivate { f } => infer_call(
                program,
                *f,
                args,
                arg_spaces,
                Some(AddressSpace::Private),
                spaces,
            ),
            Pattern::ReduceSeq { f } => {
                // The reduction writes into the memory of its initialiser (args[0]) unless a
                // `to*` wrapper requested a space explicitly — `toGlobal(reduceSeq(…))` is
                // how a work item publishes its partial result to global memory for a
                // following device-wide stage.
                let init_space = arg_spaces.first().copied().unwrap_or(AddressSpace::Private);
                let target = write_to.unwrap_or(init_space);
                let elem_spaces = vec![init_space, *arg_spaces.get(1).unwrap_or(&init_space)];
                infer_call(program, *f, args, &elem_spaces, Some(target), spaces);
                target
            }
            Pattern::MapSeq { f }
            | Pattern::MapGlb { f, .. }
            | Pattern::MapWrg { f, .. }
            | Pattern::MapLcl { f, .. }
            | Pattern::MapVec { f }
            | Pattern::Iterate { f, .. } => {
                infer_call(program, *f, args, arg_spaces, write_to, spaces)
            }
            // Data-layout patterns keep the address space of their argument.
            _ => arg_spaces.first().copied().unwrap_or(AddressSpace::Private),
        },
    }
}

/// Runs the parallelism-ownership walk over a typed program: every expression is annotated
/// with the [`ParallelismLevel`] of the site where its value is produced.
///
/// The walk mirrors [`infer_address_spaces`]: arguments are evaluated at the level of the
/// call that consumes them, `mapLcl`/`mapGlb` bodies execute at work-item level,
/// `mapWrg` bodies stay at work-group level (the body runs uniformly across the group's
/// work items until a work-item map partitions it), and sequential patterns
/// (`mapSeq`/`mapVec`/`reduceSeq`/`iterate`) inside a work-item map descend to a
/// sequential lane. The memory-placement wrappers are transparent, exactly as in address
/// space inference.
pub fn infer_parallelism(program: &Program) -> ParallelismLevels {
    let mut levels = ParallelismLevels::new();
    if program.root().is_none() {
        return levels;
    }
    for &p in program.root_params() {
        levels.insert(p, ParallelismLevel::WorkGroup);
    }
    level_expr(
        program,
        program.root_body(),
        ParallelismLevel::WorkGroup,
        &mut levels,
    );
    levels
}

fn level_expr(
    program: &Program,
    expr: ExprId,
    level: ParallelismLevel,
    levels: &mut ParallelismLevels,
) {
    levels.insert(expr, level);
    if let ExprKind::FunCall { f, args } = &program.expr(expr).kind {
        for a in args {
            level_expr(program, *a, level, levels);
        }
        level_call(program, *f, level, levels);
    }
}

fn level_call(
    program: &Program,
    f: FunDeclId,
    level: ParallelismLevel,
    levels: &mut ParallelismLevels,
) {
    match program.decl(f) {
        FunDecl::Lambda { params, body } => {
            for p in params {
                // A parameter's binding site; occurrences re-annotate with their own
                // context when visited.
                levels.entry(*p).or_insert(level);
            }
            level_expr(program, *body, level, levels);
        }
        FunDecl::UserFun(_) => {}
        FunDecl::Pattern(pattern) => match pattern {
            Pattern::ToGlobal { f } | Pattern::ToLocal { f } | Pattern::ToPrivate { f } => {
                level_call(program, *f, level, levels);
            }
            Pattern::MapGlb { f, .. } | Pattern::MapLcl { f, .. } => {
                level_call(program, *f, ParallelismLevel::WorkItem, levels);
            }
            Pattern::MapWrg { f, .. } => {
                // A work-group body is still group-uniform; only a nested work-item map
                // makes data vary per work item. (A mapWrg under a work-item map would be
                // ill-formed; keep the finer level in that case rather than masking it.)
                let inner = if level == ParallelismLevel::WorkGroup {
                    ParallelismLevel::WorkGroup
                } else {
                    level
                };
                level_call(program, *f, inner, levels);
            }
            Pattern::MapSeq { f }
            | Pattern::MapVec { f }
            | Pattern::ReduceSeq { f }
            | Pattern::Iterate { f, .. } => {
                let inner = if level.is_work_item() {
                    ParallelismLevel::Sequential
                } else {
                    level
                };
                level_call(program, *f, inner, levels);
            }
            // Data-layout patterns have no nested code.
            _ => {}
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_arith::ArithExpr;
    use lift_ir::{Type, UserFun};

    fn float_array(n: impl Into<ArithExpr>) -> Type {
        Type::array(Type::float(), n)
    }

    #[test]
    fn parameters_follow_the_opencl_rules() {
        let mut p = Program::new("t");
        let id = p.user_fun(UserFun::id_float());
        let m = p.map_glb(0, id);
        p.with_root(
            vec![("x", float_array(16usize)), ("alpha", Type::float())],
            |p, params| p.apply1(m, params[0]),
        );
        lift_ir::infer_types(&mut p).unwrap();
        let spaces = infer_address_spaces(&p);
        assert_eq!(spaces[&p.root_params()[0]], AddressSpace::Global);
        assert_eq!(spaces[&p.root_params()[1]], AddressSpace::Private);
    }

    #[test]
    fn to_local_overrides_the_write_space() {
        let mut p = Program::new("t");
        let idf = p.user_fun(UserFun::id_float());
        let ml = p.map_lcl(0, idf);
        let copy_local = p.to_local(ml);
        let wg = p.map_wrg(0, copy_local);
        let s = p.split(16usize);
        p.with_root(vec![("x", float_array(64usize))], |p, params| {
            let split = p.apply1(s, params[0]);
            p.apply1(wg, split)
        });
        lift_ir::infer_types(&mut p).unwrap();
        let spaces = infer_address_spaces(&p);
        assert_eq!(spaces[&p.root_body()], AddressSpace::Local);
    }

    #[test]
    fn plain_map_keeps_global_space() {
        let mut p = Program::new("t");
        let id = p.user_fun(UserFun::id_float());
        let m = p.map_glb(0, id);
        p.with_root(vec![("x", float_array(16usize))], |p, params| {
            p.apply1(m, params[0])
        });
        lift_ir::infer_types(&mut p).unwrap();
        let spaces = infer_address_spaces(&p);
        assert_eq!(spaces[&p.root_body()], AddressSpace::Global);
    }

    #[test]
    fn reduce_writes_where_its_initialiser_lives() {
        let mut p = Program::new("t");
        let add = p.user_fun(UserFun::add());
        let r = p.reduce_seq(add, 0.0);
        p.with_root(vec![("x", float_array(16usize))], |p, params| {
            p.apply1(r, params[0])
        });
        lift_ir::infer_types(&mut p).unwrap();
        let spaces = infer_address_spaces(&p);
        // The literal initialiser lives in private memory, so the reduction result does too.
        assert_eq!(spaces[&p.root_body()], AddressSpace::Private);
    }

    #[test]
    fn to_global_forces_global_even_inside_local_pipelines() {
        let mut p = Program::new("t");
        let idf = p.user_fun(UserFun::id_float());
        let ml = p.map_lcl(0, idf);
        let copy_global = p.to_global(ml);
        let wg = p.map_wrg(0, copy_global);
        let s = p.split(16usize);
        p.with_root(vec![("x", float_array(64usize))], |p, params| {
            let split = p.apply1(s, params[0]);
            p.apply1(wg, split)
        });
        lift_ir::infer_types(&mut p).unwrap();
        let spaces = infer_address_spaces(&p);
        assert_eq!(spaces[&p.root_body()], AddressSpace::Global);
    }

    #[test]
    fn to_global_overrides_a_reduction_write_space() {
        // mapGlb(toGlobal(reduceSeq(add, 0))) over split chunks: each work item publishes
        // its partial sum to global memory (the producer half of a two-stage reduction).
        let mut p = Program::new("t");
        let add = p.user_fun(UserFun::add());
        let red = p.reduce_seq(add, 0.0);
        let red_global = p.to_global(red);
        let glb = p.map_glb(0, red_global);
        let s = p.split(16usize);
        p.with_root(vec![("x", float_array(64usize))], |p, params| {
            let split = p.apply1(s, params[0]);
            p.apply1(glb, split)
        });
        lift_ir::infer_types(&mut p).unwrap();
        let spaces = infer_address_spaces(&p);
        assert_eq!(spaces[&p.root_body()], AddressSpace::Global);
    }

    #[test]
    fn unwrapped_reduction_still_writes_where_its_initialiser_lives() {
        let mut p = Program::new("t");
        let add = p.user_fun(UserFun::add());
        let red = p.reduce_seq(add, 0.0);
        let glb = p.map_glb(0, red);
        let s = p.split(16usize);
        p.with_root(vec![("x", float_array(64usize))], |p, params| {
            let split = p.apply1(s, params[0]);
            p.apply1(glb, split)
        });
        lift_ir::infer_types(&mut p).unwrap();
        let spaces = infer_address_spaces(&p);
        assert_eq!(spaces[&p.root_body()], AddressSpace::Private);
    }

    #[test]
    fn layout_patterns_keep_their_argument_space() {
        let mut p = Program::new("t");
        let s = p.split(8usize);
        p.with_root(vec![("x", float_array(64usize))], |p, params| {
            p.apply1(s, params[0])
        });
        lift_ir::infer_types(&mut p).unwrap();
        let spaces = infer_address_spaces(&p);
        assert_eq!(spaces[&p.root_body()], AddressSpace::Global);
    }

    #[test]
    fn parallelism_levels_follow_the_map_hierarchy() {
        use lift_ir::ParallelismLevel;

        // mapWrg⁰(λ tile. mapLcl⁰(λ x. toPrivate(id)(x))(tile)) ∘ split 8: the mapWrg body
        // runs once per group, the mapLcl body once per work item, and anything nested under
        // the work item (here the staged copy's argument) is a sequential lane.
        let mut p = Program::new("t");
        let id = p.user_fun(UserFun::id_float());
        let seq_copy = p.map_seq(id);
        let lcl = p.map_lcl(0, seq_copy);
        let inner_split = p.split(4usize);
        let group_body = p.compose(&[lcl, inner_split]);
        let wrg = p.map_wrg(0, group_body);
        let s = p.split(8usize);
        p.with_root(vec![("x", float_array(64usize))], |p, params| {
            let split = p.apply1(s, params[0]);
            p.apply1(wrg, split)
        });
        lift_ir::infer_types(&mut p).unwrap();
        let levels = infer_parallelism(&p);

        // The root body (the mapWrg call itself) runs at work-group level.
        assert_eq!(levels[&p.root_body()], ParallelismLevel::WorkGroup);
        // The mapWrg's lambda parameter (one tile per group) is work-group owned; the
        // mapLcl's element parameter is work-item owned.
        let group_tile = match p.decl(group_body) {
            lift_ir::FunDecl::Lambda { params, .. } => params[0],
            other => panic!("expected lambda, got {other:?}"),
        };
        assert_eq!(levels[&group_tile], ParallelismLevel::WorkGroup);
        // Every expression got a level.
        for (_, level) in levels.iter() {
            let _ = level.label();
        }
        // Work-item and sequential lanes both count as per-work-item writers; the
        // work-group level does not.
        assert!(ParallelismLevel::WorkItem.is_work_item());
        assert!(ParallelismLevel::Sequential.is_work_item());
        assert!(!ParallelismLevel::WorkGroup.is_work_item());
    }
}
