//! Compilation options.
//!
//! The evaluation of the paper (Section 7.4, Figure 8) compares three optimisation levels:
//! no optimisations, barrier elimination + control-flow simplification, and additionally the
//! array-access simplification. [`CompilationOptions`] exposes exactly those toggles plus the
//! launch configuration the kernel is specialised for (Lift kernels are compiled for a known
//! work-group size, which is what enables the control-flow simplification of Section 5.5).

use lift_vgpu::DeviceProfile;

/// Which code-generator optimisations are enabled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompilationOptions {
    /// Simplify array index expressions with the arithmetic rules of Section 5.3.
    pub array_access_simplification: bool,
    /// Remove barriers that are provably unnecessary (Section 5.4).
    pub barrier_elimination: bool,
    /// Remove or simplify loops whose trip count is statically known (Section 5.5).
    pub control_flow_simplification: bool,
    /// The local (work-group) size the kernel is specialised for.
    pub local_size: [usize; 3],
    /// The global size the kernel is specialised for.
    pub global_size: [usize; 3],
}

impl CompilationOptions {
    /// All optimisations enabled — the configuration whose output the paper compares against
    /// hand-written OpenCL (the dark-red bars of Figure 8).
    pub fn all_optimisations() -> CompilationOptions {
        CompilationOptions {
            array_access_simplification: true,
            barrier_elimination: true,
            control_flow_simplification: true,
            local_size: [128, 1, 1],
            global_size: [1024, 1, 1],
        }
    }

    /// No optimisations (the "None" bars of Figure 8).
    pub fn none() -> CompilationOptions {
        CompilationOptions {
            array_access_simplification: false,
            barrier_elimination: false,
            control_flow_simplification: false,
            local_size: [128, 1, 1],
            global_size: [1024, 1, 1],
        }
    }

    /// Barrier elimination and control-flow simplification but no array-access simplification
    /// (the middle bars of Figure 8).
    pub fn without_array_access_simplification() -> CompilationOptions {
        CompilationOptions {
            array_access_simplification: false,
            ..Self::all_optimisations()
        }
    }

    /// All optimisations, with a launch configuration derived from the device instead of the
    /// historical hard-coded `[128,1,1]`/`[1024,1,1]`: one full-occupancy work group per
    /// compute unit, capped by the device's work-group limit. This is the *default* starting
    /// point only — `lift-tuner` searches the launch space per device and is the single
    /// source of tuned launch configurations.
    pub fn for_device(device: &DeviceProfile) -> CompilationOptions {
        let local = device
            .max_work_group_size
            .min(device.max_work_item_sizes[0])
            .clamp(1, 128);
        let global = local * device.compute_units.max(1);
        CompilationOptions {
            array_access_simplification: true,
            barrier_elimination: true,
            control_flow_simplification: true,
            local_size: [local, 1, 1],
            global_size: [global, 1, 1],
        }
    }

    /// Sets the launch configuration (builder style).
    pub fn with_launch(mut self, global: [usize; 3], local: [usize; 3]) -> CompilationOptions {
        self.global_size = global;
        self.local_size = local;
        self
    }

    /// Sets a one-dimensional launch configuration.
    pub fn with_launch_1d(self, global: usize, local: usize) -> CompilationOptions {
        self.with_launch([global, 1, 1], [local, 1, 1])
    }

    /// Sets a two-dimensional launch configuration.
    pub fn with_launch_2d(
        self,
        global: (usize, usize),
        local: (usize, usize),
    ) -> CompilationOptions {
        self.with_launch([global.0, global.1, 1], [local.0, local.1, 1])
    }

    /// Number of work groups per dimension.
    pub fn num_groups(&self) -> [usize; 3] {
        [
            self.global_size[0] / self.local_size[0].max(1),
            self.global_size[1] / self.local_size[1].max(1),
            self.global_size[2] / self.local_size[2].max(1),
        ]
    }

    /// A short label describing the enabled optimisations, used by the benchmark harness.
    pub fn label(&self) -> &'static str {
        match (
            self.array_access_simplification,
            self.barrier_elimination || self.control_flow_simplification,
        ) {
            (true, _) => "barrier+cf+array-simplification",
            (false, true) => "barrier+cf",
            (false, false) => "none",
        }
    }
}

impl Default for CompilationOptions {
    fn default() -> Self {
        Self::all_optimisations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_figure8_levels() {
        assert!(CompilationOptions::all_optimisations().array_access_simplification);
        assert!(!CompilationOptions::none().barrier_elimination);
        let mid = CompilationOptions::without_array_access_simplification();
        assert!(!mid.array_access_simplification);
        assert!(mid.barrier_elimination && mid.control_flow_simplification);
    }

    #[test]
    fn labels_are_distinct() {
        assert_eq!(
            CompilationOptions::all_optimisations().label(),
            "barrier+cf+array-simplification"
        );
        assert_eq!(
            CompilationOptions::without_array_access_simplification().label(),
            "barrier+cf"
        );
        assert_eq!(CompilationOptions::none().label(), "none");
    }

    #[test]
    fn for_device_respects_the_device_limits() {
        for device in [DeviceProfile::nvidia(), DeviceProfile::amd()] {
            let o = CompilationOptions::for_device(&device);
            assert!(o.array_access_simplification);
            let launch = lift_vgpu::LaunchConfig {
                global: o.global_size,
                local: o.local_size,
            };
            assert_eq!(device.validate_launch(&launch), Ok(()));
            // One work group per compute unit.
            assert_eq!(o.num_groups()[0], device.compute_units);
        }
    }

    #[test]
    fn launch_builders() {
        let o = CompilationOptions::all_optimisations().with_launch_1d(4096, 256);
        assert_eq!(o.global_size, [4096, 1, 1]);
        assert_eq!(o.num_groups(), [16, 1, 1]);
        let o = CompilationOptions::all_optimisations().with_launch_2d((64, 32), (16, 8));
        assert_eq!(o.num_groups(), [4, 4, 1]);
    }
}
