//! End-to-end tests: Lift programs are compiled to OpenCL, executed on the virtual GPU, and
//! the results are compared against the reference interpreter.

use lift_arith::{ArithExpr, Environment};
use lift_codegen::{compile, CompilationOptions, CompiledKernel};
use lift_interp::{evaluate_with_sizes, Value};
use lift_ir::prelude::*;
use lift_vgpu::{ExecutionRequest, LaunchConfig, LaunchResult};

/// Launches a compiled kernel with the given input arrays and size bindings.
fn run_kernel(
    kernel: &CompiledKernel,
    inputs: &[Vec<f32>],
    sizes: &Environment,
    config: LaunchConfig,
) -> (Vec<f32>, LaunchResult) {
    let (args, buffer_index) = kernel.bind_args(inputs, sizes).expect("arguments bind");
    let result = ExecutionRequest::new(&kernel.module)
        .launch(&kernel.kernel_name, config, args)
        .expect("kernel executes");
    (result.buffers[buffer_index].clone(), result)
}

fn assert_close(actual: &[f32], expected: &[f32]) {
    assert_eq!(actual.len(), expected.len(), "length mismatch");
    for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
        assert!(
            (a - e).abs() <= 1e-3 * (1.0 + e.abs()),
            "element {i}: got {a}, expected {e}"
        );
    }
}

// ------------------------------------------------------------------------ simple copies

#[test]
fn map_glb_id_copies_the_input() {
    let n = ArithExpr::size_var("N");
    let mut p = Program::new("copy");
    let id = p.user_fun(UserFun::id_float());
    let m = p.map_glb(0, id);
    p.with_root(vec![("x", Type::array(Type::float(), n))], |p, params| {
        p.apply1(m, params[0])
    });

    let options = CompilationOptions::all_optimisations().with_launch_1d(64, 16);
    let kernel = compile(&p, &options).expect("compiles");
    assert!(kernel.source().contains("kernel void copy"));

    let input: Vec<f32> = (0..64).map(|i| i as f32).collect();
    let sizes = Environment::new().bind("N", 64);
    let (out, _) = run_kernel(
        &kernel,
        std::slice::from_ref(&input),
        &sizes,
        LaunchConfig::d1(64, 16),
    );
    assert_close(&out, &input);
}

#[test]
fn zipped_multiplication_matches_the_interpreter() {
    let n = ArithExpr::size_var("N");
    let mut p = Program::new("mul");
    let mult = p.user_fun(UserFun::mult_pair());
    let m = p.map_glb(0, mult);
    let z = p.zip2();
    p.with_root(
        vec![
            ("x", Type::array(Type::float(), n.clone())),
            ("y", Type::array(Type::float(), n)),
        ],
        |p, params| {
            let zipped = p.apply(z, [params[0], params[1]]);
            p.apply1(m, zipped)
        },
    );

    let x: Vec<f32> = (0..128).map(|i| (i % 9) as f32).collect();
    let y: Vec<f32> = (0..128).map(|i| (i % 5) as f32 * 0.25).collect();
    let sizes = Environment::new().bind("N", 128);

    let expected = evaluate_with_sizes(
        &p,
        &[Value::from_f32_slice(&x), Value::from_f32_slice(&y)],
        &sizes,
    )
    .expect("interpreter")
    .flatten_f32();

    let options = CompilationOptions::all_optimisations().with_launch_1d(128, 32);
    let kernel = compile(&p, &options).expect("compiles");
    let (out, _) = run_kernel(
        &kernel,
        &[x.clone(), y.clone()],
        &sizes,
        LaunchConfig::d1(128, 32),
    );
    assert_close(&out, &expected);
}

// ------------------------------------------------------------------------ work-group pipelines

#[test]
fn split_map_wrg_map_lcl_join_pipeline() {
    // join . mapWrg(mapLcl(id)) . split 32 — a blocked parallel copy.
    let n = ArithExpr::size_var("N");
    let mut p = Program::new("blocked_copy");
    let id = p.user_fun(UserFun::id_float());
    let ml = p.map_lcl(0, id);
    let wg = p.map_wrg(0, ml);
    let s = p.split(32usize);
    let j = p.join();
    p.with_root(vec![("x", Type::array(Type::float(), n))], |p, params| {
        let split = p.apply1(s, params[0]);
        let mapped = p.apply1(wg, split);
        p.apply1(j, mapped)
    });

    let input: Vec<f32> = (0..256).map(|i| i as f32 * 0.5).collect();
    let sizes = Environment::new().bind("N", 256);
    let options = CompilationOptions::all_optimisations().with_launch_1d(256, 32);
    let kernel = compile(&p, &options).expect("compiles");
    let (out, _) = run_kernel(
        &kernel,
        std::slice::from_ref(&input),
        &sizes,
        LaunchConfig::d1(256, 32),
    );
    assert_close(&out, &input);
}

#[test]
fn per_work_group_reduction() {
    // join . mapWrg(toGlobal(mapLcl(mapSeq(id))) . split 1 . reduce-per-chunk) . split 64
    // Simplified: each work group reduces its 64-element chunk with a single local thread
    // per chunk of 4 and a sequential reduce.
    let n = ArithExpr::size_var("N");
    let mut p = Program::new("partial_sum");
    let add = p.user_fun(UserFun::add());
    let red = p.reduce_seq(add, 0.0);
    let copy_local = p.copy_to_local();
    let per_thread = p.compose(&[copy_local, red]);
    let ml = p.map_lcl(0, per_thread);
    let split4 = p.split(4usize);
    let j_inner = p.join();
    let inner = p.compose(&[j_inner, ml, split4]);
    let wg = p.map_wrg(0, inner);
    let split64 = p.split(64usize);
    let j = p.join();
    p.with_root(vec![("x", Type::array(Type::float(), n))], |p, params| {
        let split = p.apply1(split64, params[0]);
        let mapped = p.apply1(wg, split);
        p.apply1(j, mapped)
    });

    let input: Vec<f32> = (0..256).map(|i| (i % 7) as f32).collect();
    let sizes = Environment::new().bind("N", 256);
    let expected = evaluate_with_sizes(&p, &[Value::from_f32_slice(&input)], &sizes)
        .unwrap()
        .flatten_f32();

    let options = CompilationOptions::all_optimisations().with_launch_1d(64, 16);
    let kernel = compile(&p, &options).expect("compiles");
    let (out, _) = run_kernel(&kernel, &[input], &sizes, LaunchConfig::d1(64, 16));
    assert_close(&out, &expected);
}

// ------------------------------------------------------------------------ layout patterns

#[test]
fn gather_transpose_of_a_matrix() {
    // Matrix transposition expressed as in Section 3.2:
    // split N . gather(stride) . join, followed by a copy to make it a computation.
    let n = 8usize;
    let m = 12usize;
    let mut p = Program::new("transpose");
    let id = p.user_fun(UserFun::id_float());
    let ml = p.map_lcl(0, id);
    let wg = p.map_wrg(0, ml);
    let split_rows = p.split(n);
    let reorder = Reorder::Stride(ArithExpr::cst(n as i64));
    let g = p.gather(reorder);
    let j = p.join();
    p.with_root(
        vec![("x", Type::array(Type::array(Type::float(), m), n))],
        |p, params| {
            let joined = p.apply1(j, params[0]);
            let gathered = p.apply1(g, joined);
            let split = p.apply1(split_rows, gathered);
            p.apply1(wg, split)
        },
    );

    let data: Vec<f32> = (0..n * m).map(|i| i as f32).collect();
    let sizes = Environment::new();
    let expected = evaluate_with_sizes(&p, &[Value::from_f32_matrix(&data, n, m)], &sizes)
        .unwrap()
        .flatten_f32();
    // Sanity: the interpreter really transposes.
    assert_eq!(expected[0], 0.0);
    assert_eq!(expected[1], (m) as f32 * 1.0);

    let options = CompilationOptions::all_optimisations().with_launch_1d(96, 8);
    let kernel = compile(&p, &options).expect("compiles");
    let (out, _) = run_kernel(&kernel, &[data], &sizes, LaunchConfig::d1(96, 8));
    assert_close(&out, &expected);
}

#[test]
fn slide_based_stencil() {
    // mapGlb(reduceSeq(add, 0)) . slide(3, 1): a 3-point moving sum.
    let n = 64usize;
    let mut p = Program::new("stencil3");
    let add = p.user_fun(UserFun::add());
    let red = p.reduce_seq(add, 0.0);
    let m = p.map_glb(0, red);
    let j = p.join();
    let slide = p.slide(3usize, 1usize);
    p.with_root(vec![("x", Type::array(Type::float(), n))], |p, params| {
        let windows = p.apply1(slide, params[0]);
        let sums = p.apply1(m, windows);
        p.apply1(j, sums)
    });

    let input: Vec<f32> = (0..n).map(|i| (i % 11) as f32).collect();
    let sizes = Environment::new();
    let expected = evaluate_with_sizes(&p, &[Value::from_f32_slice(&input)], &sizes)
        .unwrap()
        .flatten_f32();
    assert_eq!(expected.len(), n - 2);

    let options = CompilationOptions::all_optimisations().with_launch_1d(62, 31);
    let kernel = compile(&p, &options).expect("compiles");
    let (out, _) = run_kernel(&kernel, &[input], &sizes, LaunchConfig::d1(62, 31));
    assert_close(&out, &expected);
}

// ------------------------------------------------------------------------ the Listing 1 kernel

fn listing1_dot_product(n: usize) -> Program {
    let mut p = Program::new("partialDot");
    let mult_add = p.user_fun(UserFun::mult_and_sum_up_pair());
    let add = p.user_fun(UserFun::add());

    let red1 = p.reduce_seq(mult_add, 0.0);
    let copy_l1 = p.copy_to_local();
    let step1_f = p.compose(&[copy_l1, red1]);
    let step1_map = p.map_lcl(0, step1_f);
    let s2a = p.split(2usize);
    let j1 = p.join();
    let step1 = p.compose(&[j1, step1_map, s2a]);

    let red2 = p.reduce_seq(add, 0.0);
    let copy_l2 = p.copy_to_local();
    let step2_f = p.compose(&[copy_l2, red2]);
    let step2_map = p.map_lcl(0, step2_f);
    let s2b = p.split(2usize);
    let j2 = p.join();
    let iter_body = p.compose(&[j2, step2_map, s2b]);
    let step2 = p.iterate(6, iter_body);

    let copy_g = p.copy_to_global();
    let m_copy = p.map_lcl(0, copy_g);
    let s1 = p.split(1usize);
    let j3 = p.join();
    let step3 = p.compose(&[j3, m_copy, s1]);

    let wg_body = p.compose(&[step3, step2, step1]);
    let wg = p.map_wrg(0, wg_body);
    let s128 = p.split(128usize);
    let jout = p.join();
    let z = p.zip2();
    let n_expr = ArithExpr::cst(n as i64);
    p.with_root(
        vec![
            ("x", Type::array(Type::float(), n_expr.clone())),
            ("y", Type::array(Type::float(), n_expr)),
        ],
        |p, params| {
            let zipped = p.apply(z, [params[0], params[1]]);
            let split = p.apply1(s128, zipped);
            let mapped = p.apply1(wg, split);
            p.apply1(jout, mapped)
        },
    );
    p
}

#[test]
fn dot_product_kernel_runs_and_matches_the_interpreter() {
    let n = 512;
    let p = listing1_dot_product(n);
    let x: Vec<f32> = (0..n).map(|i| ((i % 13) as f32) * 0.5).collect();
    let y: Vec<f32> = (0..n).map(|i| ((i % 7) as f32) - 3.0).collect();
    let sizes = Environment::new();
    let expected = evaluate_with_sizes(
        &p,
        &[Value::from_f32_slice(&x), Value::from_f32_slice(&y)],
        &sizes,
    )
    .unwrap()
    .flatten_f32();

    for options in [
        CompilationOptions::all_optimisations(),
        CompilationOptions::without_array_access_simplification(),
        CompilationOptions::none(),
    ] {
        let options = options.with_launch_1d(256, 64);
        let kernel = compile(&p, &options).expect("compiles");
        let (out, _) = run_kernel(
            &kernel,
            &[x.clone(), y.clone()],
            &sizes,
            LaunchConfig::d1(256, 64),
        );
        assert_close(&out, &expected);
    }
}

#[test]
fn dot_product_kernel_has_the_figure7_structure() {
    let p = listing1_dot_product(1024);
    let options = CompilationOptions::all_optimisations().with_launch_1d(512, 64);
    let kernel = compile(&p, &options).expect("compiles");
    let source = kernel.source();
    // Work-group loop over the chunks, like Figure 7 line 7.
    assert!(source.contains("get_group_id(0)"), "{source}");
    // Local temporary buffers and barriers.
    assert!(source.contains("local float"), "{source}");
    assert!(source.contains("barrier(CLK_LOCAL_MEM_FENCE)"), "{source}");
    // Double buffering of the iterate (pointer swap through a ternary).
    assert!(source.contains("?"), "{source}");
    // The multiply-accumulate user function.
    assert!(source.contains("multAndSumUp"), "{source}");
}

#[test]
fn array_access_simplification_reduces_divisions() {
    // The matrix-transposition access of Figure 6 is the paper's example of an index that
    // only simplifies with the range-aware arithmetic rules.
    let n = 16usize;
    let m = 8usize;
    let mut p = Program::new("transpose");
    let id = p.user_fun(UserFun::id_float());
    let ml = p.map_lcl(0, id);
    let wg = p.map_wrg(0, ml);
    let split_rows = p.split(n);
    let g = p.gather(Reorder::Stride(ArithExpr::cst(n as i64)));
    let j = p.join();
    p.with_root(
        vec![("x", Type::array(Type::array(Type::float(), m), n))],
        |p, params| {
            let joined = p.apply1(j, params[0]);
            let gathered = p.apply1(g, joined);
            let split = p.apply1(split_rows, gathered);
            p.apply1(wg, split)
        },
    );
    let opts = |o: CompilationOptions| o.with_launch_1d((n * m).next_power_of_two(), n);
    let simplified = compile(&p, &opts(CompilationOptions::all_optimisations())).unwrap();
    let unsimplified = compile(
        &p,
        &opts(CompilationOptions::without_array_access_simplification()),
    )
    .unwrap();
    let count =
        |k: &CompiledKernel| k.source().matches('%').count() + k.source().matches('/').count();
    assert!(
        count(&unsimplified) > count(&simplified),
        "expected fewer division/modulo operations with simplification: {} vs {}",
        count(&simplified),
        count(&unsimplified)
    );
}

#[test]
fn results_are_identical_across_optimisation_levels() {
    let n = ArithExpr::size_var("N");
    let mut p = Program::new("square");
    let mult = p.user_fun(UserFun::mult_pair());
    let m = p.map_glb(0, mult);
    let z = p.zip2();
    p.with_root(
        vec![
            ("x", Type::array(Type::float(), n.clone())),
            ("y", Type::array(Type::float(), n)),
        ],
        |p, params| {
            let zipped = p.apply(z, [params[0], params[1]]);
            p.apply1(m, zipped)
        },
    );
    let x: Vec<f32> = (0..96).map(|i| i as f32).collect();
    let sizes = Environment::new().bind("N", 96);
    let mut outputs = Vec::new();
    for options in [
        CompilationOptions::all_optimisations(),
        CompilationOptions::without_array_access_simplification(),
        CompilationOptions::none(),
    ] {
        let kernel = compile(&p, &options.with_launch_1d(96, 32)).unwrap();
        let (out, _) = run_kernel(
            &kernel,
            &[x.clone(), x.clone()],
            &sizes,
            LaunchConfig::d1(96, 32),
        );
        outputs.push(out);
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
}

// ------------------------------------------------------------------------ padded stencils

/// A hand-lowered boundary-handled 3-point stencil:
/// `mapGlb(reduceSeq(add, 0)) ∘ slide(3, 1) ∘ pad(1, 1, mode)`.
fn padded_stencil(n: usize, mode: PadMode) -> Program {
    let mut p = Program::new("stencil3");
    let add = p.user_fun(UserFun::add());
    let red = p.reduce_seq(add, 0.0);
    let glb = p.map_glb(0, red);
    let pad = p.pad(1usize, 1usize, mode);
    let s = p.slide(3usize, 1usize);
    p.with_root(vec![("x", Type::array(Type::float(), n))], |p, params| {
        let padded = p.apply1(pad, params[0]);
        let windows = p.apply1(s, padded);
        p.apply1(glb, windows)
    });
    p
}

#[test]
fn padded_stencil_matches_the_interpreter_for_every_mode() {
    let n = 32;
    let input: Vec<f32> = (0..n).map(|i| (i as f32 * 0.5) - 3.0).collect();
    for mode in [PadMode::Clamp, PadMode::Mirror, PadMode::Wrap] {
        let p = padded_stencil(n, mode);
        let expected =
            evaluate_with_sizes(&p, &[Value::from_f32_slice(&input)], &Environment::new())
                .expect("interpreter runs")
                .flatten_f32();

        let options = CompilationOptions::all_optimisations().with_launch_1d(n, 8);
        let kernel = compile(&p, &options).expect("compiles");
        // The pad view emits branch-free min/max (or double-mod) index arithmetic; the
        // virtual GPU's bounds checker rejects any out-of-range access, so a successful
        // run proves there are none.
        let (out, _) = run_kernel(
            &kernel,
            std::slice::from_ref(&input),
            &Environment::new(),
            LaunchConfig::d1(n, 8),
        );
        assert_close(&out, &expected);
    }
}

#[test]
fn pad_as_final_producer_is_a_typed_error() {
    let mut p = Program::new("bad");
    let pad = p.pad(1usize, 1usize, PadMode::Clamp);
    p.with_root(
        vec![("x", Type::array(Type::float(), 8usize))],
        |p, params| p.apply1(pad, params[0]),
    );
    let err = compile(&p, &CompilationOptions::all_optimisations()).unwrap_err();
    assert!(
        err.to_string().contains("read-side pattern"),
        "unexpected error: {err}"
    );
}

/// A hand-lowered 2D 5-point stencil over a padded grid: the `slide2d`/`pad2d` compositions
/// with their high-level maps already lowered to `mapSeq`, so the mapped layout patterns
/// compile as views (no intermediate buffers) and only the compute maps emit loops.
#[test]
fn two_dimensional_padded_stencil_compiles_as_views() {
    let (rows, cols) = (6usize, 8usize);
    let mut p = Program::new("stencil2d");
    let add = p.user_fun(UserFun::add());
    // Per 3×3 window: sum of all 9 elements (join flattens the window).
    let red = p.reduce_seq(add, 0.0);
    let j = p.join();
    let window_sum = p.compose(&[red, j]);
    let inner_map = p.map_seq(window_sum);
    let row_map = p.map_glb(0, inner_map);
    // pad2d, lowered: mapSeq(pad) ∘ pad.
    let pad_rows = p.pad(1usize, 1usize, PadMode::Clamp);
    let pad_cols = p.pad(1usize, 1usize, PadMode::Clamp);
    let m_pad = p.map_seq(pad_cols);
    // slide2d, lowered: mapSeq(transpose) ∘ slide ∘ mapSeq(slide).
    let slide_cols = p.slide(3usize, 1usize);
    let m_slide = p.map_seq(slide_cols);
    let slide_rows = p.slide(3usize, 1usize);
    let t = p.transpose();
    let m_t = p.map_seq(t);
    p.with_root(
        vec![("grid", Type::array(Type::array(Type::float(), cols), rows))],
        |p, params| {
            let padded_rows = p.apply1(pad_rows, params[0]);
            let padded = p.apply1(m_pad, padded_rows);
            let row_windows = p.apply1(m_slide, padded);
            let grouped = p.apply1(slide_rows, row_windows);
            let neighbourhoods = p.apply1(m_t, grouped);
            p.apply1(row_map, neighbourhoods)
        },
    );

    let input: Vec<f32> = (0..rows * cols).map(|i| (i % 7) as f32 - 2.0).collect();
    let grid = Value::from_f32_matrix(&input, rows, cols);
    let expected = evaluate_with_sizes(&p, &[grid], &Environment::new())
        .expect("interpreter runs")
        .flatten_f32();

    let options = CompilationOptions::all_optimisations().with_launch_1d(rows, 2);
    let kernel = compile(&p, &options).expect("compiles");
    // The mapped layout patterns must not have materialised anything: the kernel contains
    // no temporary arrays, just the compute loops reading through the views.
    assert!(
        !kernel.source().contains("tmp"),
        "layout maps materialised a buffer:\n{}",
        kernel.source()
    );
    let (out, _) = run_kernel(
        &kernel,
        std::slice::from_ref(&input),
        &Environment::new(),
        LaunchConfig::d1(rows, 2),
    );
    assert_close(&out, &expected);
}

// --------------------------------------------------------- dimension-handling regressions

/// Two parallel loops of the same kind nested over the *same* dimension both stride the
/// same work-item id: only the diagonal index pairs would ever be computed, silently
/// leaving the off-diagonal output cells unwritten. The generator must reject this shape
/// statically rather than miscompile it.
#[test]
fn same_dimension_nested_parallel_maps_are_rejected() {
    let build = |inner_dim: u8| {
        let mut p = Program::new("nested");
        let id = p.user_fun(UserFun::id_float());
        let inner = p.map_lcl(inner_dim, id);
        let outer = p.map_lcl(0, inner);
        let wg = p.map_wrg(0, outer);
        p.with_root(
            vec![(
                "x",
                Type::array(
                    Type::array(Type::array(Type::float(), 4usize), 4usize),
                    4usize,
                ),
            )],
            |p, params| p.apply1(wg, params[0]),
        );
        p
    };

    // mapLcl0 ∘ mapLcl0: rejected with an error naming the dimension.
    let options = CompilationOptions::all_optimisations().with_launch([4, 4, 1], [4, 4, 1]);
    let err = compile(&build(0), &options).expect_err("same-dim nesting must not compile");
    let message = err.to_string();
    assert!(
        message.contains("mapLcl") && message.contains("dimension 0"),
        "unhelpful rejection: {message}"
    );

    // mapLcl0 ∘ mapLcl1: the 2D distribution compiles and runs correctly.
    let kernel = compile(&build(1), &options).expect("distinct dims compile");
    let input: Vec<f32> = (0..64).map(|i| i as f32).collect();
    let (out, _) = run_kernel(
        &kernel,
        std::slice::from_ref(&input),
        &Environment::new(),
        LaunchConfig::d2((4, 4), (4, 4)),
    );
    assert_close(&out, &input);
}

/// The same rejection applies per kind across the hierarchy: `mapWrg0 ∘ mapWrg0` is as
/// wrong as `mapLcl0 ∘ mapLcl0`, while `mapWrg1 ∘ mapWrg0` (the tiled-MM grid) is fine.
#[test]
fn same_dimension_nested_work_group_maps_are_rejected() {
    let build = |outer_dim: u8| {
        let mut p = Program::new("grid");
        let id = p.user_fun(UserFun::id_float());
        let lcl = p.map_lcl(0, id);
        let inner_wrg = p.map_wrg(0, lcl);
        let outer_wrg = p.map_wrg(outer_dim, inner_wrg);
        p.with_root(
            vec![(
                "x",
                Type::array(
                    Type::array(Type::array(Type::float(), 4usize), 2usize),
                    2usize,
                ),
            )],
            |p, params| p.apply1(outer_wrg, params[0]),
        );
        p
    };
    let options = CompilationOptions::all_optimisations().with_launch([8, 2, 1], [4, 1, 1]);
    let err = compile(&build(0), &options).expect_err("same-dim work-group nesting rejected");
    assert!(
        err.to_string().contains("mapWrg") && err.to_string().contains("dimension 0"),
        "unhelpful rejection: {err}"
    );
    compile(&build(1), &options).expect("mapWrg1 over mapWrg0 compiles");
}
