//! Bounds analysis for arithmetic expressions.
//!
//! The simplification rules of Section 5.3 have side conditions of the form `x < y`. Those are
//! discharged by computing a symbolic (inclusive) upper bound of `x` and lower bound of `y` from
//! the [`Range`](crate::Range) information attached to variables — the "domain knowledge" the
//! paper says a traditional OpenCL compiler is missing.

use crate::expr::ArithExpr;
use crate::simplify;

/// Returns a symbolic inclusive lower bound of `e`, if one can be derived.
pub(crate) fn lower_bound(e: &ArithExpr) -> Option<ArithExpr> {
    match e {
        ArithExpr::Cst(c) => Some(ArithExpr::Cst(*c)),
        ArithExpr::Var(v) => v.range().min.as_deref().cloned(),
        ArithExpr::Sum(ts) => {
            let mut acc = Vec::with_capacity(ts.len());
            for t in ts {
                acc.push(lower_bound(t)?);
            }
            Some(simplify::make_sum(acc))
        }
        ArithExpr::Prod(fs) => prod_bound(fs, BoundKind::Lower),
        ArithExpr::IntDiv(x, _) => {
            // For natural-number division the result is at least 0.
            if is_non_negative(x) {
                Some(ArithExpr::Cst(0))
            } else {
                None
            }
        }
        ArithExpr::Mod(x, m) => {
            if is_non_negative(x) && is_non_negative(m) {
                Some(ArithExpr::Cst(0))
            } else {
                None
            }
        }
        ArithExpr::Pow(b, e) => {
            let lb = lower_bound(b)?;
            if is_non_negative(&lb) {
                Some(simplify::make_pow(lb, *e))
            } else {
                None
            }
        }
        // min(a, b) >= min(lb(a), lb(b)); only the constant case is decidable here.
        ArithExpr::Min(a, b) => match (lower_bound(a)?.as_cst(), lower_bound(b)?.as_cst()) {
            (Some(x), Some(y)) => Some(ArithExpr::Cst(x.min(y))),
            _ => None,
        },
        // max(a, b) >= lb of either side; prefer whichever is derivable.
        ArithExpr::Max(a, b) => lower_bound(a).or_else(|| lower_bound(b)),
    }
}

/// Returns a symbolic inclusive upper bound of `e`, if one can be derived.
pub(crate) fn upper_bound(e: &ArithExpr) -> Option<ArithExpr> {
    match e {
        ArithExpr::Cst(c) => Some(ArithExpr::Cst(*c)),
        ArithExpr::Var(v) => {
            let max_excl = v.range().max_excl.as_deref()?;
            Some(simplify::make_sum(vec![
                max_excl.clone(),
                ArithExpr::Cst(-1),
            ]))
        }
        ArithExpr::Sum(ts) => {
            let mut acc = Vec::with_capacity(ts.len());
            for t in ts {
                acc.push(upper_bound(t)?);
            }
            Some(simplify::make_sum(acc))
        }
        ArithExpr::Prod(fs) => prod_bound(fs, BoundKind::Upper),
        ArithExpr::IntDiv(x, y) => {
            // x / y <= x when y >= 1.
            let lb_y = lower_bound(y)?;
            if matches!(lb_y.as_cst(), Some(c) if c >= 1) {
                upper_bound(x)
            } else {
                None
            }
        }
        ArithExpr::Mod(x, m) => {
            // x mod m <= m - 1 (and also <= x for non-negative x).
            let ub_m = upper_bound(m).map(|u| simplify::make_sum(vec![u, ArithExpr::Cst(-1)]));
            match ub_m {
                Some(u) => Some(u),
                None => {
                    if is_non_negative(x) {
                        upper_bound(x)
                    } else {
                        None
                    }
                }
            }
        }
        ArithExpr::Pow(b, e) => {
            let ub = upper_bound(b)?;
            if is_non_negative(&ub) {
                Some(simplify::make_pow(ub, *e))
            } else {
                None
            }
        }
        // min(a, b) <= ub of either side; prefer whichever is derivable.
        ArithExpr::Min(a, b) => upper_bound(a).or_else(|| upper_bound(b)),
        // max(a, b) <= max(ub(a), ub(b)); only the constant case is decidable here.
        ArithExpr::Max(a, b) => match (upper_bound(a)?.as_cst(), upper_bound(b)?.as_cst()) {
            (Some(x), Some(y)) => Some(ArithExpr::Cst(x.max(y))),
            _ => None,
        },
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum BoundKind {
    Lower,
    Upper,
}

/// Bound of a product `c * f1 * f2 * …` where the non-constant factors must be provably
/// non-negative for the analysis to say anything.
fn prod_bound(factors: &[ArithExpr], kind: BoundKind) -> Option<ArithExpr> {
    let mut coeff = 1i64;
    let mut rest = Vec::new();
    for f in factors {
        match f {
            ArithExpr::Cst(c) => coeff *= c,
            other => rest.push(other),
        }
    }
    // All non-constant factors must be non-negative.
    if !rest.iter().all(|f| is_non_negative(f)) {
        return None;
    }
    // Pick the bound of each factor depending on the sign of the coefficient.
    let want_upper = match (kind, coeff >= 0) {
        (BoundKind::Upper, true) | (BoundKind::Lower, false) => true,
        (BoundKind::Upper, false) | (BoundKind::Lower, true) => false,
    };
    let mut acc = vec![ArithExpr::Cst(coeff)];
    for f in rest {
        let b = if want_upper {
            upper_bound(f)?
        } else {
            lower_bound(f)?
        };
        if !is_non_negative(&b) {
            return None;
        }
        acc.push(b);
    }
    Some(simplify::make_prod(acc))
}

/// Conservatively decides whether `e >= 0` always holds.
pub(crate) fn is_non_negative(e: &ArithExpr) -> bool {
    match e {
        ArithExpr::Cst(c) => *c >= 0,
        ArithExpr::Var(v) => match v.range().min.as_deref() {
            Some(min) => is_non_negative(min),
            None => false,
        },
        ArithExpr::Sum(ts) => ts.iter().all(is_non_negative),
        ArithExpr::Prod(fs) => {
            let negatives = fs.iter().filter(|f| !is_non_negative(f)).count();
            match negatives {
                0 => true,
                // A single provably non-positive constant times non-negative factors is not
                // non-negative; anything more complicated is unknown, so be conservative.
                _ => false,
            }
        }
        ArithExpr::IntDiv(x, y) | ArithExpr::Mod(x, y) => is_non_negative(x) && is_non_negative(y),
        ArithExpr::Min(a, b) => is_non_negative(a) && is_non_negative(b),
        ArithExpr::Max(a, b) => is_non_negative(a) || is_non_negative(b),
        ArithExpr::Pow(b, e) => is_non_negative(b) || e % 2 == 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ArithExpr as A;

    #[test]
    fn constant_bounds_are_exact() {
        assert_eq!(lower_bound(&A::cst(5)), Some(A::cst(5)));
        assert_eq!(upper_bound(&A::cst(5)), Some(A::cst(5)));
    }

    #[test]
    fn ranged_variable_bounds() {
        let n = A::size_var("N");
        let i = A::var_in_range("i", 0, n.clone());
        assert_eq!(lower_bound(&i), Some(A::cst(0)));
        assert_eq!(upper_bound(&i), Some(n - 1));
    }

    #[test]
    fn size_variable_has_no_upper_bound() {
        let n = A::size_var("N");
        assert_eq!(lower_bound(&n), Some(A::cst(1)));
        assert_eq!(upper_bound(&n), None);
    }

    #[test]
    fn sum_bounds_add() {
        let n = A::size_var("N");
        let i = A::var_in_range("i", 0, n.clone());
        let j = A::var_in_range("j", 0, A::cst(4));
        let e = &i + &j;
        assert_eq!(lower_bound(&e), Some(A::cst(0)));
        assert_eq!(upper_bound(&e), Some(n + 2)); // (N-1) + 3
    }

    #[test]
    fn product_bound_with_positive_coefficient() {
        let i = A::var_in_range("i", 0, A::cst(8));
        let e = &i * 2;
        assert_eq!(upper_bound(&e), Some(A::cst(14)));
        assert_eq!(lower_bound(&e), Some(A::cst(0)));
    }

    #[test]
    fn product_bound_with_negative_coefficient_swaps() {
        let i = A::var_in_range("i", 0, A::cst(8));
        let e = &i * -2;
        assert_eq!(upper_bound(&e), Some(A::cst(0)));
        assert_eq!(lower_bound(&e), Some(A::cst(-14)));
    }

    #[test]
    fn mod_upper_bound_is_modulus_minus_one() {
        let x = A::var("x");
        let e = ArithExpr::Mod(Box::new(x), Box::new(A::cst(16)));
        assert_eq!(upper_bound(&e), Some(A::cst(15)));
    }

    #[test]
    fn div_is_non_negative_for_naturals() {
        let n = A::size_var("N");
        let i = A::var_in_range("i", 0, n.clone());
        let e = ArithExpr::IntDiv(Box::new(i), Box::new(n));
        assert_eq!(lower_bound(&e), Some(A::cst(0)));
        assert!(is_non_negative(&e));
    }

    #[test]
    fn unknown_variable_is_not_provably_non_negative() {
        assert!(!is_non_negative(&A::var("x")));
        assert!(is_non_negative(&A::size_var("N")));
    }

    #[test]
    fn even_powers_are_non_negative() {
        let x = A::var("x");
        assert!(is_non_negative(&ArithExpr::Pow(Box::new(x.clone()), 2)));
        assert!(!is_non_negative(&ArithExpr::Pow(Box::new(x), 3)));
    }
}
