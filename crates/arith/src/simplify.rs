//! Normalisation and the algebraic simplification rules of Section 5.3.
//!
//! The rules implemented here are exactly the ones listed in the paper:
//!
//! 1. `x / y = 0`                          if `x < y` and `y ≠ 0`
//! 2. `(x*y + z) / y = x + z/y`            if `y ≠ 0`
//! 3. `x mod y = x`                        if `x < y` and `y ≠ 0`
//! 4. `(x/y)*y + x mod y = x`              if `y ≠ 0`
//! 5. `(x*y) mod y = 0`                    if `y ≠ 0`
//! 6. `(x + y) mod z = (x mod z + y mod z) mod z` if `z ≠ 0`
//!
//! Together with constant folding, flattening and like-term collection they reduce the long
//! mechanical index expressions produced by the view system (Figure 6, line 1) to the compact
//! indices a human would write (line 3).

use std::collections::BTreeMap;

use crate::bounds;
use crate::expr::ArithExpr;

/// Builds a normalised sum.
pub(crate) fn make_sum(terms: Vec<ArithExpr>) -> ArithExpr {
    // Flatten nested sums.
    let mut flat = Vec::with_capacity(terms.len());
    for t in terms {
        match t {
            ArithExpr::Sum(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }

    // Collect like terms: map from the non-constant factor list to its integer coefficient.
    let mut constant: i64 = 0;
    let mut coeffs: BTreeMap<Vec<ArithExpr>, i64> = BTreeMap::new();
    for t in flat {
        let (c, factors) = split_coefficient(t);
        if factors.is_empty() {
            constant += c;
        } else {
            *coeffs.entry(factors).or_insert(0) += c;
        }
    }
    coeffs.retain(|_, c| *c != 0);

    let mut out: Vec<ArithExpr> = Vec::new();
    for (factors, c) in coeffs {
        out.push(rebuild_term(c, factors));
    }

    // Rule 4: (x/y)*y + (x mod y)  ==>  x.
    if let Some(recombined) = apply_div_mod_recombination(&out) {
        let mut terms = recombined;
        if constant != 0 {
            terms.push(ArithExpr::Cst(constant));
        }
        return make_sum(terms);
    }

    // Canonical order: non-constant terms sorted structurally, the folded constant last. The
    // order only needs to be deterministic for structural equality; putting the constant last
    // keeps printed expressions readable (`N - 1` rather than `-1 + N`).
    out.sort();
    if constant != 0 || out.is_empty() {
        out.push(ArithExpr::Cst(constant));
    }

    if out.len() == 1 {
        out.pop().expect("non-empty")
    } else {
        ArithExpr::Sum(out)
    }
}

/// Splits a term into `(integer coefficient, sorted non-constant factors)`.
fn split_coefficient(t: ArithExpr) -> (i64, Vec<ArithExpr>) {
    match t {
        ArithExpr::Cst(c) => (c, Vec::new()),
        ArithExpr::Prod(fs) => {
            let mut coeff = 1i64;
            let mut rest = Vec::new();
            for f in fs {
                match f {
                    ArithExpr::Cst(c) => coeff *= c,
                    other => rest.push(other),
                }
            }
            rest.sort();
            (coeff, rest)
        }
        other => (1, vec![other]),
    }
}

/// Rebuilds `coefficient * factors` without re-normalising (the factors are already sorted).
fn rebuild_term(coeff: i64, mut factors: Vec<ArithExpr>) -> ArithExpr {
    if factors.is_empty() {
        return ArithExpr::Cst(coeff);
    }
    if coeff == 1 && factors.len() == 1 {
        return factors.pop().expect("non-empty");
    }
    let mut fs = Vec::with_capacity(factors.len() + 1);
    if coeff != 1 {
        fs.push(ArithExpr::Cst(coeff));
    }
    fs.extend(factors);
    if fs.len() == 1 {
        fs.pop().expect("non-empty")
    } else {
        fs.sort();
        ArithExpr::Prod(fs)
    }
}

/// Rule 4: if the term list contains both `(x/y) * y` and `x mod y` (each with coefficient 1),
/// returns the term list with that pair replaced by `x`. Returns `None` when the rule does not
/// apply.
fn apply_div_mod_recombination(terms: &[ArithExpr]) -> Option<Vec<ArithExpr>> {
    for (i, t) in terms.iter().enumerate() {
        if let ArithExpr::Mod(x, y) = t {
            let div = ArithExpr::IntDiv(x.clone(), y.clone());
            let wanted = make_prod(vec![div, (**y).clone()]);
            for (j, u) in terms.iter().enumerate() {
                if j != i && *u == wanted {
                    let mut rest: Vec<ArithExpr> = terms
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| *k != i && *k != j)
                        .map(|(_, e)| e.clone())
                        .collect();
                    rest.push((**x).clone());
                    return Some(rest);
                }
            }
        }
    }
    None
}

/// Builds a normalised product.
pub(crate) fn make_prod(factors: Vec<ArithExpr>) -> ArithExpr {
    // Flatten nested products and fold constants.
    let mut flat = Vec::with_capacity(factors.len());
    let mut coeff: i64 = 1;
    for f in factors {
        match f {
            ArithExpr::Prod(inner) => {
                for g in inner {
                    match g {
                        ArithExpr::Cst(c) => coeff *= c,
                        other => flat.push(other),
                    }
                }
            }
            ArithExpr::Cst(c) => coeff *= c,
            other => flat.push(other),
        }
    }
    if coeff == 0 {
        return ArithExpr::Cst(0);
    }

    // Distribute over sums to reach a sum-of-products normal form. This is what lets the
    // division and modulo rules see through expressions like `(a + b*N) * M`.
    if let Some(pos) = flat.iter().position(|f| matches!(f, ArithExpr::Sum(_))) {
        let sum = flat.remove(pos);
        let terms = match sum {
            ArithExpr::Sum(ts) => ts,
            _ => unreachable!("position matched a sum"),
        };
        let mut out_terms = Vec::with_capacity(terms.len());
        for t in terms {
            let mut fs = flat.clone();
            fs.push(t);
            fs.push(ArithExpr::Cst(coeff));
            out_terms.push(make_prod(fs));
        }
        return make_sum(out_terms);
    }

    // Collect repeated factors into powers.
    let mut powers: BTreeMap<ArithExpr, u32> = BTreeMap::new();
    for f in flat {
        match f {
            ArithExpr::Pow(b, e) => *powers.entry(*b).or_insert(0) += e,
            other => *powers.entry(other).or_insert(0) += 1,
        }
    }

    let mut out: Vec<ArithExpr> = Vec::new();
    for (base, e) in powers {
        match e {
            0 => {}
            1 => out.push(base),
            _ => out.push(ArithExpr::Pow(Box::new(base), e)),
        }
    }

    if out.is_empty() {
        return ArithExpr::Cst(coeff);
    }
    if coeff != 1 {
        out.push(ArithExpr::Cst(coeff));
    }
    if out.len() == 1 {
        out.pop().expect("non-empty")
    } else {
        out.sort();
        ArithExpr::Prod(out)
    }
}

/// Builds a normalised power.
pub(crate) fn make_pow(base: ArithExpr, exp: u32) -> ArithExpr {
    match exp {
        0 => ArithExpr::Cst(1),
        1 => base,
        _ => match base {
            ArithExpr::Cst(c) => ArithExpr::Cst(c.pow(exp)),
            ArithExpr::Pow(b, e) => ArithExpr::Pow(b, e * exp),
            other => ArithExpr::Pow(Box::new(other), exp),
        },
    }
}

/// Tries to divide `t` exactly by `den`, returning the quotient when the division is exact by
/// construction (not merely numerically).
pub(crate) fn exact_div(t: &ArithExpr, den: &ArithExpr) -> Option<ArithExpr> {
    if t == den {
        return Some(ArithExpr::Cst(1));
    }
    match (t, den) {
        (ArithExpr::Cst(c), ArithExpr::Cst(d)) if *d != 0 && c % d == 0 => {
            Some(ArithExpr::Cst(c / d))
        }
        (ArithExpr::Pow(b, e), _) if &**b == den && *e >= 1 => Some(make_pow((**b).clone(), e - 1)),
        (ArithExpr::Prod(fs), _) => {
            // Try to cancel the denominator against one factor (or its constant coefficient).
            match den {
                ArithExpr::Prod(dfs) => {
                    // Divide by each factor of the denominator in turn.
                    let mut current = t.clone();
                    for d in dfs {
                        current = exact_div(&current, d)?;
                    }
                    Some(current)
                }
                _ => {
                    for (i, f) in fs.iter().enumerate() {
                        if let Some(q) = exact_div(f, den) {
                            let mut rest: Vec<ArithExpr> = fs
                                .iter()
                                .enumerate()
                                .filter(|(j, _)| *j != i)
                                .map(|(_, x)| x.clone())
                                .collect();
                            rest.push(q);
                            return Some(make_prod(rest));
                        }
                    }
                    None
                }
            }
        }
        (ArithExpr::Sum(ts), _) => {
            let mut quotients = Vec::with_capacity(ts.len());
            for term in ts {
                quotients.push(exact_div(term, den)?);
            }
            Some(make_sum(quotients))
        }
        _ => None,
    }
}

/// Returns `Some(true)`/`Some(false)` when `a < b` can be decided, `None` otherwise.
pub(crate) fn is_smaller(a: &ArithExpr, b: &ArithExpr) -> Option<bool> {
    if a == b {
        return Some(false);
    }
    // First try the syntactic difference: if `b - a` folds to a constant we are done.
    let diff = make_sum(vec![
        b.clone(),
        make_prod(vec![ArithExpr::Cst(-1), a.clone()]),
    ]);
    if let Some(c) = diff.as_cst() {
        return Some(c > 0);
    }
    // Otherwise use bounds: a <= ub(a), so a < b follows from ub(a) < b, and similarly from
    // a < lb(b) or ub(a) < lb(b). Each comparison is decided by checking whether the symbolic
    // difference folds to a positive constant.
    let positive = |e: ArithExpr| matches!(e.as_cst(), Some(c) if c > 0);
    let ub_a = bounds::upper_bound(a);
    let lb_b = bounds::lower_bound(b);
    if let Some(ub_a) = &ub_a {
        let gap = make_sum(vec![
            b.clone(),
            make_prod(vec![ArithExpr::Cst(-1), ub_a.clone()]),
        ]);
        if positive(gap) {
            return Some(true);
        }
    }
    if let Some(lb_b) = &lb_b {
        let gap = make_sum(vec![
            lb_b.clone(),
            make_prod(vec![ArithExpr::Cst(-1), a.clone()]),
        ]);
        if positive(gap) {
            return Some(true);
        }
    }
    if let (Some(ub_a), Some(lb_b)) = (&ub_a, &lb_b) {
        let gap = make_sum(vec![
            lb_b.clone(),
            make_prod(vec![ArithExpr::Cst(-1), ub_a.clone()]),
        ]);
        if positive(gap) {
            return Some(true);
        }
    }
    None
}

/// Builds a normalised integer division.
pub(crate) fn make_div(num: ArithExpr, den: ArithExpr) -> ArithExpr {
    if den.is_cst(1) {
        return num;
    }
    if num.is_cst(0) {
        return ArithExpr::Cst(0);
    }
    if num == den {
        return ArithExpr::Cst(1);
    }
    if let (Some(n), Some(d)) = (num.as_cst(), den.as_cst()) {
        if d != 0 {
            return ArithExpr::Cst(n.div_euclid(d));
        }
    }
    // Exact cancellation (covers `(x*y)/y = x` and friends).
    if let Some(q) = exact_div(&num, &den) {
        return q;
    }
    // Rule 1: x/y = 0 when 0 <= x < y.
    if bounds::is_non_negative(&num) && is_smaller(&num, &den) == Some(true) {
        return ArithExpr::Cst(0);
    }
    // Rule 2: (x*y + z)/y = x + z/y — peel off the exactly-divisible terms of a sum, provided
    // the remainder is non-negative (all our index expressions are).
    if let ArithExpr::Sum(terms) = &num {
        let mut divisible = Vec::new();
        let mut rest = Vec::new();
        for t in terms {
            match exact_div(t, &den) {
                Some(q) => divisible.push(q),
                None => rest.push(t.clone()),
            }
        }
        if !divisible.is_empty() && rest.iter().all(bounds::is_non_negative) {
            let rest_sum = make_sum(rest);
            let rest_div = if rest_sum.is_cst(0) {
                ArithExpr::Cst(0)
            } else {
                make_div(rest_sum, den)
            };
            divisible.push(rest_div);
            return make_sum(divisible);
        }
    }
    // Nested divisions: (x/a)/b = x/(a*b).
    if let ArithExpr::IntDiv(x, a) = &num {
        return ArithExpr::IntDiv(x.clone(), Box::new(make_prod(vec![(**a).clone(), den])));
    }
    ArithExpr::IntDiv(Box::new(num), Box::new(den))
}

/// Builds a normalised modulo.
pub(crate) fn make_mod(x: ArithExpr, m: ArithExpr) -> ArithExpr {
    if m.is_cst(1) {
        return ArithExpr::Cst(0);
    }
    if x.is_cst(0) {
        return ArithExpr::Cst(0);
    }
    if x == m {
        return ArithExpr::Cst(0);
    }
    if let (Some(a), Some(b)) = (x.as_cst(), m.as_cst()) {
        if b != 0 {
            return ArithExpr::Cst(a.rem_euclid(b));
        }
    }
    // Rule 5: exactly divisible expressions vanish.
    if exact_div(&x, &m).is_some() {
        return ArithExpr::Cst(0);
    }
    // Rule 3: x mod m = x when 0 <= x < m.
    if bounds::is_non_negative(&x) && is_smaller(&x, &m) == Some(true) {
        return x;
    }
    // Rules 6 + 5: drop the exactly-divisible terms of a sum, then retry.
    if let ArithExpr::Sum(terms) = &x {
        let rest: Vec<ArithExpr> = terms
            .iter()
            .filter(|t| exact_div(t, &m).is_none())
            .cloned()
            .collect();
        if rest.len() < terms.len() && rest.iter().all(bounds::is_non_negative) {
            return make_mod(make_sum(rest), m);
        }
    }
    // (x mod m) mod m = x mod m.
    if let ArithExpr::Mod(_, inner_m) = &x {
        if **inner_m == m {
            return x;
        }
    }
    ArithExpr::Mod(Box::new(x), Box::new(m))
}

/// Returns `true` when `a <= b` is provable: the difference folds to a non-negative
/// constant, or the bounds analysis closes the gap (`ub(a) <= b`, `a <= lb(b)` or
/// `ub(a) <= lb(b)`).
pub(crate) fn is_at_most(a: &ArithExpr, b: &ArithExpr) -> bool {
    if a == b {
        return true;
    }
    let non_negative = |e: ArithExpr| matches!(e.as_cst(), Some(c) if c >= 0);
    let gap = |lo: &ArithExpr, hi: &ArithExpr| {
        make_sum(vec![
            hi.clone(),
            make_prod(vec![ArithExpr::Cst(-1), lo.clone()]),
        ])
    };
    if non_negative(gap(a, b)) {
        return true;
    }
    let ub_a = bounds::upper_bound(a);
    let lb_b = bounds::lower_bound(b);
    if let Some(ub_a) = &ub_a {
        if non_negative(gap(ub_a, b)) {
            return true;
        }
    }
    if let Some(lb_b) = &lb_b {
        if non_negative(gap(a, lb_b)) {
            return true;
        }
    }
    if let (Some(ub_a), Some(lb_b)) = (&ub_a, &lb_b) {
        if non_negative(gap(ub_a, lb_b)) {
            return true;
        }
    }
    false
}

/// Builds a normalised `min`: constants fold, equal sides collapse, and a provable ordering
/// (via the range analysis) drops the comparison entirely. The remaining node keeps its
/// operands in canonical order so `min(a, b)` and `min(b, a)` compare equal.
pub(crate) fn make_min(a: ArithExpr, b: ArithExpr) -> ArithExpr {
    if let (Some(x), Some(y)) = (a.as_cst(), b.as_cst()) {
        return ArithExpr::Cst(x.min(y));
    }
    if is_at_most(&a, &b) {
        return a;
    }
    if is_at_most(&b, &a) {
        return b;
    }
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    ArithExpr::Min(Box::new(lo), Box::new(hi))
}

/// Builds a normalised `max` (the dual of [`make_min`]).
pub(crate) fn make_max(a: ArithExpr, b: ArithExpr) -> ArithExpr {
    if let (Some(x), Some(y)) = (a.as_cst(), b.as_cst()) {
        return ArithExpr::Cst(x.max(y));
    }
    if is_at_most(&a, &b) {
        return b;
    }
    if is_at_most(&b, &a) {
        return a;
    }
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    ArithExpr::Max(Box::new(lo), Box::new(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ArithExpr as A;

    fn n() -> A {
        A::size_var("N")
    }
    fn m() -> A {
        A::size_var("M")
    }
    fn wg(max: A) -> A {
        A::var_in_range("wg_id", 0, max)
    }
    fn lid(max: A) -> A {
        A::var_in_range("l_id", 0, max)
    }

    #[test]
    fn rule1_division_of_smaller_value_is_zero() {
        // l_id in [0, N)  =>  l_id / N == 0
        let e = lid(n()) / n();
        assert_eq!(e, A::cst(0));
    }

    #[test]
    fn rule2_divisible_terms_are_peeled_off() {
        // (wg_id*M + l_id) / M == wg_id   (l_id in [0, M))
        let e = (wg(n()) * m() + lid(m())) / m();
        assert_eq!(e, wg(n()));
    }

    #[test]
    fn rule3_mod_of_smaller_value_is_identity() {
        let e = lid(n()) % n();
        assert_eq!(e, lid(n()));
    }

    #[test]
    fn rule4_div_mod_recombination() {
        let x = A::var("x");
        let y = n();
        let div = ArithExpr::IntDiv(Box::new(x.clone()), Box::new(y.clone()));
        let md = ArithExpr::Mod(Box::new(x.clone()), Box::new(y.clone()));
        let e = make_sum(vec![make_prod(vec![div, y]), md]);
        assert_eq!(e, x);
    }

    #[test]
    fn rule5_product_mod_factor_is_zero() {
        let e = (wg(n()) * m()) % m();
        assert_eq!(e, A::cst(0));
    }

    #[test]
    fn rule6_sum_mod_drops_divisible_terms() {
        // (wg_id*M + l_id) mod M == l_id
        let e = (wg(n()) * m() + lid(m())) % m();
        assert_eq!(e, lid(m()));
    }

    #[test]
    fn figure6_transpose_index_simplifies() {
        // Figure 6: the transpose read index simplifies from the long mechanical form to
        // l_id*N + wg_id.  Here wg_id ranges over [0, M) (the rows) and l_id over [0, N).
        let n = n();
        let m = m();
        let wg = A::var_in_range("wg_id", 0, n.clone());
        let l = A::var_in_range("l_id", 0, m.clone());
        let flat = &wg * &m + &l;
        let gathered = (&flat / &m) + (&flat % &m) * &n;
        let row = &gathered / &n;
        let col = &gathered % &n;
        let idx = &row * &n + &col;
        assert_eq!(idx, &l * &n + &wg);
        assert_eq!(idx.div_mod_count(), 0);
    }

    #[test]
    fn unprovable_relations_keep_div_and_mod() {
        let x = A::var("x"); // no range information
        let e = x.clone() / n();
        assert!(matches!(e, ArithExpr::IntDiv(_, _)));
        let e = x % n();
        assert!(matches!(e, ArithExpr::Mod(_, _)));
    }

    #[test]
    fn division_by_constant_folds() {
        assert_eq!(A::cst(7) / A::cst(2), A::cst(3));
        assert_eq!(A::cst(8) % A::cst(3), A::cst(2));
    }

    #[test]
    fn nested_division_merges_denominators() {
        let x = A::var("x");
        let e = (x.clone() / n()) / m();
        match e {
            ArithExpr::IntDiv(num, den) => {
                assert_eq!(*num, x);
                assert_eq!(*den, n() * m());
            }
            other => panic!("expected a division, got {other:?}"),
        }
    }

    #[test]
    fn distribution_over_sums() {
        let a = A::var("a");
        let b = A::var("b");
        let e = (a.clone() + b.clone()) * A::cst(2);
        assert_eq!(e, a * 2 + b * 2);
    }

    #[test]
    fn pow_collection() {
        let x = A::var("x");
        let e = x.clone() * x.clone();
        assert_eq!(e, ArithExpr::Pow(Box::new(x), 2));
    }

    #[test]
    fn pow_constants_and_identities() {
        let x = A::var("x");
        assert_eq!(make_pow(x.clone(), 0), A::cst(1));
        assert_eq!(make_pow(x.clone(), 1), x);
        assert_eq!(make_pow(A::cst(3), 2), A::cst(9));
    }

    #[test]
    fn mod_of_mod_collapses() {
        let x = A::var("x");
        let inner = ArithExpr::Mod(Box::new(x), Box::new(n()));
        let e = make_mod(inner.clone(), n());
        assert_eq!(e, inner);
    }

    #[test]
    fn exact_div_of_sum() {
        let e = n() * 2 + m() * n();
        assert_eq!(exact_div(&e, &n()), Some(A::cst(2) + m()));
    }

    #[test]
    fn min_max_fold_and_use_ranges() {
        let n = n();
        let l = lid(n.clone());
        // Constants fold.
        assert_eq!(make_min(A::cst(3), A::cst(5)), A::cst(3));
        assert_eq!(make_max(A::cst(3), A::cst(5)), A::cst(5));
        // Equal sides collapse.
        assert_eq!(make_min(n.clone(), n.clone()), n.clone());
        // l_id in [0, N): max(0, l_id) = l_id and min(l_id, N - 1) = l_id.
        assert_eq!(make_max(A::cst(0), l.clone()), l);
        assert_eq!(make_min(l.clone(), n.clone() - 1), l);
        // Unprovable comparisons keep a canonical node regardless of argument order.
        let x = A::var("x");
        let a = make_min(x.clone(), n.clone());
        let b = make_min(n.clone(), x.clone());
        assert_eq!(a, b);
        assert!(matches!(a, ArithExpr::Min(_, _)));
    }

    #[test]
    fn is_smaller_uses_ranges() {
        let l = lid(n());
        assert_eq!(is_smaller(&l, &n()), Some(true));
        assert_eq!(is_smaller(&n(), &n()), Some(false));
        assert_eq!(is_smaller(&A::cst(3), &A::cst(5)), Some(true));
        assert_eq!(is_smaller(&A::cst(5), &A::cst(3)), Some(false));
        assert_eq!(is_smaller(&A::var("x"), &n()), None);
    }
}
