//! Substitution and concrete evaluation of arithmetic expressions.

use std::collections::HashMap;
use std::fmt;

use crate::expr::{ArithExpr, Var};

/// A mapping from variable names to concrete values, used to evaluate symbolic expressions.
///
/// The virtual GPU uses an environment to turn the symbolic array indices emitted by the code
/// generator into concrete addresses, and the test-suite uses it to check that simplification
/// preserves the value of an expression.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Environment {
    values: HashMap<String, i64>,
}

/// Errors produced when evaluating an expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A variable had no binding in the environment.
    UnboundVariable(String),
    /// A division or modulo by zero was attempted.
    DivisionByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(name) => write!(f, "unbound variable `{name}`"),
            EvalError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for EvalError {}

impl Environment {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `name` to `value`, returning `self` for chaining.
    pub fn bind(mut self, name: impl Into<String>, value: i64) -> Self {
        self.values.insert(name.into(), value);
        self
    }

    /// Binds `name` to `value` in place.
    pub fn set(&mut self, name: impl Into<String>, value: i64) {
        self.values.insert(name.into(), value);
    }

    /// Looks up the value bound to `name`.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.values.get(name).copied()
    }

    /// Returns an iterator over all bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&str, i64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

impl FromIterator<(String, i64)> for Environment {
    fn from_iter<T: IntoIterator<Item = (String, i64)>>(iter: T) -> Self {
        Environment {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, i64)> for Environment {
    fn extend<T: IntoIterator<Item = (String, i64)>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

impl ArithExpr {
    /// Evaluates the expression under the given environment.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::UnboundVariable`] if a variable is missing from the environment and
    /// [`EvalError::DivisionByZero`] on division or modulo by zero.
    pub fn evaluate(&self, env: &Environment) -> Result<i64, EvalError> {
        match self {
            ArithExpr::Cst(c) => Ok(*c),
            ArithExpr::Var(v) => env
                .get(v.name())
                .ok_or_else(|| EvalError::UnboundVariable(v.name().to_string())),
            ArithExpr::Sum(ts) => {
                let mut acc = 0i64;
                for t in ts {
                    acc += t.evaluate(env)?;
                }
                Ok(acc)
            }
            ArithExpr::Prod(fs) => {
                let mut acc = 1i64;
                for f in fs {
                    acc *= f.evaluate(env)?;
                }
                Ok(acc)
            }
            ArithExpr::IntDiv(a, b) => {
                let a = a.evaluate(env)?;
                let b = b.evaluate(env)?;
                if b == 0 {
                    Err(EvalError::DivisionByZero)
                } else {
                    Ok(a.div_euclid(b))
                }
            }
            ArithExpr::Mod(a, b) => {
                let a = a.evaluate(env)?;
                let b = b.evaluate(env)?;
                if b == 0 {
                    Err(EvalError::DivisionByZero)
                } else {
                    Ok(a.rem_euclid(b))
                }
            }
            ArithExpr::Pow(b, e) => Ok(b.evaluate(env)?.pow(*e)),
            ArithExpr::Min(a, b) => Ok(a.evaluate(env)?.min(b.evaluate(env)?)),
            ArithExpr::Max(a, b) => Ok(a.evaluate(env)?.max(b.evaluate(env)?)),
        }
    }

    /// Evaluates the expression, resolving variables through the given lookup function.
    ///
    /// This avoids building an [`Environment`] when variable values already live in another
    /// data structure (the virtual GPU uses it to resolve loop variables and kernel
    /// parameters directly from its per-thread state).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::UnboundVariable`] if the lookup returns `None` for a variable and
    /// [`EvalError::DivisionByZero`] on division or modulo by zero.
    pub fn evaluate_with(&self, lookup: &dyn Fn(&str) -> Option<i64>) -> Result<i64, EvalError> {
        match self {
            ArithExpr::Cst(c) => Ok(*c),
            ArithExpr::Var(v) => {
                lookup(v.name()).ok_or_else(|| EvalError::UnboundVariable(v.name().to_string()))
            }
            ArithExpr::Sum(ts) => {
                let mut acc = 0i64;
                for t in ts {
                    acc += t.evaluate_with(lookup)?;
                }
                Ok(acc)
            }
            ArithExpr::Prod(fs) => {
                let mut acc = 1i64;
                for f in fs {
                    acc *= f.evaluate_with(lookup)?;
                }
                Ok(acc)
            }
            ArithExpr::IntDiv(a, b) => {
                let b = b.evaluate_with(lookup)?;
                if b == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                Ok(a.evaluate_with(lookup)?.div_euclid(b))
            }
            ArithExpr::Mod(a, b) => {
                let b = b.evaluate_with(lookup)?;
                if b == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                Ok(a.evaluate_with(lookup)?.rem_euclid(b))
            }
            ArithExpr::Pow(b, e) => Ok(b.evaluate_with(lookup)?.pow(*e)),
            ArithExpr::Min(a, b) => Ok(a.evaluate_with(lookup)?.min(b.evaluate_with(lookup)?)),
            ArithExpr::Max(a, b) => Ok(a.evaluate_with(lookup)?.max(b.evaluate_with(lookup)?)),
        }
    }

    /// Substitutes every occurrence of `var` by `replacement`, re-normalising the result.
    pub fn substitute(&self, var: &Var, replacement: &ArithExpr) -> ArithExpr {
        let mut map = HashMap::new();
        map.insert(var.clone(), replacement.clone());
        self.substitute_all(&map)
    }

    /// Substitutes several variables at once, re-normalising the result.
    pub fn substitute_all(&self, map: &HashMap<Var, ArithExpr>) -> ArithExpr {
        match self {
            ArithExpr::Cst(_) => self.clone(),
            ArithExpr::Var(v) => match map.get(v) {
                Some(r) => r.clone(),
                None => self.clone(),
            },
            ArithExpr::Sum(ts) => ArithExpr::sum(ts.iter().map(|t| t.substitute_all(map))),
            ArithExpr::Prod(fs) => ArithExpr::product(fs.iter().map(|f| f.substitute_all(map))),
            ArithExpr::IntDiv(a, b) => a.substitute_all(map).div(b.substitute_all(map)),
            ArithExpr::Mod(a, b) => a.substitute_all(map).modulo(b.substitute_all(map)),
            ArithExpr::Pow(b, e) => b.substitute_all(map).pow(*e),
            ArithExpr::Min(a, b) => a.substitute_all(map).min_of(b.substitute_all(map)),
            ArithExpr::Max(a, b) => a.substitute_all(map).max_of(b.substitute_all(map)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Range;

    #[test]
    fn evaluation_of_all_node_kinds() {
        let env = Environment::new().bind("x", 7).bind("y", 3);
        let x = ArithExpr::var("x");
        let y = ArithExpr::var("y");
        let e = ArithExpr::IntDiv(Box::new(x.clone()), Box::new(y.clone()));
        assert_eq!(e.evaluate(&env), Ok(2));
        let e = ArithExpr::Mod(Box::new(x.clone()), Box::new(y.clone()));
        assert_eq!(e.evaluate(&env), Ok(1));
        let e = ArithExpr::Pow(Box::new(y.clone()), 2);
        assert_eq!(e.evaluate(&env), Ok(9));
        assert_eq!((x + y).evaluate(&env), Ok(10));
    }

    #[test]
    fn unbound_variable_errors() {
        let env = Environment::new();
        let err = ArithExpr::var("missing").evaluate(&env);
        assert_eq!(err, Err(EvalError::UnboundVariable("missing".into())));
        assert!(err.unwrap_err().to_string().contains("missing"));
    }

    #[test]
    fn division_by_zero_errors() {
        let env = Environment::new().bind("x", 1);
        let e = ArithExpr::IntDiv(Box::new(ArithExpr::var("x")), Box::new(ArithExpr::cst(0)));
        assert_eq!(e.evaluate(&env), Err(EvalError::DivisionByZero));
    }

    #[test]
    fn substitution_renormalises() {
        let n = ArithExpr::size_var("N");
        let i = ArithExpr::var_in_range("i", 0, n.clone());
        // i mod N cannot be simplified until we know more about i.
        let x = ArithExpr::var("x");
        let e = ArithExpr::Mod(Box::new(x.clone()), Box::new(n.clone()));
        let v = Var::new("x", Range::unknown());
        let substituted = e.substitute(&v, &i);
        // After substitution the range of i lets rule 3 fire.
        assert_eq!(substituted, i);
    }

    #[test]
    fn substitute_all_replaces_multiple_variables() {
        let a = Var::new("a", Range::unknown());
        let b = Var::new("b", Range::unknown());
        let e = ArithExpr::from_var(a.clone()) * 2 + ArithExpr::from_var(b.clone());
        let mut map = HashMap::new();
        map.insert(a, ArithExpr::cst(3));
        map.insert(b, ArithExpr::cst(4));
        assert_eq!(e.substitute_all(&map), ArithExpr::cst(10));
    }

    #[test]
    fn environment_iter_and_extend() {
        let mut env = Environment::new().bind("a", 1);
        env.extend(vec![("b".to_string(), 2)]);
        assert_eq!(env.get("b"), Some(2));
        assert_eq!(env.iter().count(), 2);
        let env2: Environment = vec![("x".to_string(), 5)].into_iter().collect();
        assert_eq!(env2.get("x"), Some(5));
    }
}
