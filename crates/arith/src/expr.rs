//! The core arithmetic expression type and its smart constructors.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops;

use crate::simplify;

/// A symbolic arithmetic expression over natural numbers.
///
/// Expressions are kept in a normal form by the smart constructors (operators, [`ArithExpr::sum`],
/// [`ArithExpr::product`], …): sums and products are flattened and sorted, constants folded, like
/// terms collected, and the division/modulo simplification rules of the paper (Section 5.3) are
/// applied eagerly. Two expressions that the rules can prove equal therefore compare equal with
/// `==`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArithExpr {
    /// An integer constant.
    Cst(i64),
    /// A named variable with an optional value range.
    Var(Var),
    /// A sum of at least two terms, flattened and canonically ordered.
    Sum(Vec<ArithExpr>),
    /// A product of at least two factors, flattened and canonically ordered.
    Prod(Vec<ArithExpr>),
    /// Integer (floor) division.
    IntDiv(Box<ArithExpr>, Box<ArithExpr>),
    /// Integer modulo.
    Mod(Box<ArithExpr>, Box<ArithExpr>),
    /// A power with a constant non-negative exponent.
    Pow(Box<ArithExpr>, u32),
    /// The smaller of two expressions (OpenCL's integer `min` builtin). Used by the `pad`
    /// boundary views to clamp indices into range.
    Min(Box<ArithExpr>, Box<ArithExpr>),
    /// The larger of two expressions (OpenCL's integer `max` builtin).
    Max(Box<ArithExpr>, Box<ArithExpr>),
}

/// The inclusive-lower / exclusive-upper value range of a [`Var`].
///
/// Ranges carry the domain knowledge that makes the simplification rules fire: for example a
/// `mapLcl` loop variable over an array of length `N` has range `[0, N)`, which is what allows
/// `l_id mod N` to simplify to `l_id`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Range {
    /// Inclusive lower bound, if known.
    pub min: Option<Box<ArithExpr>>,
    /// Exclusive upper bound, if known.
    pub max_excl: Option<Box<ArithExpr>>,
}

impl Range {
    /// An unbounded range (nothing is known about the variable).
    pub fn unknown() -> Self {
        Range {
            min: None,
            max_excl: None,
        }
    }

    /// The range `[min, max_excl)`.
    pub fn new(min: ArithExpr, max_excl: ArithExpr) -> Self {
        Range {
            min: Some(Box::new(min)),
            max_excl: Some(Box::new(max_excl)),
        }
    }

    /// The range of a size variable: `[1, ∞)`.
    pub fn positive() -> Self {
        Range {
            min: Some(Box::new(ArithExpr::Cst(1))),
            max_excl: None,
        }
    }

    /// The range `[min, ∞)`.
    pub fn at_least(min: ArithExpr) -> Self {
        Range {
            min: Some(Box::new(min)),
            max_excl: None,
        }
    }
}

/// A named variable.
///
/// Variables are identified by name alone: equality, ordering and hashing ignore the range so
/// that the same variable mentioned with and without range information collapses to a single
/// term when collecting sums and products.
#[derive(Clone, Debug)]
pub struct Var {
    name: String,
    range: Range,
}

impl Var {
    /// Creates a variable with the given name and range.
    pub fn new(name: impl Into<String>, range: Range) -> Self {
        Var {
            name: name.into(),
            range,
        }
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The variable's value range.
    pub fn range(&self) -> &Range {
        &self.range
    }

    /// Returns a copy of this variable with a different range.
    pub fn with_range(&self, range: Range) -> Self {
        Var {
            name: self.name.clone(),
            range,
        }
    }
}

impl PartialEq for Var {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}
impl Eq for Var {}
impl Hash for Var {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.name.hash(state);
    }
}
impl PartialOrd for Var {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Var {
    fn cmp(&self, other: &Self) -> Ordering {
        self.name.cmp(&other.name)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[allow(clippy::should_implement_trait)] // `div` is the simplifying builder, not `Div`
impl ArithExpr {
    /// Creates a constant expression.
    pub fn cst(c: i64) -> Self {
        ArithExpr::Cst(c)
    }

    /// Creates an unconstrained variable.
    pub fn var(name: impl Into<String>) -> Self {
        ArithExpr::Var(Var::new(name, Range::unknown()))
    }

    /// Creates a *size* variable: an unknown natural number `≥ 1` (array lengths, matrix
    /// dimensions, …).
    pub fn size_var(name: impl Into<String>) -> Self {
        ArithExpr::Var(Var::new(name, Range::positive()))
    }

    /// Creates a variable known to lie in `[min, max_excl)`, such as a thread or loop index.
    pub fn var_in_range(name: impl Into<String>, min: i64, max_excl: ArithExpr) -> Self {
        ArithExpr::Var(Var::new(name, Range::new(ArithExpr::Cst(min), max_excl)))
    }

    /// Wraps an existing [`Var`].
    pub fn from_var(v: Var) -> Self {
        ArithExpr::Var(v)
    }

    /// Returns the constant value if this expression is a constant.
    pub fn as_cst(&self) -> Option<i64> {
        match self {
            ArithExpr::Cst(c) => Some(*c),
            _ => None,
        }
    }

    /// Returns `true` if this expression is the constant `c`.
    pub fn is_cst(&self, c: i64) -> bool {
        self.as_cst() == Some(c)
    }

    /// Returns the variable if this expression is a single variable.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            ArithExpr::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Builds a normalised sum of the given terms.
    pub fn sum(terms: impl IntoIterator<Item = ArithExpr>) -> Self {
        simplify::make_sum(terms.into_iter().collect())
    }

    /// Builds a normalised product of the given factors.
    pub fn product(factors: impl IntoIterator<Item = ArithExpr>) -> Self {
        simplify::make_prod(factors.into_iter().collect())
    }

    /// Builds `self ^ exp` (constant non-negative exponent).
    pub fn pow(self, exp: u32) -> Self {
        simplify::make_pow(self, exp)
    }

    /// Integer division, simplified using the rules of Section 5.3.
    pub fn div(self, den: ArithExpr) -> Self {
        simplify::make_div(self, den)
    }

    /// Integer modulo, simplified using the rules of Section 5.3.
    pub fn modulo(self, m: ArithExpr) -> Self {
        simplify::make_mod(self, m)
    }

    /// The smaller of `self` and `other`, folding constants and using the range analysis to
    /// drop the comparison when one side is provably no larger than the other.
    pub fn min_of(self, other: ArithExpr) -> Self {
        simplify::make_min(self, other)
    }

    /// The larger of `self` and `other`, folding constants and using the range analysis to
    /// drop the comparison when one side is provably no smaller than the other.
    pub fn max_of(self, other: ArithExpr) -> Self {
        simplify::make_max(self, other)
    }

    /// Collects all variables appearing in the expression.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            ArithExpr::Cst(_) => {}
            ArithExpr::Var(v) => out.push(v.clone()),
            ArithExpr::Sum(ts) | ArithExpr::Prod(ts) => {
                for t in ts {
                    t.collect_vars(out);
                }
            }
            ArithExpr::IntDiv(a, b)
            | ArithExpr::Mod(a, b)
            | ArithExpr::Min(a, b)
            | ArithExpr::Max(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            ArithExpr::Pow(b, _) => b.collect_vars(out),
        }
    }

    /// Returns `Some(true)` / `Some(false)` when the analysis can prove `self < other` /
    /// `self >= other`, and `None` when it cannot decide.
    pub fn is_smaller_than(&self, other: &ArithExpr) -> Option<bool> {
        simplify::is_smaller(self, other)
    }

    /// Number of nodes in the expression tree (used to measure index complexity in the
    /// evaluation).
    pub fn node_count(&self) -> usize {
        match self {
            ArithExpr::Cst(_) | ArithExpr::Var(_) => 1,
            ArithExpr::Sum(ts) | ArithExpr::Prod(ts) => {
                1 + ts.iter().map(|t| t.node_count()).sum::<usize>()
            }
            ArithExpr::IntDiv(a, b)
            | ArithExpr::Mod(a, b)
            | ArithExpr::Min(a, b)
            | ArithExpr::Max(a, b) => 1 + a.node_count() + b.node_count(),
            ArithExpr::Pow(b, _) => 1 + b.node_count(),
        }
    }

    /// Counts the arithmetic operations (additions, multiplications, divisions, modulos,
    /// power expansions) needed to evaluate the expression; used by the virtual GPU's cost
    /// model to charge for index computations.
    pub fn op_count(&self) -> usize {
        match self {
            ArithExpr::Cst(_) | ArithExpr::Var(_) => 0,
            ArithExpr::Sum(ts) | ArithExpr::Prod(ts) => {
                ts.len().saturating_sub(1) + ts.iter().map(|t| t.op_count()).sum::<usize>()
            }
            ArithExpr::IntDiv(a, b)
            | ArithExpr::Mod(a, b)
            | ArithExpr::Min(a, b)
            | ArithExpr::Max(a, b) => 1 + a.op_count() + b.op_count(),
            ArithExpr::Pow(b, e) => (*e as usize).saturating_sub(1) + b.op_count(),
        }
    }

    /// Counts the division and modulo operations in the expression; these are the costly
    /// operations the array-access simplification removes (Section 7.4).
    pub fn div_mod_count(&self) -> usize {
        match self {
            ArithExpr::Cst(_) | ArithExpr::Var(_) => 0,
            ArithExpr::Sum(ts) | ArithExpr::Prod(ts) => {
                ts.iter().map(|t| t.div_mod_count()).sum::<usize>()
            }
            ArithExpr::IntDiv(a, b) | ArithExpr::Mod(a, b) => {
                1 + a.div_mod_count() + b.div_mod_count()
            }
            ArithExpr::Min(a, b) | ArithExpr::Max(a, b) => a.div_mod_count() + b.div_mod_count(),
            ArithExpr::Pow(b, _) => b.div_mod_count(),
        }
    }
}

impl From<i64> for ArithExpr {
    fn from(c: i64) -> Self {
        ArithExpr::Cst(c)
    }
}

impl From<usize> for ArithExpr {
    fn from(c: usize) -> Self {
        ArithExpr::Cst(c as i64)
    }
}

impl From<Var> for ArithExpr {
    fn from(v: Var) -> Self {
        ArithExpr::Var(v)
    }
}

impl Default for ArithExpr {
    fn default() -> Self {
        ArithExpr::Cst(0)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $build:expr) => {
        impl ops::$trait for ArithExpr {
            type Output = ArithExpr;
            fn $method(self, rhs: ArithExpr) -> ArithExpr {
                let f: fn(ArithExpr, ArithExpr) -> ArithExpr = $build;
                f(self, rhs)
            }
        }
        impl ops::$trait<&ArithExpr> for ArithExpr {
            type Output = ArithExpr;
            fn $method(self, rhs: &ArithExpr) -> ArithExpr {
                let f: fn(ArithExpr, ArithExpr) -> ArithExpr = $build;
                f(self, rhs.clone())
            }
        }
        impl ops::$trait<ArithExpr> for &ArithExpr {
            type Output = ArithExpr;
            fn $method(self, rhs: ArithExpr) -> ArithExpr {
                let f: fn(ArithExpr, ArithExpr) -> ArithExpr = $build;
                f(self.clone(), rhs)
            }
        }
        impl ops::$trait<&ArithExpr> for &ArithExpr {
            type Output = ArithExpr;
            fn $method(self, rhs: &ArithExpr) -> ArithExpr {
                let f: fn(ArithExpr, ArithExpr) -> ArithExpr = $build;
                f(self.clone(), rhs.clone())
            }
        }
        impl ops::$trait<i64> for ArithExpr {
            type Output = ArithExpr;
            fn $method(self, rhs: i64) -> ArithExpr {
                let f: fn(ArithExpr, ArithExpr) -> ArithExpr = $build;
                f(self, ArithExpr::Cst(rhs))
            }
        }
        impl ops::$trait<i64> for &ArithExpr {
            type Output = ArithExpr;
            fn $method(self, rhs: i64) -> ArithExpr {
                let f: fn(ArithExpr, ArithExpr) -> ArithExpr = $build;
                f(self.clone(), ArithExpr::Cst(rhs))
            }
        }
    };
}

impl_binop!(Add, add, |a, b| simplify::make_sum(vec![a, b]));
impl_binop!(Sub, sub, |a, b| simplify::make_sum(vec![
    a,
    simplify::make_prod(vec![ArithExpr::Cst(-1), b])
]));
impl_binop!(Mul, mul, |a, b| simplify::make_prod(vec![a, b]));
impl_binop!(Div, div, |a, b| simplify::make_div(a, b));
impl_binop!(Rem, rem, |a, b| simplify::make_mod(a, b));

impl ops::Neg for ArithExpr {
    type Output = ArithExpr;
    fn neg(self) -> ArithExpr {
        simplify::make_prod(vec![ArithExpr::Cst(-1), self])
    }
}

impl fmt::Display for ArithExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::printer::CPrinter.print(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_fold_in_sums_and_products() {
        let e = ArithExpr::cst(2) + ArithExpr::cst(3);
        assert_eq!(e, ArithExpr::cst(5));
        let e = ArithExpr::cst(2) * ArithExpr::cst(3) * ArithExpr::cst(4);
        assert_eq!(e, ArithExpr::cst(24));
    }

    #[test]
    fn like_terms_collect() {
        let x = ArithExpr::size_var("x");
        let e = &x * 2 + &x * 3;
        assert_eq!(e, &x * 5);
    }

    #[test]
    fn subtraction_cancels() {
        let x = ArithExpr::size_var("x");
        let e = &x - &x;
        assert_eq!(e, ArithExpr::cst(0));
    }

    #[test]
    fn var_equality_ignores_range() {
        let a = Var::new("n", Range::positive());
        let b = Var::new("n", Range::unknown());
        assert_eq!(a, b);
    }

    #[test]
    fn neg_produces_minus_one_coefficient() {
        let x = ArithExpr::size_var("x");
        let e = -x.clone();
        assert_eq!(e, ArithExpr::cst(-1) * x);
    }

    #[test]
    fn vars_are_collected_and_deduplicated() {
        let n = ArithExpr::size_var("n");
        let m = ArithExpr::size_var("m");
        let e = &n * &m + &n * 2;
        let vars = e.vars();
        assert_eq!(vars.len(), 2);
        assert_eq!(vars[0].name(), "m");
        assert_eq!(vars[1].name(), "n");
    }

    #[test]
    fn node_and_divmod_counts() {
        let n = ArithExpr::size_var("n");
        let x = ArithExpr::var("x");
        let e = ArithExpr::IntDiv(Box::new(x.clone()), Box::new(n.clone()));
        assert_eq!(e.div_mod_count(), 1);
        assert!(e.node_count() >= 3);
        assert_eq!((x + n).div_mod_count(), 0);
    }

    #[test]
    fn from_impls() {
        assert_eq!(ArithExpr::from(3i64), ArithExpr::cst(3));
        assert_eq!(ArithExpr::from(3usize), ArithExpr::cst(3));
        let v = Var::new("k", Range::unknown());
        assert_eq!(ArithExpr::from(v.clone()), ArithExpr::Var(v));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(ArithExpr::default(), ArithExpr::cst(0));
    }
}
