//! Pretty printing of arithmetic expressions to OpenCL C syntax.

use crate::expr::ArithExpr;

/// Prints arithmetic expressions as OpenCL C expressions.
///
/// The printer is precedence-aware so that the emitted source contains only the parentheses
/// that are actually needed — part of keeping generated kernels close to what a human would
/// write (Section 5.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CPrinter;

/// Binding strength of the different operators, used to decide parenthesisation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Add,
    Mul,
    Atom,
}

/// Splits a sum term into its sign and absolute value so that sums print as subtractions
/// (`N - 1` instead of `N + (-1)`).
fn split_negative_term(t: &ArithExpr) -> (bool, ArithExpr) {
    match t {
        ArithExpr::Cst(c) if *c < 0 => (true, ArithExpr::Cst(-c)),
        ArithExpr::Prod(fs) => {
            let mut negative = false;
            let mut out = Vec::with_capacity(fs.len());
            for f in fs {
                match f {
                    ArithExpr::Cst(c) if *c < 0 => {
                        negative = true;
                        if *c != -1 {
                            out.push(ArithExpr::Cst(-c));
                        }
                    }
                    other => out.push(other.clone()),
                }
            }
            if negative {
                let abs = match out.len() {
                    0 => ArithExpr::Cst(1),
                    1 => out.pop().expect("non-empty"),
                    _ => ArithExpr::Prod(out),
                };
                (true, abs)
            } else {
                (false, t.clone())
            }
        }
        _ => (false, t.clone()),
    }
}

impl CPrinter {
    /// Creates a new printer.
    pub fn new() -> Self {
        CPrinter
    }

    /// Renders `e` as an OpenCL C expression string.
    pub fn print(&self, e: &ArithExpr) -> String {
        self.print_prec(e, Prec::Add)
    }

    fn print_prec(&self, e: &ArithExpr, outer: Prec) -> String {
        let (s, prec) = match e {
            ArithExpr::Cst(c) => {
                if *c < 0 {
                    (format!("({c})"), Prec::Atom)
                } else {
                    (c.to_string(), Prec::Atom)
                }
            }
            ArithExpr::Var(v) => (v.name().to_string(), Prec::Atom),
            ArithExpr::Sum(ts) => {
                let mut s = String::new();
                for (i, t) in ts.iter().enumerate() {
                    let (negative, abs) = split_negative_term(t);
                    let rendered = self.print_prec(&abs, Prec::Add);
                    if i == 0 {
                        if negative {
                            s.push('-');
                        }
                        s.push_str(&rendered);
                    } else {
                        s.push_str(if negative { " - " } else { " + " });
                        s.push_str(&rendered);
                    }
                }
                (s, Prec::Add)
            }
            ArithExpr::Prod(fs) => {
                let rendered: Vec<String> =
                    fs.iter().map(|f| self.print_prec(f, Prec::Mul)).collect();
                (rendered.join(" * "), Prec::Mul)
            }
            ArithExpr::IntDiv(a, b) => (
                format!(
                    "{} / {}",
                    self.print_prec(a, Prec::Mul),
                    self.print_prec(b, Prec::Atom)
                ),
                Prec::Mul,
            ),
            ArithExpr::Mod(a, b) => (
                format!(
                    "{} % {}",
                    self.print_prec(a, Prec::Mul),
                    self.print_prec(b, Prec::Atom)
                ),
                Prec::Mul,
            ),
            ArithExpr::Pow(b, e) => {
                let base = self.print_prec(b, Prec::Mul);
                let repeated = vec![base; *e as usize];
                (repeated.join(" * "), Prec::Mul)
            }
            // OpenCL C provides integer `min`/`max` builtins; a call is an atom.
            ArithExpr::Min(a, b) => (
                format!(
                    "min({}, {})",
                    self.print_prec(a, Prec::Add),
                    self.print_prec(b, Prec::Add)
                ),
                Prec::Atom,
            ),
            ArithExpr::Max(a, b) => (
                format!(
                    "max({}, {})",
                    self.print_prec(a, Prec::Add),
                    self.print_prec(b, Prec::Add)
                ),
                Prec::Atom,
            ),
        };
        if prec < outer {
            format!("({s})")
        } else {
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_print_bare() {
        let p = CPrinter::new();
        assert_eq!(p.print(&ArithExpr::cst(42)), "42");
        assert_eq!(p.print(&ArithExpr::var("x")), "x");
    }

    #[test]
    fn negative_constants_are_parenthesised() {
        let p = CPrinter::new();
        assert_eq!(p.print(&ArithExpr::cst(-3)), "(-3)");
    }

    #[test]
    fn sums_and_products_nest_with_parentheses_only_where_needed() {
        let p = CPrinter::new();
        let x = ArithExpr::var("x");
        let y = ArithExpr::var("y");
        // Build the product around a sum manually: the smart constructor would distribute it.
        let e = ArithExpr::Prod(vec![
            ArithExpr::Sum(vec![x.clone(), y.clone()]),
            ArithExpr::var("z"),
        ]);
        let s = p.print(&e);
        assert!(
            s.contains('('),
            "sum inside product must be parenthesised: {s}"
        );
        let e = x * y + ArithExpr::var("z");
        let s = p.print(&e);
        assert!(
            !s.contains('('),
            "product inside sum needs no parentheses: {s}"
        );
    }

    #[test]
    fn subtraction_prints_with_minus_sign() {
        let p = CPrinter::new();
        let n = ArithExpr::size_var("N");
        let e = n - 1;
        assert_eq!(p.print(&e), "N - 1");
    }

    #[test]
    fn division_and_modulo_print_in_c_syntax() {
        let p = CPrinter::new();
        let x = ArithExpr::var("x");
        let n = ArithExpr::size_var("N");
        let e = ArithExpr::IntDiv(Box::new(x.clone()), Box::new(n.clone()));
        assert_eq!(p.print(&e), "x / N");
        let e = ArithExpr::Mod(Box::new(x + 1), Box::new(n));
        assert_eq!(p.print(&e), "(x + 1) % N");
    }

    #[test]
    fn powers_expand_to_repeated_multiplication() {
        let p = CPrinter::new();
        let x = ArithExpr::var("x");
        let e = ArithExpr::Pow(Box::new(x), 3);
        assert_eq!(p.print(&e), "x * x * x");
    }

    #[test]
    fn display_uses_the_printer() {
        let x = ArithExpr::var("x");
        assert_eq!(format!("{}", x.clone() + 2), "x + 2");
    }
}
