//! Symbolic arithmetic expressions for the Lift IR.
//!
//! The Lift type system tracks array lengths and index expressions as symbolic arithmetic
//! expressions over natural numbers (Section 5.1 of the paper). This crate implements those
//! expressions together with the ingredients the compiler relies on:
//!
//! * a normalising representation ([`ArithExpr`]) with sums, products, integer division,
//!   modulo and powers,
//! * named [`Var`]iables carrying value [`Range`] information (e.g. a work-group id is known
//!   to lie in `[0, M)`),
//! * the algebraic simplification rules (1)–(6) of Section 5.3 which exploit those ranges,
//! * bounds analysis (the crate-internal `lower_bound`/`upper_bound` of `bounds`) used to
//!   decide the side conditions of the rules,
//! * substitution and concrete evaluation (used by tests and by the virtual GPU), and
//! * pretty printing to OpenCL C syntax.
//!
//! # Example
//!
//! The matrix-transposition index of Figure 6 simplifies to the compact form a human would
//! write:
//!
//! ```
//! use lift_arith::ArithExpr;
//!
//! let m = ArithExpr::size_var("M");
//! let wg = ArithExpr::var_in_range("wg_id", 0, m.clone());
//! let l = ArithExpr::var_in_range("l_id", 0, m.clone());
//!
//! // (wg_id * M + l_id) mod M simplifies to l_id.
//! let idx = (wg.clone() * m.clone() + l.clone()) % m.clone();
//! assert_eq!(idx, l);
//! ```

mod bounds;
mod expr;
mod printer;
mod simplify;
mod subst;

pub use expr::{ArithExpr, Range, Var};
pub use printer::CPrinter;
pub use subst::{Environment, EvalError};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_doc_example_compiles() {
        let m = ArithExpr::size_var("M");
        let wg = ArithExpr::var_in_range("wg_id", 0, m.clone());
        let idx = (wg * m.clone()) % m;
        assert_eq!(idx, ArithExpr::cst(0));
    }
}
