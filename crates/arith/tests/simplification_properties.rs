//! Property-based tests: simplification must never change the value of an expression.
//!
//! Random expression trees are built from variables with known ranges; each tree is constructed
//! both through the raw (non-simplifying) constructors and through the normalising smart
//! constructors, and both are evaluated under random assignments drawn from the variable ranges.

use lift_arith::{ArithExpr, Environment};
use proptest::prelude::*;

/// A little expression description we can both build raw and build simplified.
#[derive(Clone, Debug)]
enum Shape {
    Cst(i64),
    /// One of the ranged index variables i0..i3.
    Idx(usize),
    /// One of the size variables N, M (fixed to concrete values at evaluation time).
    Size(usize),
    Add(Box<Shape>, Box<Shape>),
    Mul(Box<Shape>, Box<Shape>),
    Div(Box<Shape>, Box<Shape>),
    Mod(Box<Shape>, Box<Shape>),
}

const SIZES: [(&str, i64); 2] = [("N", 16), ("M", 8)];
const INDICES: [(&str, usize); 4] = [("i0", 0), ("i1", 1), ("i2", 0), ("i3", 1)];

fn size_expr(k: usize) -> ArithExpr {
    ArithExpr::size_var(SIZES[k % SIZES.len()].0)
}

fn index_expr(k: usize) -> ArithExpr {
    let (name, size_idx) = INDICES[k % INDICES.len()];
    ArithExpr::var_in_range(name, 0, size_expr(size_idx))
}

/// Builds the expression through the normalising smart constructors.
fn build_simplified(s: &Shape) -> ArithExpr {
    match s {
        Shape::Cst(c) => ArithExpr::cst(*c),
        Shape::Idx(k) => index_expr(*k),
        Shape::Size(k) => size_expr(*k),
        Shape::Add(a, b) => build_simplified(a) + build_simplified(b),
        Shape::Mul(a, b) => build_simplified(a) * build_simplified(b),
        Shape::Div(a, b) => build_simplified(a) / build_simplified(b),
        Shape::Mod(a, b) => build_simplified(a) % build_simplified(b),
    }
}

/// Evaluates the expression shape directly over integers (the ground truth).
fn eval_shape(s: &Shape, env: &Environment) -> Option<i64> {
    Some(match s {
        Shape::Cst(c) => *c,
        Shape::Idx(k) => env.get(INDICES[*k % INDICES.len()].0).expect("bound"),
        Shape::Size(k) => env.get(SIZES[*k % SIZES.len()].0).expect("bound"),
        Shape::Add(a, b) => eval_shape(a, env)? + eval_shape(b, env)?,
        Shape::Mul(a, b) => eval_shape(a, env)? * eval_shape(b, env)?,
        Shape::Div(a, b) => {
            let d = eval_shape(b, env)?;
            if d == 0 {
                return None;
            }
            eval_shape(a, env)?.div_euclid(d)
        }
        Shape::Mod(a, b) => {
            let d = eval_shape(b, env)?;
            if d == 0 {
                return None;
            }
            eval_shape(a, env)?.rem_euclid(d)
        }
    })
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    let leaf = prop_oneof![
        (0i64..6).prop_map(Shape::Cst),
        (0usize..4).prop_map(Shape::Idx),
        (0usize..2).prop_map(Shape::Size),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Shape::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Shape::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Shape::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Shape::Mod(Box::new(a), Box::new(b))),
        ]
    })
}

fn environment(i0: i64, i1: i64, i2: i64, i3: i64) -> Environment {
    Environment::new()
        .bind("N", SIZES[0].1)
        .bind("M", SIZES[1].1)
        .bind("i0", i0)
        .bind("i1", i1)
        .bind("i2", i2)
        .bind("i3", i3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Simplified expressions evaluate to the same value as the direct evaluation of the
    /// un-simplified tree, for any in-range assignment of the index variables.
    #[test]
    fn simplification_preserves_value(
        shape in shape_strategy(),
        i0 in 0i64..16,
        i1 in 0i64..8,
        i2 in 0i64..16,
        i3 in 0i64..8,
    ) {
        let env = environment(i0, i1, i2, i3);
        let expected = eval_shape(&shape, &env);
        // Division by zero cannot happen for the simplified expression when it cannot happen
        // for the raw tree, but the raw tree may hit it (e.g. `x / (i0 mod 1)`): skip those.
        if let Some(expected) = expected {
            let simplified = build_simplified(&shape);
            let actual = simplified.evaluate(&env);
            prop_assert_eq!(actual, Ok(expected));
        }
    }

    /// Simplification is idempotent: re-normalising a normalised expression does not change it.
    #[test]
    fn simplification_is_idempotent(shape in shape_strategy()) {
        let once = build_simplified(&shape);
        let twice = ArithExpr::sum([once.clone()]);
        prop_assert_eq!(once, twice);
    }

    /// The printer emits parseable, digit/identifier/operator-only output.
    #[test]
    fn printer_output_is_well_formed(shape in shape_strategy()) {
        let e = build_simplified(&shape);
        let s = e.to_string();
        prop_assert!(!s.is_empty());
        let balance = s.chars().fold(0i64, |acc, c| match c {
            '(' => acc + 1,
            ')' => acc - 1,
            _ => acc,
        });
        prop_assert_eq!(balance, 0, "unbalanced parentheses in {}", s);
    }
}
