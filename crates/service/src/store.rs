//! The persistent, versioned, size-bounded cache of derivations.
//!
//! On disk a store is a directory with two files, both written atomically (tmp file +
//! rename) so a crashed writer can never leave a half-written store:
//!
//! * `store.jsonl` — one compact JSON line per entry (see [`crate::wire`]), sorted by entry
//!   id, so the file is deterministic for a given set of entries and diffs are per-entry;
//! * `index.json` — the schema tag, the rule-set and cost-model versions the entries were
//!   recorded under, and the LRU order (least recently used first).
//!
//! Opening a store whose recorded versions differ from the requested ones drops every
//! entry ([`lift_telemetry::Event::CacheInvalidate`]): derivation chains recorded against
//! another rule set may not replay, and scores from another cost model are not comparable.
//! Individual lines that fail to parse (corruption, a renamed rule) are likewise dropped,
//! never served. Inserting beyond `capacity` evicts the least recently used entry
//! ([`lift_telemetry::Event::CacheEvict`], reason `lru`).

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use lift_rewrite::RuleOptions;
use lift_telemetry::json::{parse, Json};
use lift_telemetry::{Collector, Event};
use lift_vgpu::LaunchConfig;

use crate::key::CacheKey;
use crate::wire::{entry_from_json, entry_to_json, CachedDerivation, StoredEntry};
use crate::ServiceError;

/// The `index.json` schema tag; bump on incompatible layout changes.
pub const STORE_SCHEMA: &str = "lift-cache/v1";

/// An in-memory or directory-backed LRU cache of [`StoredEntry`]s.
#[derive(Debug)]
pub struct CacheStore {
    root: Option<PathBuf>,
    capacity: usize,
    rule_set_version: u32,
    cost_model_version: u32,
    entries: HashMap<String, StoredEntry>,
    /// LRU order over entry ids, least recently used first.
    order: Vec<String>,
    evictions: u64,
    invalidated: u64,
}

impl CacheStore {
    /// An empty, purely in-memory store (nothing is ever written to disk).
    pub fn in_memory(
        capacity: usize,
        rule_set_version: u32,
        cost_model_version: u32,
    ) -> CacheStore {
        CacheStore {
            root: None,
            capacity: capacity.max(1),
            rule_set_version,
            cost_model_version,
            entries: HashMap::new(),
            order: Vec::new(),
            evictions: 0,
            invalidated: 0,
        }
    }

    /// Opens (or initialises) the store at `root`, dropping every persisted entry whose
    /// generation does not match `rule_set_version`/`cost_model_version` and reporting the
    /// drop to `collector` as a [`Event::CacheInvalidate`].
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] when the directory cannot be created or the store files
    /// cannot be read.
    pub fn open(
        root: &Path,
        capacity: usize,
        rule_set_version: u32,
        cost_model_version: u32,
        collector: &dyn Collector,
    ) -> Result<CacheStore, ServiceError> {
        std::fs::create_dir_all(root)
            .map_err(|e| ServiceError::Io(format!("create {}: {e}", root.display())))?;
        let mut store = CacheStore::in_memory(capacity, rule_set_version, cost_model_version);
        store.root = Some(root.to_path_buf());

        let index_path = root.join("index.json");
        let store_path = root.join("store.jsonl");
        if !index_path.exists() || !store_path.exists() {
            return Ok(store);
        }
        let index_text = std::fs::read_to_string(&index_path)
            .map_err(|e| ServiceError::Io(format!("read {}: {e}", index_path.display())))?;
        let store_text = std::fs::read_to_string(&store_path)
            .map_err(|e| ServiceError::Io(format!("read {}: {e}", store_path.display())))?;
        let lines: Vec<&str> = store_text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .collect();

        let index = parse(&index_text).ok();
        let stale_reason = match &index {
            None => Some("corrupt index".to_string()),
            Some(doc) => {
                let schema = doc.get("schema").and_then(Json::as_str);
                let rsv = doc.get("rule_set_version").and_then(Json::as_f64);
                let cmv = doc.get("cost_model_version").and_then(Json::as_f64);
                if schema != Some(STORE_SCHEMA) {
                    Some("incompatible store schema".to_string())
                } else if rsv != Some(f64::from(rule_set_version)) {
                    Some(format!(
                        "rule set moved to v{rule_set_version} (store has v{})",
                        rsv.unwrap_or(0.0)
                    ))
                } else if cmv != Some(f64::from(cost_model_version)) {
                    Some(format!(
                        "cost model moved to v{cost_model_version} (store has v{})",
                        cmv.unwrap_or(0.0)
                    ))
                } else {
                    None
                }
            }
        };
        if let Some(reason) = stale_reason {
            store.invalidated += lines.len() as u64;
            if collector.enabled() && !lines.is_empty() {
                collector.record(Event::CacheInvalidate {
                    evicted: lines.len() as u32,
                    reason,
                });
            }
            // Rewrite the now-empty store so a stale generation is dropped exactly once.
            store.persist()?;
            return Ok(store);
        }

        let mut dropped = 0u32;
        for line in lines {
            match parse(line).ok().as_ref().and_then(entry_from_json) {
                Some(entry) => {
                    store.order.push(entry.key.id.clone());
                    store.entries.insert(entry.key.id.clone(), entry);
                }
                None => dropped += 1,
            }
        }
        if dropped > 0 {
            store.invalidated += u64::from(dropped);
            if collector.enabled() {
                collector.record(Event::CacheInvalidate {
                    evicted: dropped,
                    reason: "unreadable entries (corruption or renamed rules)".to_string(),
                });
            }
        }
        // Restore the persisted LRU order (ids missing from it sort last, by id).
        if let Some(order) = index
            .as_ref()
            .and_then(|d| d.get("order"))
            .and_then(Json::as_arr)
        {
            let persisted: Vec<String> = order
                .iter()
                .filter_map(|v| v.as_str())
                .filter(|id| store.entries.contains_key(*id))
                .map(str::to_string)
                .collect();
            let mut rest: Vec<String> = store
                .order
                .iter()
                .filter(|id| !persisted.contains(id))
                .cloned()
                .collect();
            rest.sort();
            store.order = persisted;
            store.order.extend(rest);
        }
        Ok(store)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total entries dropped by LRU pressure or collisions since this store was opened.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total entries dropped by version/corruption invalidation since this store was opened.
    pub fn invalidated(&self) -> u64 {
        self.invalidated
    }

    fn touch(&mut self, id: &str) {
        if let Some(at) = self.order.iter().position(|o| o == id) {
            let id = self.order.remove(at);
            self.order.push(id);
        }
    }

    /// Looks up `key`, enforcing the collision guard: an entry at the same address whose
    /// canonical rendering differs is *not* served — it is evicted (reason `collision`) and
    /// the lookup misses, so the caller re-derives and replaces it.
    pub(crate) fn lookup(
        &mut self,
        key: &CacheKey,
        collector: &dyn Collector,
    ) -> Option<CachedDerivation> {
        let entry = self.entries.get(&key.id)?;
        if entry.key.rendering != key.rendering {
            self.remove(&key.id.clone(), "collision", collector);
            return None;
        }
        let payload = entry.payload.clone();
        self.touch(&key.id);
        Some(payload)
    }

    /// Removes one entry, counting and reporting the eviction.
    pub(crate) fn remove(&mut self, id: &str, reason: &'static str, collector: &dyn Collector) {
        if self.entries.remove(id).is_some() {
            self.order.retain(|o| o != id);
            self.evictions += 1;
            if collector.enabled() {
                collector.record(Event::CacheEvict {
                    key: id.to_string(),
                    reason,
                });
            }
        }
    }

    /// Inserts (or replaces) an entry as most recently used, then evicts least-recently-used
    /// entries until the store is back within capacity.
    pub(crate) fn insert(&mut self, entry: StoredEntry, collector: &dyn Collector) {
        let id = entry.key.id.clone();
        if self.entries.insert(id.clone(), entry).is_some() {
            self.touch(&id);
        } else {
            self.order.push(id);
        }
        while self.entries.len() > self.capacity {
            let lru = self.order[0].clone();
            self.remove(&lru, "lru", collector);
        }
    }

    /// The tuned points of entries structurally similar to `skeleton` on `device` (shared
    /// high-level pattern skeleton, same device, different entry), most recently used first
    /// — the warm-start seeds for a cache-miss search.
    pub(crate) fn similar(
        &self,
        skeleton: &str,
        device: &str,
        exclude: &str,
    ) -> Vec<(RuleOptions, LaunchConfig)> {
        self.order
            .iter()
            .rev()
            .filter_map(|id| self.entries.get(id))
            .filter(|e| e.key.id != exclude && e.key.device == device && e.key.skeleton == skeleton)
            .map(|e| (e.payload.rule_options.clone(), e.payload.launch))
            .collect()
    }

    /// Writes the store to its directory (no-op for in-memory stores). Both files are
    /// written to a temporary sibling and renamed into place, so readers never observe a
    /// partial store.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] when a file cannot be written or renamed.
    pub fn persist(&self) -> Result<(), ServiceError> {
        let Some(root) = &self.root else {
            return Ok(());
        };
        let mut ids: Vec<&String> = self.entries.keys().collect();
        ids.sort();
        let mut lines = String::new();
        for id in ids {
            lines.push_str(&entry_to_json(&self.entries[id]).render_compact());
            lines.push('\n');
        }
        let index = Json::obj([
            ("schema", Json::str(STORE_SCHEMA)),
            (
                "rule_set_version",
                Json::num(f64::from(self.rule_set_version)),
            ),
            (
                "cost_model_version",
                Json::num(f64::from(self.cost_model_version)),
            ),
            (
                "order",
                Json::Arr(self.order.iter().map(Json::str).collect()),
            ),
        ]);
        write_atomic(&root.join("store.jsonl"), &lines)?;
        write_atomic(&root.join("index.json"), &index.render())
    }
}

fn write_atomic(path: &Path, content: &str) -> Result<(), ServiceError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, content)
        .map_err(|e| ServiceError::Io(format!("write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        ServiceError::Io(format!(
            "rename {} -> {}: {e}",
            tmp.display(),
            path.display()
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_telemetry::{counts_by_kind, InMemory, Null};

    fn entry(id: &str, rendering: &str, skeleton: &str) -> StoredEntry {
        StoredEntry {
            key: CacheKey {
                id: id.to_string(),
                hash: 0xabcd,
                rendering: rendering.to_string(),
                skeleton: skeleton.to_string(),
                device: "nvidia".to_string(),
            },
            payload: CachedDerivation {
                estimated_time: 42.5,
                steps: Vec::new(),
                rule_options: RuleOptions::default(),
                launch: LaunchConfig::d1(64, 16),
                kernel_source: format!("kernel void {id}() {{}}"),
            },
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("lift-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn persists_and_reopens_identically_with_lru_order() {
        let root = temp_root("roundtrip");
        let mut store = CacheStore::open(&root, 8, 1, 1, &Null).unwrap();
        store.insert(entry("a", "ra", "s"), &Null);
        store.insert(entry("b", "rb", "s"), &Null);
        // Touch `a` so the persisted LRU order is [b, a].
        let key_a = entry("a", "ra", "s").key;
        assert!(store.lookup(&key_a, &Null).is_some());
        store.persist().unwrap();

        let mut back = CacheStore::open(&root, 8, 1, 1, &Null).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.order, vec!["b".to_string(), "a".to_string()]);
        assert_eq!(
            back.lookup(&key_a, &Null).unwrap().kernel_source,
            "kernel void a() {}"
        );
        // Persisting an unchanged store is byte-identical (deterministic format).
        back.persist().unwrap();
        let first = std::fs::read_to_string(root.join("store.jsonl")).unwrap();
        back.persist().unwrap();
        assert_eq!(
            first,
            std::fs::read_to_string(root.join("store.jsonl")).unwrap()
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn capacity_overflow_evicts_the_least_recently_used() {
        let sink = InMemory::default();
        let mut store = CacheStore::in_memory(2, 1, 1);
        store.insert(entry("a", "ra", "s"), &sink);
        store.insert(entry("b", "rb", "s"), &sink);
        // `a` becomes most recently used, so inserting `c` must evict `b`.
        assert!(store.lookup(&entry("a", "ra", "s").key, &sink).is_some());
        store.insert(entry("c", "rc", "s"), &sink);
        assert_eq!(store.len(), 2);
        assert!(store.entries.contains_key("a"));
        assert!(!store.entries.contains_key("b"));
        assert_eq!(store.evictions(), 1);
        let counts = counts_by_kind(&sink.events());
        assert_eq!(
            counts.iter().find(|(k, _)| *k == "cache_evict"),
            Some(&("cache_evict", 1))
        );
    }

    #[test]
    fn collision_guard_never_serves_a_rendering_mismatch() {
        let sink = InMemory::default();
        let mut store = CacheStore::in_memory(4, 1, 1);
        store.insert(entry("a", "the real program", "s"), &sink);
        // Same 16-hex address, different canonical rendering: a 64-bit hash collision.
        let mut colliding = entry("a", "a different program", "s").key;
        colliding.hash = 0xabcd;
        assert_eq!(store.lookup(&colliding, &sink), None, "collision is a miss");
        assert!(
            store.is_empty(),
            "the colliding entry was evicted, not kept"
        );
        let events = sink.events();
        assert!(events.iter().any(|e| e.event.kind() == "cache_evict"));
    }

    #[test]
    fn version_bump_invalidates_the_whole_persisted_generation() {
        let root = temp_root("invalidate");
        let mut store = CacheStore::open(&root, 8, 1, 1, &Null).unwrap();
        store.insert(entry("a", "ra", "s"), &Null);
        store.insert(entry("b", "rb", "s"), &Null);
        store.persist().unwrap();

        let sink = InMemory::default();
        let bumped = CacheStore::open(&root, 8, 2, 1, &sink).unwrap();
        assert!(bumped.is_empty(), "a rule-set bump drops every entry");
        assert_eq!(bumped.invalidated(), 2);
        let events = sink.events();
        let invalidations: Vec<_> = events
            .iter()
            .filter(|e| e.event.kind() == "cache_invalidate")
            .collect();
        assert_eq!(
            invalidations.len(),
            1,
            "one invalidation for the generation"
        );
        // The stale lines are gone from disk too, not merely skipped.
        let text = std::fs::read_to_string(root.join("store.jsonl")).unwrap();
        assert!(
            text.is_empty(),
            "stale entries are dropped from the store file"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn similar_returns_same_skeleton_entries_most_recent_first() {
        let mut store = CacheStore::in_memory(8, 1, 1);
        store.insert(entry("a", "ra", "dot"), &Null);
        store.insert(entry("b", "rb", "mm"), &Null);
        store.insert(entry("c", "rc", "dot"), &Null);
        let seeds = store.similar("dot", "nvidia", "c");
        assert_eq!(
            seeds.len(),
            1,
            "same skeleton, same device, not the entry itself"
        );
        assert_eq!(store.similar("dot", "amd", "x"), Vec::new());
        let both = store.similar("dot", "nvidia", "zz");
        assert_eq!(both.len(), 2);
    }
}
