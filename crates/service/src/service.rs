//! The long-lived derivation service: request queue, batching/deduplication, warm starts.
//!
//! # Request lifecycle
//!
//! [`DerivationService::submit`] enqueues requests; [`DerivationService::drain_with`]
//! processes the queue as one batch:
//!
//! 1. **Key** — every request is content-addressed ([`crate::key::cache_key`]) and requests
//!    with the same address are grouped: N identical in-flight requests become one unit of
//!    work. Exactly one [`Event::CacheHit`] or [`Event::CacheMiss`] is emitted per group,
//!    so telemetry pins the deduplication factor.
//! 2. **Lookup** (serial) — each group probes the [`CacheStore`] under the collision guard;
//!    for misses, the warm-start seeds are collected from structurally similar entries
//!    (shared [`lift_rewrite::Term::skeleton`], same device).
//! 3. **Derive/validate** (parallel) — groups fan out over a bounded deterministic worker
//!    pool (`ServiceConfig::threads`, the same chunked in-order pattern as
//!    `ExplorationConfig::threads`). A *hit* replays its recorded chain through
//!    [`Enumerated::from_derivation`] (provenance) and re-scores it — re-running
//!    compilation, the static ownership pass, execution and output validation — so a stale
//!    cache can never serve an unsound kernel; a replay failure demotes the group to a cold
//!    derivation and evicts the entry. A *miss* runs the full tuner, hill-climbing from the
//!    warm-start seeds when any exist.
//! 4. **Merge** (serial) — cold results are inserted (LRU eviction applies), responses are
//!    assembled in submission order, and the store is persisted when directory-backed.
//!
//! Wall-clock cost: a warm hit scores exactly one candidate; a cold miss runs a full
//! enumerate+tune search — the orders-of-magnitude gap `cache_stats` measures.

use lift_ir::Program;
use lift_rewrite::{Enumerated, ExplorationConfig, ExploreError, RuleOptions};
use lift_telemetry::{Collector, Event, Null};
use lift_tuner::{tune_with, BestVariant, PointIndex, Strategy, TuningConfig};
use lift_vgpu::{LaunchConfig, COST_MODEL_VERSION};

use crate::key::{cache_key, CacheKey};
use crate::store::CacheStore;
use crate::wire::{CachedDerivation, StoredEntry};
use crate::ServiceError;

/// How the service answered a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// The derivation was replayed from the cache and re-validated.
    WarmHit,
    /// A full cold derivation ran for this request.
    ColdMiss,
    /// The request was deduplicated onto another in-flight request's cold derivation.
    Coalesced,
}

/// One derivation request: a named program plus the tuning configuration to search under
/// on a miss (device, space, strategy and exploration budgets).
#[derive(Clone, Debug)]
pub struct Request {
    /// Label used in telemetry and error messages.
    pub name: String,
    /// The high-level program to derive.
    pub program: Program,
    /// Device, tuning space, cold-search strategy and exploration budgets.
    pub config: TuningConfig,
}

/// The served derivation.
#[derive(Clone, Debug)]
pub struct Response {
    /// The request's label.
    pub name: String,
    /// How this response was produced.
    pub served: Served,
    /// The tuned, validated variant (estimated time, derivation chain, kernel source).
    pub variant: BestVariant,
    /// The tuned rule options behind the variant.
    pub rule_options: RuleOptions,
    /// The tuned launch configuration behind the variant.
    pub launch: LaunchConfig,
    /// Number of warm-start seeds the cold search climbed from (0 for hits and unseeded
    /// searches).
    pub warm_seeds: usize,
}

/// Counters over the lifetime of a [`DerivationService`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests drained.
    pub requests: u64,
    /// Requests answered from the cache.
    pub hits: u64,
    /// Unique keys that required a cold derivation.
    pub misses: u64,
    /// Requests deduplicated onto another request's derivation.
    pub coalesced: u64,
    /// Cold derivations actually run (including replay-failure fallbacks).
    pub derivations: u64,
    /// Cold derivations that hill-climbed from warm-start seeds.
    pub warm_started: u64,
    /// Cache hits whose replay failed validation (evicted and re-derived).
    pub replay_failures: u64,
}

/// Configuration of a [`DerivationService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Directory for the persistent store; `None` keeps the cache in memory only.
    pub root: Option<std::path::PathBuf>,
    /// Maximum cached entries before LRU eviction.
    pub capacity: usize,
    /// Worker threads for the parallel derive/validate phase: `0` uses the machine's
    /// available parallelism, `1` runs sequentially. Results are identical either way.
    pub threads: usize,
    /// Whether cache-miss searches are seeded from structurally similar cached workloads.
    pub warm_start: bool,
    /// Rule-set version the cache is keyed under (defaults to
    /// [`lift_rewrite::RULE_SET_VERSION`]; tests override it to simulate a bump).
    pub rule_set_version: u32,
    /// Cost-model version the cache is keyed under (defaults to
    /// [`lift_vgpu::COST_MODEL_VERSION`]).
    pub cost_model_version: u32,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            root: None,
            capacity: 256,
            threads: 0,
            warm_start: true,
            rule_set_version: lift_rewrite::RULE_SET_VERSION,
            cost_model_version: COST_MODEL_VERSION,
        }
    }
}

/// The long-lived derivation server. See the module docs for the request lifecycle.
#[derive(Debug)]
pub struct DerivationService {
    config: ServiceConfig,
    store: CacheStore,
    queue: Vec<Request>,
    stats: ServiceStats,
}

/// What the lookup phase decided for one deduplicated group.
enum Plan {
    Hit(CachedDerivation),
    Miss { seeds: Vec<PointIndex> },
}

/// What the derive/validate phase produced for one group.
struct Outcome {
    variant: BestVariant,
    rule_options: RuleOptions,
    launch: LaunchConfig,
    served_hit: bool,
    replay_failed: bool,
    warm_seeds: usize,
    estimated_time: f64,
}

impl DerivationService {
    /// Opens the service: loads (and version-checks) the persistent store when
    /// `config.root` is set, otherwise starts with an empty in-memory cache.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] when the store directory cannot be read or created.
    pub fn open(config: ServiceConfig) -> Result<DerivationService, ServiceError> {
        DerivationService::open_with(config, &Null)
    }

    /// Like [`DerivationService::open`], but reports invalidation of a stale persisted
    /// generation ([`Event::CacheInvalidate`]) to `collector`.
    ///
    /// # Errors
    ///
    /// See [`DerivationService::open`].
    pub fn open_with(
        config: ServiceConfig,
        collector: &dyn Collector,
    ) -> Result<DerivationService, ServiceError> {
        let store = match &config.root {
            Some(root) => CacheStore::open(
                root,
                config.capacity,
                config.rule_set_version,
                config.cost_model_version,
                collector,
            )?,
            None => CacheStore::in_memory(
                config.capacity,
                config.rule_set_version,
                config.cost_model_version,
            ),
        };
        Ok(DerivationService {
            config,
            store,
            queue: Vec::new(),
            stats: ServiceStats::default(),
        })
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// The cache behind the service (entry count, eviction/invalidation counters).
    pub fn store(&self) -> &CacheStore {
        &self.store
    }

    /// Number of submitted, not yet drained requests.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues a request for the next [`DerivationService::drain_with`].
    pub fn submit(&mut self, request: Request) {
        self.queue.push(request);
    }

    /// Convenience for a single synchronous request: submit, drain, return its response.
    ///
    /// # Errors
    ///
    /// See [`DerivationService::drain_with`].
    pub fn request_with(
        &mut self,
        request: Request,
        collector: &dyn Collector,
    ) -> Result<Response, ServiceError> {
        self.submit(request);
        let mut responses = self.drain_with(collector)?;
        Ok(responses.pop().expect("one request yields one response"))
    }

    /// Processes every queued request as one batch and returns the responses in submission
    /// order. See the module docs for the four phases.
    ///
    /// # Errors
    ///
    /// Returns the first keying, tuning or persistence error; the queue is consumed either
    /// way. An *individual infeasible point* inside a search is not an error — only an
    /// invalid input program or an exhausted search
    /// ([`ServiceError::NoVariant`]) is.
    pub fn drain_with(&mut self, collector: &dyn Collector) -> Result<Vec<Response>, ServiceError> {
        let requests = std::mem::take(&mut self.queue);
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        self.stats.requests += requests.len() as u64;

        // Phase 1: key and deduplicate. Groups keep first-submission order.
        let mut keys: Vec<CacheKey> = Vec::with_capacity(requests.len());
        for request in &requests {
            keys.push(
                cache_key(
                    &request.program,
                    &request.config.device.name,
                    &request.config.space,
                    self.config.rule_set_version,
                    self.config.cost_model_version,
                )
                .map_err(ServiceError::Explore)?,
            );
        }
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new(); // (first request idx, members)
        for (i, key) in keys.iter().enumerate() {
            match groups
                .iter_mut()
                .find(|(first, _)| keys[*first].id == key.id)
            {
                Some((_, members)) => members.push(i),
                None => groups.push((i, vec![i])),
            }
        }

        // Phase 2: serial cache lookup + warm-start seed collection.
        let telemetry = collector.enabled();
        let mut plans: Vec<Plan> = Vec::with_capacity(groups.len());
        for (first, _) in &groups {
            let key = &keys[*first];
            let request = &requests[*first];
            match self.store.lookup(key, collector) {
                Some(payload) => {
                    if telemetry {
                        collector.record(Event::CacheHit {
                            key: key.id.clone(),
                            program: request.name.clone(),
                        });
                    }
                    plans.push(Plan::Hit(payload));
                }
                None => {
                    if telemetry {
                        collector.record(Event::CacheMiss {
                            key: key.id.clone(),
                            program: request.name.clone(),
                        });
                    }
                    let seeds = if self.config.warm_start {
                        self.store
                            .similar(&key.skeleton, &key.device, &key.id)
                            .into_iter()
                            .filter_map(|(options, launch)| {
                                request.config.space.seed_for_options(&options, &launch)
                            })
                            .take(4)
                            .collect()
                    } else {
                        Vec::new()
                    };
                    plans.push(Plan::Miss { seeds });
                }
            }
        }

        // Phase 3: derive/validate groups on the bounded deterministic worker pool.
        let work: Vec<(usize, Plan)> = groups.iter().map(|(first, _)| *first).zip(plans).collect();
        let workers = worker_count(self.config.threads).min(work.len().max(1));
        let outcomes: Vec<Result<Outcome, ServiceError>> = if workers <= 1 {
            work.iter()
                .map(|(first, plan)| run_group(&requests[*first], plan, collector))
                .collect()
        } else {
            let chunk = work.len().div_ceil(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = work
                    .chunks(chunk)
                    .map(|chunk| {
                        let requests = &requests;
                        scope.spawn(move || {
                            chunk
                                .iter()
                                .map(|(first, plan)| run_group(&requests[*first], plan, collector))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("service worker panicked"))
                    .collect()
            })
        };

        // Phase 4: serial merge — store updates, stats, responses in submission order.
        let mut responses: Vec<Option<Response>> = (0..requests.len()).map(|_| None).collect();
        for ((first, members), outcome) in groups.iter().zip(outcomes) {
            let outcome = outcome?;
            let key = &keys[*first];
            if outcome.replay_failed {
                self.stats.replay_failures += 1;
                self.store.remove(&key.id, "replay_failed", collector);
            }
            if outcome.served_hit {
                self.stats.hits += members.len() as u64;
            } else {
                self.stats.misses += 1;
                self.stats.coalesced += members.len() as u64 - 1;
                self.stats.derivations += 1;
                if outcome.warm_seeds > 0 {
                    self.stats.warm_started += 1;
                }
                self.store.insert(
                    StoredEntry {
                        key: key.clone(),
                        payload: CachedDerivation {
                            estimated_time: outcome.estimated_time,
                            steps: outcome.variant.steps.clone(),
                            rule_options: outcome.rule_options.clone(),
                            launch: outcome.launch,
                            kernel_source: outcome.variant.kernel_source.clone(),
                        },
                    },
                    collector,
                );
            }
            for (slot, &member) in members.iter().enumerate() {
                let served = if outcome.served_hit {
                    Served::WarmHit
                } else if slot == 0 {
                    Served::ColdMiss
                } else {
                    Served::Coalesced
                };
                responses[member] = Some(Response {
                    name: requests[member].name.clone(),
                    served,
                    variant: outcome.variant.clone(),
                    rule_options: outcome.rule_options.clone(),
                    launch: outcome.launch,
                    warm_seeds: outcome.warm_seeds,
                });
            }
        }
        self.store.persist()?;
        Ok(responses
            .into_iter()
            .map(|r| r.expect("every request belongs to exactly one group"))
            .collect())
    }

    /// Flushes the store to disk (no-op for in-memory services).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] when the store cannot be written.
    pub fn persist(&self) -> Result<(), ServiceError> {
        self.store.persist()
    }
}

fn worker_count(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
}

/// Replays a cached chain and re-proves it end to end (typecheck, compile + ownership pass,
/// execute, validate against the reference). Any failure is a stale entry, not a served
/// result.
fn validate_hit(
    request: &Request,
    payload: &CachedDerivation,
    collector: &dyn Collector,
) -> Result<BestVariant, ExploreError> {
    let config = ExplorationConfig {
        rule_options: payload.rule_options.clone(),
        launch: payload.launch,
        device: request.config.device.clone(),
        ..request.config.base.clone()
    };
    let scored = Enumerated::from_derivation(&request.program, &payload.steps, &config)?
        .score_with(&config, collector)?;
    let v = scored.variants.first().ok_or_else(|| {
        ExploreError::Reference("cached derivation no longer passes validation".to_string())
    })?;
    Ok(BestVariant {
        estimated_time: v.estimated_time,
        derivation: v
            .derivation
            .iter()
            .map(|s| format!("{} @ {}", s.rule, s.location))
            .collect(),
        steps: v.derivation.clone(),
        kernel_source: v.kernel_source.clone(),
    })
}

/// Seeds a cold-search strategy with warm-start points (no-op for exhaustive walks and
/// empty seed lists).
fn seeded(strategy: &Strategy, seeds: Vec<PointIndex>) -> Strategy {
    if seeds.is_empty() {
        return strategy.clone();
    }
    match strategy {
        Strategy::Exhaustive => Strategy::Exhaustive,
        Strategy::RandomHillClimb {
            seed,
            samples,
            max_steps,
        } => Strategy::SeededHillClimb {
            seeds,
            seed: *seed,
            samples: *samples,
            max_steps: *max_steps,
        },
        Strategy::SeededHillClimb {
            seeds: existing,
            seed,
            samples,
            max_steps,
        } => {
            let mut merged = existing.clone();
            merged.extend(seeds);
            Strategy::SeededHillClimb {
                seeds: merged,
                seed: *seed,
                samples: *samples,
                max_steps: *max_steps,
            }
        }
    }
}

/// Runs one deduplicated group: validate a hit (falling back to a cold derivation when the
/// replay fails) or cold-derive a miss from its warm-start seeds.
fn run_group(
    request: &Request,
    plan: &Plan,
    collector: &dyn Collector,
) -> Result<Outcome, ServiceError> {
    let (seeds, replay_failed) = match plan {
        Plan::Hit(payload) => match validate_hit(request, payload, collector) {
            Ok(variant) => {
                return Ok(Outcome {
                    estimated_time: variant.estimated_time,
                    variant,
                    rule_options: payload.rule_options.clone(),
                    launch: payload.launch,
                    served_hit: true,
                    replay_failed: false,
                    warm_seeds: 0,
                })
            }
            Err(_) => (Vec::new(), true),
        },
        Plan::Miss { seeds } => (seeds.clone(), false),
    };
    let mut config = request.config.clone();
    let warm_seeds = seeds.len();
    config.strategy = seeded(&config.strategy, seeds);
    let result = tune_with(&request.program, &config, collector).map_err(ServiceError::Tune)?;
    let point = result
        .best_point
        .ok_or_else(|| ServiceError::NoVariant(request.name.clone()))?;
    let variant = result
        .best_variant
        .expect("a best point always carries its best variant");
    Ok(Outcome {
        estimated_time: variant.estimated_time,
        variant,
        rule_options: point.rule_options,
        launch: point.launch,
        served_hit: false,
        replay_failed,
        warm_seeds,
    })
}
