//! # Derivation-as-a-service
//!
//! The ROADMAP's production north star is a long-lived compiler service absorbing millions
//! of `(program, device)` requests. This crate supplies that serving layer on top of the
//! existing pipeline (`rewrite` → `codegen` → `vgpu` → `tuner`):
//!
//! * [`CacheStore`] — a persistent, versioned, content-addressed cache of tuned
//!   derivations: deterministic JSON-lines format, atomic writes, LRU/size-bounded
//!   eviction, and whole-generation invalidation when the rule set
//!   ([`lift_rewrite::RULE_SET_VERSION`]) or cost model ([`lift_vgpu::COST_MODEL_VERSION`])
//!   moves,
//! * [`cache_key`] — the content address: the PR 2 structural dedup hash of the canonical
//!   program plus the device, the searched tuning grid and both versions; the full
//!   canonical rendering is stored alongside the 8-byte hash as a collision guard,
//! * [`DerivationService`] — the request queue: concurrent requests for the same key are
//!   batched and deduplicated (N identical in-flight requests cost one derivation), groups
//!   run on a bounded deterministic worker pool, and cache-miss searches warm-start their
//!   hill climb from the tuned points of structurally similar cached workloads (shared
//!   high-level pattern skeleton, [`lift_rewrite::Term::skeleton`]).
//!
//! A warm hit is not trusted blindly: the recorded chain replays through the provenance
//! machinery ([`lift_rewrite::Enumerated::from_derivation`]) and re-runs compilation (with
//! the static parallelism-ownership pass), virtual-GPU execution and output validation, so
//! a stale cache can never serve an unsound kernel — it can only cost a re-derivation.
//!
//! ```
//! use lift_service::{DerivationService, Request, Served, ServiceConfig};
//! use lift_tuner::{Strategy, TuningConfig, Workload};
//! use lift_vgpu::DeviceProfile;
//!
//! let mut service = DerivationService::open(ServiceConfig::default()).expect("opens");
//! let workload = Workload::dot_product();
//! let device = DeviceProfile::nvidia();
//! let mut config = TuningConfig::new(
//!     device.clone(),
//!     workload.space_for(&device),
//!     Strategy::RandomHillClimb { seed: 1, samples: 2, max_steps: 2 },
//! );
//! config.base.max_candidates = 400; // keep the doctest fast
//! let request = Request {
//!     name: workload.name.to_string(),
//!     program: workload.program.clone(),
//!     config,
//! };
//! let cold = service
//!     .request_with(request.clone(), &lift_telemetry::Null)
//!     .expect("cold derivation succeeds");
//! assert_eq!(cold.served, Served::ColdMiss);
//! let warm = service
//!     .request_with(request, &lift_telemetry::Null)
//!     .expect("warm hit succeeds");
//! assert_eq!(warm.served, Served::WarmHit);
//! assert_eq!(warm.variant.kernel_source, cold.variant.kernel_source);
//! ```

pub mod key;
pub mod service;
pub mod store;
pub mod wire;

pub use key::{cache_key, space_fingerprint, CacheKey};
pub use service::{DerivationService, Request, Response, Served, ServiceConfig, ServiceStats};
pub use store::{CacheStore, STORE_SCHEMA};
pub use wire::{CachedDerivation, StoredEntry};

/// Errors from the derivation service.
#[derive(Debug)]
pub enum ServiceError {
    /// Keying or replaying a request failed (invalid program, stale chain).
    Explore(lift_rewrite::ExploreError),
    /// The cold-path tuner rejected the request.
    Tune(lift_tuner::TuneError),
    /// A search finished without a single validated variant.
    NoVariant(String),
    /// The persistent store could not be read or written.
    Io(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Explore(e) => write!(f, "exploration failed: {e}"),
            ServiceError::Tune(e) => write!(f, "tuning failed: {e}"),
            ServiceError::NoVariant(name) => {
                write!(f, "no validated variant found for request `{name}`")
            }
            ServiceError::Io(e) => write!(f, "cache store I/O failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}
