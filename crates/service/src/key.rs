//! Cache-key anatomy: how a derivation request is content-addressed.
//!
//! The address of a cache entry is built from everything that changes *which tuned
//! derivation is correct to serve*:
//!
//! * the canonical structural hash of the program ([`lift_rewrite::Term::dedup_key`], via
//!   [`lift_rewrite::canonical_key`]) — the PR 2 dedup hash, computed after type inference
//!   and tree normalisation so a program hashes identically whether it is keyed or
//!   enumerated,
//! * the device profile name — the cost model that ranked the variants,
//! * a fingerprint of the searched [`TuningSpace`] grid (candidate rule-option sets and
//!   launches) — two requests searching different grids may legitimately tune to different
//!   points,
//! * the rule-set version ([`lift_rewrite::RULE_SET_VERSION`]) and cost-model version
//!   ([`lift_vgpu::COST_MODEL_VERSION`]) — recorded chains and scores are meaningless
//!   across either bump.
//!
//! The search *strategy* (budgets, seeds) is deliberately excluded: the cache stores
//! derivations, not searches, so a request is happy to receive a tuned point found under a
//! different budget.
//!
//! The 8-byte structural hash is only the *address*; the entry stores the full canonical
//! rendering and [`CacheStore`](crate::CacheStore) lookups compare it against the
//! request's, so a 64-bit collision degrades to a cache miss instead of serving a wrong
//! derivation.

use std::hash::{Hash, Hasher};

use lift_ir::Program;
use lift_rewrite::{canonical_key, ExploreError, StableHasher};
use lift_tuner::TuningSpace;

/// The full identity of a cache entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheKey {
    /// The 16-hex-digit entry address: a stable hash over the program's structural hash,
    /// the device name, the space fingerprint and both versions.
    pub id: String,
    /// The canonical structural hash of the program ([`lift_rewrite::Term::dedup_key`]).
    pub hash: u64,
    /// The full canonical rendering guarding [`CacheKey::hash`] against collisions.
    pub rendering: String,
    /// The high-level pattern skeleton ([`lift_rewrite::Term::skeleton`]) — the similarity
    /// key for warm-starting searches from structurally related cached workloads.
    pub skeleton: String,
    /// Name of the device profile the entry was tuned for.
    pub device: String,
}

/// A stable fingerprint of a tuning grid: candidate split/width/tile sets and launches in
/// order. Points of the key because a request searching a different grid may tune elsewhere.
pub fn space_fingerprint(space: &TuningSpace) -> u64 {
    let mut h = StableHasher::new();
    space.split_sets.hash(&mut h);
    space.width_sets.hash(&mut h);
    space.tile_sets.hash(&mut h);
    for launch in &space.launches {
        launch.hash(&mut h);
    }
    h.finish()
}

/// Builds the [`CacheKey`] for a derivation request.
///
/// # Errors
///
/// Returns the underlying [`ExploreError`] when the program does not typecheck or cannot be
/// converted to tree form (the same failures [`lift_rewrite::enumerate`] would report).
pub fn cache_key(
    program: &Program,
    device: &str,
    space: &TuningSpace,
    rule_set_version: u32,
    cost_model_version: u32,
) -> Result<CacheKey, ExploreError> {
    let canonical = canonical_key(program)?;
    let mut h = StableHasher::new();
    h.write_u64(canonical.hash);
    device.hash(&mut h);
    h.write_u64(space_fingerprint(space));
    h.write_u32(rule_set_version);
    h.write_u32(cost_model_version);
    Ok(CacheKey {
        id: format!("{:016x}", h.finish()),
        hash: canonical.hash,
        rendering: canonical.rendering,
        skeleton: canonical.skeleton,
        device: device.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_tuner::Workload;
    use lift_vgpu::DeviceProfile;

    #[test]
    fn keys_are_deterministic_and_separate_devices_and_versions() {
        let w = Workload::dot_product();
        let device = DeviceProfile::nvidia();
        let space = w.space_for(&device);
        let a = cache_key(&w.program, &device.name, &space, 1, 1).unwrap();
        let b = cache_key(&w.program, &device.name, &space, 1, 1).unwrap();
        assert_eq!(a, b, "keying is a pure function of the request");
        let amd = DeviceProfile::amd();
        let c = cache_key(&w.program, &amd.name, &w.space_for(&amd), 1, 1).unwrap();
        assert_ne!(a.id, c.id, "devices are separate cache generations");
        let d = cache_key(&w.program, &device.name, &space, 2, 1).unwrap();
        assert_ne!(a.id, d.id, "a rule-set bump changes every address");
        assert_eq!(
            a.hash, d.hash,
            "the structural hash itself is version-independent"
        );
    }

    #[test]
    fn structurally_similar_workloads_share_a_skeleton_but_not_an_id() {
        let mm = Workload::matrix_multiply();
        let tiled = Workload::mm_tiled();
        let device = DeviceProfile::nvidia();
        let a = cache_key(&mm.program, &device.name, &mm.space_for(&device), 1, 1).unwrap();
        let b = cache_key(
            &tiled.program,
            &device.name,
            &tiled.space_for(&device),
            1,
            1,
        )
        .unwrap();
        assert_eq!(
            a.skeleton, b.skeleton,
            "same high-level program, same skeleton"
        );
        assert_ne!(a.id, b.id, "different search grids are different entries");
    }
}
