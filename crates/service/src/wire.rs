//! The deterministic on-disk format of cache entries.
//!
//! One cache entry is one single-line JSON document (rendered with
//! [`lift_telemetry::json::Json::render_compact`]) in `store.jsonl`, so the store is
//! greppable, diffable and appendable. Everything needed to *reconstruct and re-prove* the
//! tuned variant is stored — the structured derivation chain, the tuned rule options and
//! launch — plus the collision-guard rendering and the warm-start skeleton. Floating-point
//! times are serialised as IEEE-754 bit patterns (`time_bits`) so the roundtrip is exact;
//! a rounded `estimated_time` rides along for human readers.
//!
//! Deserialisation is strict-but-total: a line that does not parse, names an unknown rule,
//! or is missing a field yields `None` and the entry is dropped (and reported) instead of
//! being served.

use lift_rewrite::{
    all_rules, format_location, DerivationStep, Location, RuleOptions, Step, TileSize,
};
use lift_telemetry::json::Json;
use lift_vgpu::LaunchConfig;

use crate::key::CacheKey;

/// The cached product of one cold derivation: everything a warm hit needs to replay,
/// re-validate and serve the tuned variant.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedDerivation {
    /// Estimated time of the variant when it was derived (informational — a warm hit
    /// re-scores through the real pipeline).
    pub estimated_time: f64,
    /// The replayable derivation chain of the tuned best variant.
    pub steps: Vec<DerivationStep>,
    /// The tuned rule options ([`lift_tuner::TuningPoint::rule_options`]).
    pub rule_options: RuleOptions,
    /// The tuned launch configuration.
    pub launch: LaunchConfig,
    /// The generated OpenCL kernel source at derivation time (cross-checked against the
    /// replayed variant by the differential test).
    pub kernel_source: String,
}

/// One stored cache entry: its identity plus the cached derivation.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredEntry {
    /// The content address and collision/similarity metadata.
    pub key: CacheKey,
    /// The cached derivation.
    pub payload: CachedDerivation,
}

fn path_to_string(path: &Location) -> String {
    let mut out = String::new();
    for (i, step) in path.iter().enumerate() {
        if i > 0 {
            out.push('.');
        }
        match step {
            Step::Arg(n) => out.push_str(&format!("a{n}")),
            Step::Body { peel } => out.push_str(&format!("b{peel}")),
        }
    }
    out
}

fn path_from_string(s: &str) -> Option<Location> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    let mut path = Vec::new();
    for token in s.split('.') {
        let (tag, n) = token.split_at(1);
        let n: usize = n.parse().ok()?;
        match tag {
            "a" => path.push(Step::Arg(n)),
            "b" => path.push(Step::Body { peel: n }),
            _ => return None,
        }
    }
    Some(path)
}

fn step_to_json(step: &DerivationStep) -> Json {
    Json::obj([
        ("rule", Json::str(step.rule)),
        ("path", Json::str(path_to_string(&step.path))),
        ("alt", Json::num(step.alternative as f64)),
    ])
}

fn step_from_json(doc: &Json) -> Option<DerivationStep> {
    let name = doc.get("rule")?.as_str()?;
    // Re-anchor the rule name in the current rule set: an entry recorded against a rule
    // that no longer exists is stale by definition and must not deserialise.
    let rule = all_rules().iter().find(|r| r.name == name)?;
    let path = path_from_string(doc.get("path")?.as_str()?)?;
    let alternative = doc.get("alt")?.as_f64()? as usize;
    Some(DerivationStep {
        rule: rule.name,
        kind: rule.kind,
        location: format_location(&path),
        path,
        alternative,
    })
}

fn usizes(values: &[usize]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::num(v as f64)).collect())
}

fn launch_to_json(launch: &LaunchConfig) -> Json {
    Json::obj([
        ("global", usizes(&launch.global)),
        ("local", usizes(&launch.local)),
    ])
}

fn usize3_from_json(doc: &Json) -> Option<[usize; 3]> {
    let arr = doc.as_arr()?;
    if arr.len() != 3 {
        return None;
    }
    let mut out = [0usize; 3];
    for (slot, v) in out.iter_mut().zip(arr) {
        *slot = v.as_f64()? as usize;
    }
    Some(out)
}

fn launch_from_json(doc: &Json) -> Option<LaunchConfig> {
    Some(LaunchConfig {
        global: usize3_from_json(doc.get("global")?)?,
        local: usize3_from_json(doc.get("local")?)?,
    })
}

/// Serialises one entry into the single-line `store.jsonl` document.
pub(crate) fn entry_to_json(entry: &StoredEntry) -> Json {
    let opts = &entry.payload.rule_options;
    Json::obj([
        ("id", Json::str(&entry.key.id)),
        ("hash", Json::str(format!("{:016x}", entry.key.hash))),
        ("device", Json::str(&entry.key.device)),
        ("rendering", Json::str(&entry.key.rendering)),
        ("skeleton", Json::str(&entry.key.skeleton)),
        ("estimated_time", Json::num(entry.payload.estimated_time)),
        (
            "time_bits",
            Json::str(format!("{:016x}", entry.payload.estimated_time.to_bits())),
        ),
        (
            "steps",
            Json::Arr(entry.payload.steps.iter().map(step_to_json).collect()),
        ),
        (
            "split_sizes",
            Json::Arr(
                opts.split_sizes
                    .iter()
                    .map(|&v| Json::num(v as f64))
                    .collect(),
            ),
        ),
        ("vector_widths", usizes(&opts.vector_widths)),
        (
            "tile_sizes",
            Json::Arr(
                opts.tile_sizes
                    .iter()
                    .map(|t| Json::Arr(vec![Json::num(t.y as f64), Json::num(t.x as f64)]))
                    .collect(),
            ),
        ),
        ("launch", launch_to_json(&entry.payload.launch)),
        ("kernel", Json::str(&entry.payload.kernel_source)),
    ])
}

/// Deserialises one `store.jsonl` document; `None` for anything malformed or stale.
pub(crate) fn entry_from_json(doc: &Json) -> Option<StoredEntry> {
    let steps = doc
        .get("steps")?
        .as_arr()?
        .iter()
        .map(step_from_json)
        .collect::<Option<Vec<_>>>()?;
    let split_sizes = doc
        .get("split_sizes")?
        .as_arr()?
        .iter()
        .map(|v| v.as_f64().map(|f| f as i64))
        .collect::<Option<Vec<_>>>()?;
    let vector_widths = doc
        .get("vector_widths")?
        .as_arr()?
        .iter()
        .map(|v| v.as_f64().map(|f| f as usize))
        .collect::<Option<Vec<_>>>()?;
    let tile_sizes = doc
        .get("tile_sizes")?
        .as_arr()?
        .iter()
        .map(|t| {
            let pair = t.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            Some(TileSize {
                y: pair[0].as_f64()? as i64,
                x: pair[1].as_f64()? as i64,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let time_bits = u64::from_str_radix(doc.get("time_bits")?.as_str()?, 16).ok()?;
    Some(StoredEntry {
        key: CacheKey {
            id: doc.get("id")?.as_str()?.to_string(),
            hash: u64::from_str_radix(doc.get("hash")?.as_str()?, 16).ok()?,
            rendering: doc.get("rendering")?.as_str()?.to_string(),
            skeleton: doc.get("skeleton")?.as_str()?.to_string(),
            device: doc.get("device")?.as_str()?.to_string(),
        },
        payload: CachedDerivation {
            estimated_time: f64::from_bits(time_bits),
            steps,
            rule_options: RuleOptions {
                split_sizes,
                vector_widths,
                tile_sizes,
            },
            launch: launch_from_json(doc.get("launch")?)?,
            kernel_source: doc.get("kernel")?.as_str()?.to_string(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_rewrite::RuleKind;
    use lift_telemetry::json::parse;

    fn sample_entry() -> StoredEntry {
        let rule = all_rules()
            .iter()
            .find(|r| r.kind == RuleKind::Lowering)
            .expect("the rule set has lowering rules");
        let path = vec![Step::Arg(0), Step::Body { peel: 1 }];
        StoredEntry {
            key: CacheKey {
                id: "00ff00ff00ff00ff".to_string(),
                hash: 0x1234_5678_9abc_def0,
                rendering: "join (map f (split 4 xs))".to_string(),
                skeleton: "join(map[uf](split(arg)))".to_string(),
                device: "nvidia".to_string(),
            },
            payload: CachedDerivation {
                estimated_time: 1234.567891,
                steps: vec![DerivationStep {
                    rule: rule.name,
                    kind: rule.kind,
                    location: format_location(&path),
                    path,
                    alternative: 2,
                }],
                rule_options: RuleOptions {
                    split_sizes: vec![2, 4],
                    vector_widths: vec![4],
                    tile_sizes: vec![TileSize::d2(4, 8)],
                },
                launch: LaunchConfig::d2((64, 16), (8, 4)),
                kernel_source: "kernel void k() { /* \"quoted\" */ }".to_string(),
            },
        }
    }

    #[test]
    fn entries_roundtrip_bit_exactly_through_the_compact_line() {
        let entry = sample_entry();
        let line = entry_to_json(&entry).render_compact();
        assert!(!line.contains('\n'), "one entry = one line");
        let back = entry_from_json(&parse(&line).expect("line parses")).expect("entry loads");
        assert_eq!(back, entry, "roundtrip is exact, including the f64 time");
    }

    #[test]
    fn unknown_rules_and_malformed_paths_are_rejected_not_served() {
        let entry = sample_entry();
        let line = entry_to_json(&entry).render_compact();
        let renamed = line.replace(entry.payload.steps[0].rule, "no-such-rule-anymore");
        assert!(entry_from_json(&parse(&renamed).unwrap()).is_none());
        let doc = parse(&line.replace("\"a0.b1\"", "\"x9\"")).unwrap();
        assert!(entry_from_json(&doc).is_none());
    }

    #[test]
    fn root_locations_roundtrip_as_the_empty_path() {
        assert_eq!(
            path_from_string(&path_to_string(&Vec::new())),
            Some(Vec::new())
        );
        let deep = vec![Step::Body { peel: 0 }, Step::Arg(3), Step::Body { peel: 2 }];
        assert_eq!(path_from_string(&path_to_string(&deep)), Some(deep));
    }
}
