//! The tuning driver: walks a [`TuningSpace`] with a [`Strategy`], evaluating every visited
//! `(RuleOptions, LaunchConfig)` point through the two-phase exploration API and tracking
//! the best validated variant.
//!
//! Evaluation of one point runs `rewrite` (rule search) → `codegen` (compilation with the
//! point's launch threaded into the [`CompilationOptions`]) → `vgpu` (execution, correctness
//! validation against the interpreter, cost counters) → the device cost model. Points that
//! share rule options share one [`Enumerated`] candidate set — the launch only affects
//! scoring — so a launch sweep re-uses the expensive rule search instead of repeating it.

use std::collections::HashMap;

use lift_codegen::CompilationOptions;
use lift_ir::Program;
use lift_rewrite::{Enumerated, ExplorationConfig, ExploreError};
use lift_telemetry::{Collector, Event, Null};
use lift_vgpu::DeviceProfile;

use crate::search::{drive, Strategy};
use crate::space::{PointIndex, TuningPoint, TuningSpace};

/// Renders a tuning point compactly for telemetry events, e.g.
/// `splits=[2, 4] widths=[4] tiles=[] launch=64x16`.
pub(crate) fn point_label(point: &TuningPoint) -> String {
    format!(
        "splits={:?} widths={:?} tiles={:?} launch={}",
        point.rule_options.split_sizes,
        point.rule_options.vector_widths,
        point.rule_options.tile_sizes,
        launch_label(&point.launch)
    )
}

fn launch_label(launch: &lift_vgpu::LaunchConfig) -> String {
    let dims = |d: [usize; 3]| {
        let mut s = d[0].to_string();
        for v in &d[1..] {
            if *v > 1 {
                s.push('x');
                s.push_str(&v.to_string());
            }
        }
        s
    };
    format!("{}/{}", dims(launch.global), dims(launch.local))
}

/// Errors from the tuning driver.
#[derive(Clone, Debug)]
pub enum TuneError {
    /// The tuning space contains no points.
    EmptySpace,
    /// The underlying exploration rejected the input program.
    Explore(ExploreError),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::EmptySpace => write!(f, "the tuning space contains no points"),
            TuneError::Explore(e) => write!(f, "exploration failed: {e}"),
        }
    }
}

impl std::error::Error for TuneError {}

impl From<ExploreError> for TuneError {
    fn from(e: ExploreError) -> Self {
        TuneError::Explore(e)
    }
}

/// Everything the tuner needs: the target device, the space, the strategy and the base
/// exploration budgets (whose `rule_options`, `launch`, `device` and `compile_options`
/// launch sizes are overridden per point).
#[derive(Clone, Debug)]
pub struct TuningConfig {
    /// The device profile tuned for (cost model, launch limits).
    pub device: DeviceProfile,
    /// The grid of candidate rule options and launches.
    pub space: TuningSpace,
    /// How the grid is walked.
    pub strategy: Strategy,
    /// Search budgets and execution options shared by every point (depth, beam, candidate
    /// cap, threads, sizes, race detection, and the virtual-GPU engine selection — every
    /// point's scoring runs on `base.engine`).
    pub base: ExplorationConfig,
}

impl TuningConfig {
    /// A configuration with the default exploration budgets, compiler options derived from
    /// the device ([`CompilationOptions::for_device`]) and the given space and strategy.
    pub fn new(device: DeviceProfile, space: TuningSpace, strategy: Strategy) -> TuningConfig {
        let base = ExplorationConfig {
            compile_options: CompilationOptions::for_device(&device),
            device: device.clone(),
            ..ExplorationConfig::default()
        };
        TuningConfig {
            device,
            space,
            strategy,
            base,
        }
    }
}

/// The best validated variant found at the best point.
#[derive(Clone, Debug, PartialEq)]
pub struct BestVariant {
    /// Estimated execution time under the tuned device's cost model.
    pub estimated_time: f64,
    /// The derivation chain (`rule @ location` per step), human-readable.
    pub derivation: Vec<String>,
    /// The structured derivation chain behind [`BestVariant::derivation`], replayable
    /// through [`lift_rewrite::replay`]. The derivation-service cache persists these so a
    /// warm hit reconstructs the exact variant without re-searching.
    pub steps: Vec<lift_rewrite::DerivationStep>,
    /// The generated OpenCL kernel source.
    pub kernel_source: String,
}

/// One evaluated point, in evaluation order.
#[derive(Clone, Debug, PartialEq)]
pub struct TrajectoryEntry {
    /// The evaluated point.
    pub point: TuningPoint,
    /// Estimated time of the point's best validated variant (`None`: no variant survived).
    pub best_time: Option<f64>,
    /// Fully lowered candidates the point's exploration produced.
    pub lowered: usize,
    /// Validated variants the point's exploration returned.
    pub variants: usize,
    /// Whether this point improved on every earlier point.
    pub improved: bool,
}

/// The outcome of one tuning run.
#[derive(Clone, Debug, PartialEq)]
pub struct TuningResult {
    /// Name of the tuned device profile.
    pub device: String,
    /// The best point found, if any point produced a validated variant.
    pub best_point: Option<TuningPoint>,
    /// The best variant at [`TuningResult::best_point`].
    pub best_variant: Option<BestVariant>,
    /// Every distinct evaluated point, in evaluation order.
    pub trajectory: Vec<TrajectoryEntry>,
    /// Number of distinct points evaluated.
    pub points_evaluated: usize,
    /// Rule searches actually run (one per distinct `RuleOptions` visited).
    pub enumerations: usize,
    /// Point evaluations that re-used a cached rule search.
    pub enumeration_cache_hits: usize,
}

struct Evaluator<'a> {
    program: &'a Program,
    config: &'a TuningConfig,
    collector: &'a dyn Collector,
    /// One rule search per `(split_set, width_set, tile_set)` — launches share it.
    enumerated: HashMap<(usize, usize, usize), Enumerated>,
    /// Memoised objective per visited index (strategies may revisit).
    memo: HashMap<PointIndex, Option<f64>>,
    result: TuningResult,
}

impl Evaluator<'_> {
    /// Emits the [`Event::TunerPoint`] for the trajectory entry just pushed.
    fn record_point(&self, entry: &TrajectoryEntry, cache_hit: bool) {
        if self.collector.enabled() {
            self.collector.record(Event::TunerPoint {
                index: (self.result.points_evaluated - 1) as u32,
                point: point_label(&entry.point),
                best_time: entry.best_time,
                lowered: entry.lowered as u32,
                variants: entry.variants as u32,
                improved: entry.improved,
                cache_hit,
            });
        }
    }

    fn eval(&mut self, index: PointIndex) -> Result<Option<f64>, TuneError> {
        if let Some(cached) = self.memo.get(&index) {
            return Ok(*cached);
        }
        let point = self.config.space.point(index);
        let key = (index.split_set, index.width_set, index.tile_set);
        // `config.launch` is the single source of the launch: scoring threads it into the
        // compiler options itself (see `ExplorationConfig::compile_options`).
        let config = ExplorationConfig {
            rule_options: point.rule_options.clone(),
            launch: point.launch,
            device: self.config.device.clone(),
            ..self.config.base.clone()
        };
        let cache_hit = self.enumerated.contains_key(&key);
        if cache_hit {
            self.result.enumeration_cache_hits += 1;
        } else {
            self.result.enumerations += 1;
            let enumerated = lift_rewrite::enumerate_with(self.program, &config, self.collector)?;
            self.enumerated.insert(key, enumerated);
        }
        let enumerated = &self.enumerated[&key];
        let scored = match enumerated.score_with(&config, self.collector) {
            Ok(scored) => scored,
            // A launch the device rejects is an infeasible point, not a failed tuning run.
            Err(ExploreError::Launch(_)) => {
                self.memo.insert(index, None);
                self.result.points_evaluated += 1;
                self.result.trajectory.push(TrajectoryEntry {
                    point,
                    best_time: None,
                    lowered: 0,
                    variants: 0,
                    improved: false,
                });
                self.record_point(
                    self.result.trajectory.last().expect("entry just pushed"),
                    cache_hit,
                );
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        };
        let best_time = scored.variants.first().map(|v| v.estimated_time);
        let improved = match (best_time, &self.result.best_variant) {
            (Some(t), Some(best)) => t < best.estimated_time,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if improved {
            let v = &scored.variants[0];
            self.result.best_point = Some(point.clone());
            self.result.best_variant = Some(BestVariant {
                estimated_time: v.estimated_time,
                derivation: v
                    .derivation
                    .iter()
                    .map(|s| format!("{} @ {}", s.rule, s.location))
                    .collect(),
                steps: v.derivation.clone(),
                kernel_source: v.kernel_source.clone(),
            });
        }
        self.result.points_evaluated += 1;
        self.result.trajectory.push(TrajectoryEntry {
            point,
            best_time,
            lowered: scored.lowered,
            variants: scored.variants.len(),
            improved,
        });
        self.record_point(
            self.result.trajectory.last().expect("entry just pushed"),
            cache_hit,
        );
        self.memo.insert(index, best_time);
        Ok(best_time)
    }
}

/// Tunes `program` over `config.space` and returns the best `(RuleOptions, LaunchConfig)`
/// point, its best variant, and the full evaluation trajectory.
///
/// # Errors
///
/// Returns [`TuneError::EmptySpace`] for an empty space and [`TuneError::Explore`] when the
/// input program itself is invalid (an individual infeasible point is recorded in the
/// trajectory instead).
pub fn tune(program: &Program, config: &TuningConfig) -> Result<TuningResult, TuneError> {
    tune_with(program, config, &Null)
}

/// Like [`tune`], but emits the search trajectory to `collector`: one `TunerPoint` event per
/// evaluated point (its config, objective, accept/reject and enumeration-cache status),
/// `sample`/`climb` phase spans and one `TunerMove` event per accepted hill-climb move —
/// plus everything the underlying explorations emit. With the default
/// [`lift_telemetry::Null`] collector this is exactly [`tune`].
///
/// # Errors
///
/// See [`tune`].
pub fn tune_with(
    program: &Program,
    config: &TuningConfig,
    collector: &dyn Collector,
) -> Result<TuningResult, TuneError> {
    if config.space.is_empty() {
        return Err(TuneError::EmptySpace);
    }
    let mut evaluator = Evaluator {
        program,
        config,
        collector,
        enumerated: HashMap::new(),
        memo: HashMap::new(),
        result: TuningResult {
            device: config.device.name.clone(),
            best_point: None,
            best_variant: None,
            trajectory: Vec::new(),
            points_evaluated: 0,
            enumerations: 0,
            enumeration_cache_hits: 0,
        },
    };
    drive(
        &config.strategy,
        &config.space,
        &mut |index| evaluator.eval(index),
        &|index| point_label(&config.space.point(index)),
        collector,
    )?;
    Ok(evaluator.result)
}
