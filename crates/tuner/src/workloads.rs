//! The tuned workloads: high-level programs from `lift-benchmarks` paired with the problem
//! parallelism the launch space is sized for.

use lift_benchmarks::{convolution, dot_product, jacobi, mm, nbody};
use lift_ir::Program;
use lift_vgpu::DeviceProfile;

use crate::space::TuningSpace;

/// A named high-level program the auto-tuner can be pointed at.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Stable name used in reports (`BENCH_autotune.json` keys).
    pub name: &'static str,
    /// The high-level (backend-agnostic `map`/`reduce`) program.
    pub program: Program,
    /// Number of data-parallel elements, used to size the launch space (see
    /// [`TuningSpace::d1_for_device`] for how global sizes derive from it).
    pub parallelism: usize,
    /// Candidate `RuleOptions::tile_sizes` sets for the stencil workloads (empty for
    /// workloads without a tiling dimension — the space keeps its singleton default).
    pub tile_sets: Vec<Vec<i64>>,
}

impl Workload {
    /// The partial dot product of Listing 1 (`n = 512`).
    pub fn dot_product() -> Workload {
        Workload {
            name: "dot_product",
            program: dot_product::high_level_program(512),
            parallelism: 512,
            tile_sets: Vec::new(),
        }
    }

    /// Matrix multiplication (`16 × 16 × 16`).
    pub fn matrix_multiply() -> Workload {
        Workload {
            name: "matrix_multiply",
            program: mm::high_level_program(16, 16, 16),
            parallelism: 16,
            tile_sets: Vec::new(),
        }
    }

    /// The one-dimensional N-Body simulation (`n = 48`; interactions scale quadratically
    /// with the body count, and the virtual GPU executes them serially).
    pub fn nbody() -> Workload {
        Workload {
            name: "nbody",
            program: nbody::high_level_program(48),
            parallelism: 48,
            tile_sets: Vec::new(),
        }
    }

    /// The 17-point 1D convolution over 256 outputs, derived from its high-level stencil
    /// program. The tile dimension searches the overlapped-tiling rules' windows-per-tile
    /// knob (all candidates divide the 256-window count).
    pub fn convolution_1d() -> Workload {
        Workload {
            name: "convolution_1d",
            program: convolution::high_level_program(256, convolution::FILTER),
            parallelism: 256,
            tile_sets: vec![vec![16], vec![16, 32], vec![32, 64]],
        }
    }

    /// The 2D 5-point Jacobi stencil over an `8 × 12` grid (`pad2d` + `slide2d`), derived
    /// automatically through the mapped-layout views. Parallelism counts the grid rows (the
    /// outer map).
    pub fn jacobi_2d() -> Workload {
        Workload {
            name: "jacobi_2d",
            program: jacobi::high_level_program(8, 12),
            parallelism: 8,
            tile_sets: vec![vec![2], vec![4], vec![2, 4]],
        }
    }

    /// The *full* dot product (`n = 1024`): partial sums reduced to a single value. The
    /// final reduction needs a device-wide synchronisation point, so lowering it either
    /// serialises into one kernel or derives the two-stage schedule (`mapGlb` partial sums
    /// staged in global memory feeding a second kernel-level reduce) that compiles to a
    /// multi-kernel sequence — the single- vs multi-stage trade-off the launch-overhead
    /// cost term makes the tuner weigh.
    pub fn dot_product_two_stage() -> Workload {
        Workload {
            name: "dot_product_two_stage",
            program: dot_product::high_level_full_program(1024),
            // Stage 1 parallelism: one work item per 128-element chunk.
            parallelism: 1024 / 128,
            tile_sets: Vec::new(),
        }
    }

    /// The workloads the `autotune_stats` trajectory tracks.
    pub fn all() -> Vec<Workload> {
        vec![
            Workload::dot_product(),
            Workload::matrix_multiply(),
            Workload::nbody(),
            Workload::dot_product_two_stage(),
            Workload::convolution_1d(),
            Workload::jacobi_2d(),
        ]
    }

    /// The default tuning space for this workload on `device`.
    pub fn space_for(&self, device: &DeviceProfile) -> TuningSpace {
        let space = TuningSpace::d1_for_device(device, self.parallelism);
        if self.tile_sets.is_empty() {
            space
        } else {
            space.with_tile_sets(self.tile_sets.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_high_level_and_well_typed() {
        for workload in Workload::all() {
            let mut program = workload.program.clone();
            lift_ir::infer_types(&mut program).unwrap_or_else(|e| panic!("{}: {e}", workload.name));
            assert!(
                program.first_high_level_pattern().is_some(),
                "{}: expected an unlowered high-level program",
                workload.name
            );
        }
    }
}
