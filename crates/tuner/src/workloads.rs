//! The tuned workloads: high-level programs from `lift-benchmarks` paired with the problem
//! parallelism the launch space is sized for.

use lift_benchmarks::{convolution, dot_product, jacobi, mm, nbody};
use lift_ir::Program;
use lift_rewrite::TileSize;
use lift_vgpu::DeviceProfile;

use crate::space::TuningSpace;

/// A named high-level program the auto-tuner can be pointed at.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Stable name used in reports (`BENCH_autotune.json` keys).
    pub name: &'static str,
    /// The high-level (backend-agnostic `map`/`reduce`) program.
    pub program: Program,
    /// Number of data-parallel elements, used to size the launch space (see
    /// [`TuningSpace::d1_for_device`] for how global sizes derive from it).
    pub parallelism: usize,
    /// Candidate `RuleOptions::tile_sizes` sets for the tiled workloads (empty for
    /// workloads without a tiling dimension — the space keeps its singleton default).
    pub tile_sets: Vec<Vec<TileSize>>,
    /// `Some((rows, cols))` for workloads whose launch space should be genuinely 2D (see
    /// [`TuningSpace::d2_for_device`]); `None` keeps the 1D space.
    pub grid_2d: Option<(usize, usize)>,
}

impl Workload {
    /// The partial dot product of Listing 1 (`n = 512`).
    pub fn dot_product() -> Workload {
        Workload {
            name: "dot_product",
            program: dot_product::high_level_program(512),
            parallelism: 512,
            tile_sets: Vec::new(),
            grid_2d: None,
        }
    }

    /// Matrix multiplication (`16 × 16 × 16`).
    pub fn matrix_multiply() -> Workload {
        Workload {
            name: "matrix_multiply",
            program: mm::high_level_program(16, 16, 16),
            parallelism: 16,
            tile_sets: Vec::new(),
            grid_2d: None,
        }
    }

    /// The one-dimensional N-Body simulation (`n = 48`; interactions scale quadratically
    /// with the body count, and the virtual GPU executes them serially).
    pub fn nbody() -> Workload {
        Workload {
            name: "nbody",
            program: nbody::high_level_program(48),
            parallelism: 48,
            tile_sets: Vec::new(),
            grid_2d: None,
        }
    }

    /// The 17-point 1D convolution over 256 outputs, derived from its high-level stencil
    /// program. The tile dimension searches the overlapped-tiling rules' windows-per-tile
    /// knob (all candidates divide the 256-window count).
    pub fn convolution_1d() -> Workload {
        Workload {
            name: "convolution_1d",
            program: convolution::high_level_program(256, convolution::FILTER),
            parallelism: 256,
            tile_sets: vec![
                vec![TileSize::d1(16)],
                vec![TileSize::d1(16), TileSize::d1(32)],
                vec![TileSize::d1(32), TileSize::d1(64)],
            ],
            grid_2d: None,
        }
    }

    /// The 2D 5-point Jacobi stencil over an `8 × 12` grid (`pad2d` + `slide2d`), derived
    /// automatically through the mapped-layout views. Parallelism counts the grid rows (the
    /// outer map).
    pub fn jacobi_2d() -> Workload {
        Workload {
            name: "jacobi_2d",
            program: jacobi::high_level_program(8, 12),
            parallelism: 8,
            tile_sets: vec![
                vec![TileSize::d1(2)],
                vec![TileSize::d1(4)],
                vec![TileSize::d1(2), TileSize::d1(4)],
            ],
            grid_2d: Some((8, 12)),
        }
    }

    /// The *full* dot product (`n = 1024`): partial sums reduced to a single value. The
    /// final reduction needs a device-wide synchronisation point, so lowering it either
    /// serialises into one kernel or derives the two-stage schedule (`mapGlb` partial sums
    /// staged in global memory feeding a second kernel-level reduce) that compiles to a
    /// multi-kernel sequence — the single- vs multi-stage trade-off the launch-overhead
    /// cost term makes the tuner weigh.
    pub fn dot_product_two_stage() -> Workload {
        Workload {
            name: "dot_product_two_stage",
            program: dot_product::high_level_full_program(1024),
            // Stage 1 parallelism: one work item per 128-element chunk.
            parallelism: 1024 / 128,
            tile_sets: Vec::new(),
            grid_2d: None,
        }
    }

    /// The 2D tiled/register-blocked matrix multiplication (`16 × 16 × 16`): the same
    /// high-level program as [`Workload::matrix_multiply`], but searched with 2D `rows ×
    /// cols` tile pairs (feeding the `mm-tiled-2d` rule's `split∘transpose∘split` tile
    /// formation) over a genuinely 2D launch grid. Kept as a separate workload so the perf
    /// gate can compare the tuned tiled schedule against the committed 1D best.
    pub fn mm_tiled() -> Workload {
        Workload {
            name: "mm_tiled",
            program: mm::high_level_program(16, 16, 16),
            parallelism: 16,
            tile_sets: vec![
                vec![TileSize::d2(4, 4)],
                vec![TileSize::d2(8, 8)],
                vec![TileSize::d2(4, 8)],
                vec![TileSize::d2(4, 4), TileSize::d2(8, 8)],
            ],
            grid_2d: Some((16, 16)),
        }
    }

    /// The workloads the `autotune_stats` trajectory tracks.
    pub fn all() -> Vec<Workload> {
        vec![
            Workload::dot_product(),
            Workload::matrix_multiply(),
            Workload::nbody(),
            Workload::dot_product_two_stage(),
            Workload::convolution_1d(),
            Workload::jacobi_2d(),
            Workload::mm_tiled(),
        ]
    }

    /// The default tuning space for this workload on `device`.
    pub fn space_for(&self, device: &DeviceProfile) -> TuningSpace {
        let space = match self.grid_2d {
            Some((rows, cols)) => TuningSpace::d2_for_device(device, rows, cols),
            None => TuningSpace::d1_for_device(device, self.parallelism),
        };
        if self.tile_sets.is_empty() {
            space
        } else {
            space.with_tile_sets(self.tile_sets.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_high_level_and_well_typed() {
        for workload in Workload::all() {
            let mut program = workload.program.clone();
            lift_ir::infer_types(&mut program).unwrap_or_else(|e| panic!("{}: {e}", workload.name));
            assert!(
                program.first_high_level_pattern().is_some(),
                "{}: expected an unlowered high-level program",
                workload.name
            );
        }
    }
}
