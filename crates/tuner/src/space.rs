//! The tuning space: the grid of `(RuleOptions, LaunchConfig)` points a search walks.
//!
//! The space is a cartesian product of three independent dimensions — candidate `split_sizes`
//! sets, candidate `vector_widths` sets and launch configurations — indexed by a
//! [`PointIndex`]. The first two dimensions parameterise the *rule search* (they change which
//! derivations exist at all), the third only parameterises *scoring* (how candidates are
//! compiled and executed), which is exactly the boundary the two-phase
//! [`lift_rewrite::enumerate`]/[`lift_rewrite::Enumerated::score`] API exposes: points that
//! share rule options share one enumeration.

use lift_rewrite::{RuleOptions, TileSize};
use lift_vgpu::{DeviceProfile, LaunchConfig};

/// A coordinate in the tuning grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointIndex {
    /// Index into [`TuningSpace::split_sets`].
    pub split_set: usize,
    /// Index into [`TuningSpace::width_sets`].
    pub width_set: usize,
    /// Index into [`TuningSpace::tile_sets`].
    pub tile_set: usize,
    /// Index into [`TuningSpace::launches`].
    pub launch: usize,
}

/// One concrete `(RuleOptions, LaunchConfig)` tuning point.
#[derive(Clone, Debug, PartialEq)]
pub struct TuningPoint {
    /// Where the point sits in the grid.
    pub index: PointIndex,
    /// The rule knobs the rewrite exploration runs with.
    pub rule_options: RuleOptions,
    /// The launch configuration candidates are compiled for and executed with.
    pub launch: LaunchConfig,
}

/// The searchable grid of rule parameters and launch configurations.
#[derive(Clone, Debug, PartialEq)]
pub struct TuningSpace {
    /// Candidate `RuleOptions::split_sizes` sets.
    pub split_sets: Vec<Vec<i64>>,
    /// Candidate `RuleOptions::vector_widths` sets.
    pub width_sets: Vec<Vec<usize>>,
    /// Candidate `RuleOptions::tile_sizes` sets (1D stencil windows per work-group tile, or
    /// 2D `rows × cols` tile/block pairs for the tiled-MM family).
    pub tile_sets: Vec<Vec<TileSize>>,
    /// Candidate launch configurations (all valid for the target device).
    pub launches: Vec<LaunchConfig>,
}

impl TuningSpace {
    /// A default one-dimensional space for a device and a problem of `parallelism` parallel
    /// elements: work-group sizes from 8 up to the device limit, and global sizes from one
    /// work group up to 8× the problem size (tiled `mapWrg` derivations put the extra work
    /// groups to use even when the outer map is narrower), capped at 512 to bound the cost
    /// of evaluating a point on the serial virtual GPU. Every launch validates on `device`.
    pub fn d1_for_device(device: &DeviceProfile, parallelism: usize) -> TuningSpace {
        let global_cap = parallelism.saturating_mul(8).min(512.max(parallelism));
        let mut launches = Vec::new();
        for local in [8usize, 16, 32, 64, 128, 256, 512] {
            if local > device.max_work_group_size
                || local > device.max_work_item_sizes[0]
                || local > global_cap
            {
                continue;
            }
            let mut groups = 1;
            while local * groups <= global_cap && groups <= 64 {
                launches.push(LaunchConfig::d1(local * groups, local));
                groups *= 2;
            }
        }
        if launches.is_empty() {
            // Degenerate problems still get one valid single-group launch.
            let side = parallelism.clamp(1, device.max_work_group_size);
            launches.push(LaunchConfig::d1(side, side));
        }
        TuningSpace {
            split_sets: vec![vec![2, 4], vec![4, 8], vec![2, 4, 8], vec![8, 16]],
            width_sets: vec![vec![4], vec![2, 4]],
            // The singleton default keeps non-stencil workloads' grids small; stencil
            // workloads override this with real tile candidates (see
            // `TuningSpace::with_tile_sets`).
            tile_sets: vec![vec![]],
            launches,
        }
    }

    /// A genuinely two-dimensional space for a device and a `rows × cols` problem grid. It
    /// contains every launch of the 1D space (sized for `rows`, the outer map — so every 1D
    /// best stays reachable) plus real 2D launches: local shapes `(y, x)` over the powers of
    /// two from `2 × 2` up to the device's per-axis and work-group limits, and global shapes
    /// extending each local axis by power-of-two group counts up to the (power-of-two
    /// rounded) problem extent, capped at 512 total work items to bound virtual-GPU cost.
    /// Every launch validates on `device`.
    pub fn d2_for_device(device: &DeviceProfile, rows: usize, cols: usize) -> TuningSpace {
        let mut space = TuningSpace::d1_for_device(device, rows);
        let cap_y = rows.next_power_of_two();
        let cap_x = cols.next_power_of_two();
        for ly in [2usize, 4, 8, 16] {
            for lx in [2usize, 4, 8, 16] {
                if ly * lx > device.max_work_group_size
                    || lx > device.max_work_item_sizes[0]
                    || ly > device.max_work_item_sizes[1]
                {
                    continue;
                }
                let mut gy = ly;
                while gy <= cap_y.max(ly) {
                    let mut gx = lx;
                    while gx <= cap_x.max(lx) {
                        if gy * gx <= 512 {
                            space.launches.push(LaunchConfig::d2((gx, gy), (lx, ly)));
                        }
                        gx *= 2;
                    }
                    gy *= 2;
                }
            }
        }
        space
    }

    /// Replaces the tile-size dimension (builder-style), turning the stencil tile size into
    /// a searched axis.
    pub fn with_tile_sets(mut self, tile_sets: Vec<Vec<TileSize>>) -> TuningSpace {
        assert!(!tile_sets.is_empty(), "at least one tile set is required");
        self.tile_sets = tile_sets;
        self
    }

    /// Grid dimensions: `[split_sets, width_sets, tile_sets, launches]`.
    pub fn dims(&self) -> [usize; 4] {
        [
            self.split_sets.len(),
            self.width_sets.len(),
            self.tile_sets.len(),
            self.launches.len(),
        ]
    }

    /// Total number of points in the grid.
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// Whether the grid contains no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialises the point at `index`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn point(&self, index: PointIndex) -> TuningPoint {
        TuningPoint {
            index,
            rule_options: RuleOptions {
                split_sizes: self.split_sets[index.split_set].clone(),
                vector_widths: self.width_sets[index.width_set].clone(),
                tile_sizes: self.tile_sets[index.tile_set].clone(),
            },
            launch: self.launches[index.launch],
        }
    }

    /// All indices in deterministic (split-major, width, tile, launch-minor) order.
    pub fn indices(&self) -> impl Iterator<Item = PointIndex> + '_ {
        let [s, w, t, l] = self.dims();
        (0..s).flat_map(move |split_set| {
            (0..w).flat_map(move |width_set| {
                (0..t).flat_map(move |tile_set| {
                    (0..l).map(move |launch| PointIndex {
                        split_set,
                        width_set,
                        tile_set,
                        launch,
                    })
                })
            })
        })
    }

    /// Maps a tuned point from *another* space into this one, for warm-starting a search
    /// (see `Strategy::SeededHillClimb`). Each rule-option axis takes its exact match when
    /// this space has one; otherwise a donor set that never tuned the axis (empty set)
    /// is unconstrained and snaps to this space's first candidate set, and a partially
    /// overlapping donor set snaps to the candidate set sharing the most elements — zero
    /// overlap produces no seed (a seed with entirely different split/width/tile
    /// candidates would not land near the cached derivation family). The launch snaps to
    /// the nearest launch of this space by log2 distance over all six global/local axis
    /// extents (launch only affects scoring, so an approximate landing spot is still a
    /// good climb start).
    pub fn seed_for_options(
        &self,
        options: &RuleOptions,
        launch: &LaunchConfig,
    ) -> Option<PointIndex> {
        let split_set = snap_set(&self.split_sets, &options.split_sizes)?;
        let width_set = snap_set(&self.width_sets, &options.vector_widths)?;
        let tile_set = snap_set(&self.tile_sets, &options.tile_sizes)?;
        let log2_distance = |a: &LaunchConfig, b: &LaunchConfig| -> f64 {
            a.global
                .iter()
                .chain(a.local.iter())
                .zip(b.global.iter().chain(b.local.iter()))
                .map(|(&x, &y)| ((x.max(1) as f64).log2() - (y.max(1) as f64).log2()).abs())
                .sum()
        };
        let launch = self
            .launches
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| log2_distance(a, launch).total_cmp(&log2_distance(b, launch)))
            .map(|(i, _)| i)?;
        Some(PointIndex {
            split_set,
            width_set,
            tile_set,
            launch,
        })
    }

    /// The axis neighbours of `index`: one step along each of the split/width/tile
    /// dimensions, plus the launch moves (axis steps and the connectivity bridges — see
    /// below).
    pub fn neighbours(&self, index: PointIndex) -> Vec<PointIndex> {
        let [s, w, t, l] = self.dims();
        let mut out = Vec::with_capacity(8);
        if index.tile_set > 0 {
            out.push(PointIndex {
                tile_set: index.tile_set - 1,
                ..index
            });
        }
        if index.tile_set + 1 < t {
            out.push(PointIndex {
                tile_set: index.tile_set + 1,
                ..index
            });
        }
        if index.split_set > 0 {
            out.push(PointIndex {
                split_set: index.split_set - 1,
                ..index
            });
        }
        if index.split_set + 1 < s {
            out.push(PointIndex {
                split_set: index.split_set + 1,
                ..index
            });
        }
        if index.width_set > 0 {
            out.push(PointIndex {
                width_set: index.width_set - 1,
                ..index
            });
        }
        if index.width_set + 1 < w {
            out.push(PointIndex {
                width_set: index.width_set + 1,
                ..index
            });
        }
        // Launch moves are the axis steps (one extent doubled/halved — what makes the
        // launch axis genuinely 2D) PLUS the enumeration-order neighbours. The latter keep
        // the axis globally connected: the axis-step graph alone has islands — no single
        // doubling bridges a `(2,2)`-local 2D launch to the 1D family — and a hill climb
        // must be able to cross between them.
        let mut launch_moves: Vec<usize> = (0..l)
            .filter(|&j| {
                j != index.launch && is_axis_step(&self.launches[index.launch], &self.launches[j])
            })
            .collect();
        if index.launch > 0 && !launch_moves.contains(&(index.launch - 1)) {
            launch_moves.push(index.launch - 1);
        }
        if index.launch + 1 < l && !launch_moves.contains(&(index.launch + 1)) {
            launch_moves.push(index.launch + 1);
        }
        out.extend(
            launch_moves
                .into_iter()
                .map(|launch| PointIndex { launch, ..index }),
        );
        out
    }
}

/// Whether `b` is one hill-climb move from `a` along the launch grid: exactly one of the six
/// global/local axis extents doubled or halved, all others equal. This is what makes the
/// launch axis genuinely 2D — a `(16,16)/(8,8)` launch reaches `(16,16)/(8,4)` and
/// `(16,32)/(8,8)` in one move each, along either axis independently.
fn is_axis_step(a: &LaunchConfig, b: &LaunchConfig) -> bool {
    let axes = a
        .global
        .iter()
        .chain(a.local.iter())
        .zip(b.global.iter().chain(b.local.iter()));
    let mut steps = 0usize;
    for (&x, &y) in axes {
        if x == y {
            continue;
        }
        if y == x * 2 || x == y * 2 {
            steps += 1;
        } else {
            return false;
        }
    }
    steps == 1
}

/// Maps a foreign candidate set onto one of this axis's candidate sets (see
/// [`TuningSpace::seed_for_options`]): exact match, else first set for an empty
/// (unconstrained) donor, else the set sharing the most elements — ties to the lowest
/// index, zero shared elements to `None`.
fn snap_set<T: PartialEq>(sets: &[Vec<T>], foreign: &[T]) -> Option<usize> {
    if let Some(exact) = sets.iter().position(|s| s[..] == *foreign) {
        return Some(exact);
    }
    if foreign.is_empty() {
        return (!sets.is_empty()).then_some(0);
    }
    let mut best: Option<(usize, usize)> = None; // (index, overlap)
    for (i, set) in sets.iter().enumerate() {
        let overlap = set.iter().filter(|e| foreign.contains(e)).count();
        if overlap > 0 && best.is_none_or(|(_, b)| overlap > b) {
            best = Some((i, overlap));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_only_contains_valid_launches() {
        for device in [DeviceProfile::nvidia(), DeviceProfile::amd()] {
            for parallelism in [1usize, 7, 16, 64, 512] {
                let space = TuningSpace::d1_for_device(&device, parallelism);
                assert!(!space.is_empty());
                for launch in &space.launches {
                    assert_eq!(device.validate_launch(launch), Ok(()), "{launch:?}");
                }
            }
        }
    }

    #[test]
    fn amd_space_excludes_work_groups_beyond_256() {
        let space = TuningSpace::d1_for_device(&DeviceProfile::amd(), 4096);
        assert!(space.launches.iter().all(|l| l.work_group_size() <= 256));
        // The NVIDIA space for the same problem is strictly larger.
        let nv = TuningSpace::d1_for_device(&DeviceProfile::nvidia(), 4096);
        assert!(nv.launches.len() > space.launches.len());
    }

    #[test]
    fn indices_enumerate_the_whole_grid_in_order() {
        let space = TuningSpace::d1_for_device(&DeviceProfile::nvidia(), 64);
        let all: Vec<PointIndex> = space.indices().collect();
        assert_eq!(all.len(), space.len());
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, all, "enumeration is sorted and duplicate-free");
    }

    #[test]
    fn d2_space_contains_valid_2d_launches_and_all_1d_launches() {
        for device in [DeviceProfile::nvidia(), DeviceProfile::amd()] {
            let d1 = TuningSpace::d1_for_device(&device, 16);
            let d2 = TuningSpace::d2_for_device(&device, 16, 16);
            for launch in &d1.launches {
                assert!(
                    d2.launches.contains(launch),
                    "1D best unreachable: {launch:?}"
                );
            }
            let mut saw_2d = false;
            for launch in &d2.launches {
                assert_eq!(device.validate_launch(launch), Ok(()), "{launch:?}");
                if launch.global[1] > 1 {
                    saw_2d = true;
                    assert!(launch.local[1] > 1 && launch.global[0] * launch.global[1] <= 512);
                }
            }
            assert!(saw_2d, "expected genuinely 2D launches on {}", device.name);
        }
    }

    #[test]
    fn launch_neighbours_are_single_axis_doubling_moves() {
        let space = TuningSpace::d2_for_device(&DeviceProfile::nvidia(), 16, 16);
        let from = space
            .launches
            .iter()
            .position(|l| l.global == [16, 16, 1] && l.local == [8, 8, 1])
            .expect("the exact-fit 2D launch is in the space");
        let index = PointIndex {
            split_set: 0,
            width_set: 0,
            tile_set: 0,
            launch: from,
        };
        let launch_moves: Vec<&LaunchConfig> = space
            .neighbours(index)
            .into_iter()
            .filter(|n| n.launch != from)
            .map(|n| &space.launches[n.launch])
            .collect();
        assert!(!launch_moves.is_empty());
        // Every move is an axis step, except the (at most two) enumeration-order bridges
        // that keep the launch axis globally connected.
        let non_steps = launch_moves
            .iter()
            .filter(|moved| !is_axis_step(&space.launches[from], moved))
            .count();
        assert!(non_steps <= 2, "{non_steps} non-axis-step moves");
        // Both axes are reachable independently: an x-axis move and a y-axis move exist.
        assert!(launch_moves
            .iter()
            .any(|l| l.global[0] != 16 || l.local[0] != 8));
        assert!(launch_moves
            .iter()
            .any(|l| l.global[1] != 16 || l.local[1] != 8));
    }

    #[test]
    fn seed_for_options_round_trips_exactly_and_snaps_foreign_launches() {
        let space = TuningSpace::d1_for_device(&DeviceProfile::nvidia(), 64);
        let index = PointIndex {
            split_set: 1,
            width_set: 1,
            tile_set: 0,
            launch: 3,
        };
        let point = space.point(index);
        // A point of this very space maps back to its own index.
        assert_eq!(
            space.seed_for_options(&point.rule_options, &point.launch),
            Some(index)
        );
        // A launch the space does not contain snaps to the nearest one (deterministically).
        let foreign = LaunchConfig::d1(96, 24);
        let snapped = space
            .seed_for_options(&point.rule_options, &foreign)
            .expect("rule options match, so a seed is produced");
        assert!(snapped.launch < space.launches.len());
        assert_eq!(
            space.seed_for_options(&point.rule_options, &foreign),
            Some(snapped),
            "snapping is deterministic"
        );
        // Rule-option sets sharing no element with any candidate set produce no seed.
        let mut other = point.rule_options.clone();
        other.split_sizes = vec![3, 5, 7];
        assert_eq!(space.seed_for_options(&other, &point.launch), None);
    }

    #[test]
    fn seed_for_options_snaps_unconstrained_and_overlapping_foreign_sets() {
        let tiled =
            TuningSpace::d2_for_device(&DeviceProfile::nvidia(), 16, 16).with_tile_sets(vec![
                vec![TileSize::d2(4, 4)],
                vec![TileSize::d2(8, 8)],
                vec![TileSize::d2(4, 4), TileSize::d2(8, 8)],
            ]);
        let plain = TuningSpace::d1_for_device(&DeviceProfile::nvidia(), 16);
        // The donor point comes from the untiled space (empty tile set): the tile axis is
        // unconstrained and snaps to the tiled space's first set — the cross-space
        // transfer the mm → mm_tiled warm start relies on.
        let donor = plain.point(PointIndex {
            split_set: 1,
            width_set: 0,
            tile_set: 0,
            launch: 2,
        });
        let seed = tiled
            .seed_for_options(&donor.rule_options, &donor.launch)
            .expect("an empty donor tile set must still seed the tiled space");
        assert_eq!(seed.tile_set, 0);
        assert_eq!(
            tiled.tile_sets[0],
            vec![TileSize::d2(4, 4)],
            "snapped to the first candidate set"
        );
        // A partially overlapping donor set snaps to the candidate set sharing the most
        // elements.
        let mut overlapping = donor.rule_options.clone();
        overlapping.tile_sizes = vec![TileSize::d2(4, 4), TileSize::d2(8, 8), TileSize::d2(16, 16)];
        let seed = tiled
            .seed_for_options(&overlapping, &donor.launch)
            .expect("two shared tiles beat one");
        assert_eq!(seed.tile_set, 2);
    }

    #[test]
    fn neighbours_stay_in_bounds_and_differ_in_one_coordinate() {
        let space = TuningSpace::d1_for_device(&DeviceProfile::nvidia(), 64).with_tile_sets(vec![
            vec![TileSize::d1(8)],
            vec![TileSize::d1(8), TileSize::d1(16)],
        ]);
        let [s, w, t, l] = space.dims();
        for index in space.indices() {
            for n in space.neighbours(index) {
                assert!(n.split_set < s && n.width_set < w && n.tile_set < t && n.launch < l);
                let moved = usize::from(n.split_set != index.split_set)
                    + usize::from(n.width_set != index.width_set)
                    + usize::from(n.tile_set != index.tile_set)
                    + usize::from(n.launch != index.launch);
                assert_eq!(moved, 1);
            }
        }
    }
}
