//! # Auto-tuning over rewrite parameters and launch configurations
//!
//! The paper's performance results (Sections 6–7) do not come from clever rule application
//! alone: for every benchmark and every device the authors *search* the space of
//! parameterised derivations — split factors, vector widths and work-group/global launch
//! configurations. This crate supplies that layer on top of `lift-rewrite`:
//!
//! * [`TuningSpace`] — the grid of `(RuleOptions, LaunchConfig)` points, with a
//!   device-aware constructor that only proposes launches the device accepts,
//! * [`Strategy`] — exhaustive grid walk for small spaces, seeded random sampling plus
//!   axis-wise hill-climbing for large ones; both fully deterministic for a given seed,
//! * [`tune`] — the driver: every visited point runs rule search → compilation (with the
//!   point's launch threaded into the compiler options) → virtual-GPU execution with
//!   correctness validation → the device cost model. Points sharing rule options share one
//!   rule search through [`lift_rewrite::Enumerated`], so launch sweeps are cheap,
//! * [`Workload`] — the high-level benchmark programs the `autotune_stats` binary tracks.
//!
//! ```
//! use lift_tuner::{tune, Strategy, TuningConfig, Workload};
//! use lift_vgpu::DeviceProfile;
//!
//! let workload = Workload::dot_product();
//! let device = DeviceProfile::nvidia();
//! let mut config = TuningConfig::new(
//!     device.clone(),
//!     workload.space_for(&device),
//!     Strategy::RandomHillClimb { seed: 1, samples: 4, max_steps: 4 },
//! );
//! config.base.max_candidates = 400; // keep the doctest fast
//! let result = tune(&workload.program, &config).expect("tuning runs");
//! assert!(result.points_evaluated > 0);
//! assert!(result.enumerations <= result.points_evaluated);
//! ```

pub mod search;
pub mod space;
pub mod tuner;
pub mod workloads;

pub use search::Strategy;
pub use space::{PointIndex, TuningPoint, TuningSpace};
pub use tuner::{
    tune, tune_with, BestVariant, TrajectoryEntry, TuneError, TuningConfig, TuningResult,
};
pub use workloads::Workload;
