//! Search strategies over a [`TuningSpace`].
//!
//! Both strategies are deterministic: the exhaustive grid walks indices in their canonical
//! order, and the random strategy draws every sample from a [`rand::rngs::StdRng`] seeded by
//! the caller, so the same seed visits the same points in the same order on every run (the
//! property the `BENCH_autotune.json` determinism test pins down).

use lift_telemetry::{Collector, Event};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::space::{PointIndex, TuningSpace};
use crate::tuner::TuneError;

/// Number of distinct sampled points a [`Strategy::RandomHillClimb`] hill-climbs from, best
/// first. The memoised evaluator makes revisits across climbs free.
pub const CLIMB_STARTS: usize = 3;

/// How the tuner walks the space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Evaluate every point of the grid. Right for small spaces (hundreds of points).
    Exhaustive,
    /// Evaluate `samples` seeded-random points, then steepest-descent hill-climb along the
    /// grid axes for at most `max_steps` moves from each of the best
    /// [`CLIMB_STARTS`] distinct samples. Multi-start matters on 2D launch spaces: the
    /// best sample can sit in a basin far (in the move graph) from the true optimum — a
    /// climb from a worse sample in the right region then wins. Right for large spaces
    /// where the exhaustive grid is too expensive.
    RandomHillClimb {
        /// PRNG seed; equal seeds reproduce the identical search.
        seed: u64,
        /// Number of random starting samples.
        samples: usize,
        /// Maximum hill-climbing moves after sampling.
        max_steps: usize,
    },
    /// Like [`Strategy::RandomHillClimb`], but the given `seeds` points are evaluated
    /// *before* the random samples and compete for the [`CLIMB_STARTS`] climb starts. This
    /// is the warm-start strategy of the derivation service: on a cache miss, the tuned
    /// points of structurally similar cached workloads (same high-level pattern skeleton)
    /// are mapped into the new space and used as seeds, so the climb starts next to a known
    /// optimum instead of from scratch. Seed points outside the space are skipped; with
    /// `samples = 0` the search climbs from the seeds alone. Equal seeds and seed points
    /// reproduce the identical search.
    SeededHillClimb {
        /// Warm-start points, evaluated before any random sample.
        seeds: Vec<PointIndex>,
        /// PRNG seed for the additional random samples.
        seed: u64,
        /// Number of random samples drawn after the seeds.
        samples: usize,
        /// Maximum hill-climbing moves after sampling.
        max_steps: usize,
    },
}

/// Walks `space` according to `strategy`, calling `eval` for every visited index. `eval`
/// returns the objective (lower is better, `None` = infeasible) and is expected to memoise:
/// strategies may revisit indices.
///
/// Telemetry: the sampling and hill-climbing halves of [`Strategy::RandomHillClimb`] run
/// inside `sample`/`climb` spans, and every accepted move emits an [`Event::TunerMove`]
/// (rendering the moved-to point through `label`, which is only called when the collector
/// is enabled).
pub(crate) fn drive(
    strategy: &Strategy,
    space: &TuningSpace,
    eval: &mut dyn FnMut(PointIndex) -> Result<Option<f64>, TuneError>,
    label: &dyn Fn(PointIndex) -> String,
    collector: &dyn Collector,
) -> Result<(), TuneError> {
    match strategy {
        Strategy::Exhaustive => {
            for index in space.indices() {
                eval(index)?;
            }
            Ok(())
        }
        Strategy::RandomHillClimb {
            seed,
            samples,
            max_steps,
        } => sample_and_climb(
            &[],
            *seed,
            *samples,
            *max_steps,
            space,
            eval,
            label,
            collector,
        ),
        Strategy::SeededHillClimb {
            seeds,
            seed,
            samples,
            max_steps,
        } => sample_and_climb(
            seeds, *seed, *samples, *max_steps, space, eval, label, collector,
        ),
    }
}

/// The shared hill-climb body: evaluates the explicit `seeds` (skipping any outside the
/// space), then `samples` seeded-random points, and steepest-descent climbs from the best
/// [`CLIMB_STARTS`] distinct starts.
#[allow(clippy::too_many_arguments)]
fn sample_and_climb(
    seeds: &[PointIndex],
    seed: u64,
    samples: usize,
    max_steps: usize,
    space: &TuningSpace,
    eval: &mut dyn FnMut(PointIndex) -> Result<Option<f64>, TuneError>,
    label: &dyn Fn(PointIndex) -> String,
    collector: &dyn Collector,
) -> Result<(), TuneError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let [s, w, t, l] = space.dims();
    let mut sampled: Vec<(f64, PointIndex)> = Vec::new();
    collector.span_begin("sample");
    for &index in seeds {
        let in_space =
            index.split_set < s && index.width_set < w && index.tile_set < t && index.launch < l;
        if !in_space {
            continue;
        }
        if let Some(t) = eval(index)? {
            sampled.push((t, index));
        }
    }
    for _ in 0..samples {
        let index = PointIndex {
            split_set: rng.gen_range(0..s),
            width_set: rng.gen_range(0..w),
            tile_set: rng.gen_range(0..t),
            launch: rng.gen_range(0..l),
        };
        if let Some(t) = eval(index)? {
            sampled.push((t, index));
        }
    }
    collector.span_end("sample");
    sampled.sort_by(|a, b| a.0.total_cmp(&b.0));
    sampled.dedup_by(|a, b| a.1 == b.1);
    sampled.truncate(CLIMB_STARTS);
    collector.span_begin("climb");
    for (mut best_time, mut at) in sampled {
        for step in 0..max_steps as u32 {
            let mut moved = false;
            for neighbour in space.neighbours(at) {
                if let Some(t) = eval(neighbour)? {
                    if t < best_time {
                        best_time = t;
                        at = neighbour;
                        moved = true;
                    }
                }
            }
            if !moved {
                break;
            }
            if collector.enabled() {
                collector.record(Event::TunerMove {
                    step,
                    to: label(at),
                    best_time,
                });
            }
        }
    }
    collector.span_end("climb");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_vgpu::DeviceProfile;

    fn toy_space() -> TuningSpace {
        TuningSpace::d1_for_device(&DeviceProfile::nvidia(), 64)
    }

    /// A synthetic smooth objective with its optimum at the last launch index.
    fn objective(index: PointIndex, space: &TuningSpace) -> f64 {
        (space.launches.len() - 1 - index.launch) as f64 * 10.0
            + index.split_set as f64
            + index.width_set as f64
    }

    #[test]
    fn exhaustive_visits_every_point_once_in_order() {
        let space = toy_space();
        let mut visited = Vec::new();
        drive(
            &Strategy::Exhaustive,
            &space,
            &mut |i| {
                visited.push(i);
                Ok(Some(objective(i, &space)))
            },
            &|i| format!("{i:?}"),
            &lift_telemetry::Null,
        )
        .unwrap();
        assert_eq!(visited, space.indices().collect::<Vec<_>>());
    }

    #[test]
    fn hill_climb_reaches_the_optimum_of_a_smooth_objective() {
        let space = toy_space();
        let mut best_seen = f64::INFINITY;
        let strategy = Strategy::RandomHillClimb {
            seed: 7,
            samples: 4,
            max_steps: 64,
        };
        drive(
            &strategy,
            &space,
            &mut |i| {
                let t = objective(i, &space);
                best_seen = best_seen.min(t);
                Ok(Some(t))
            },
            &|i| format!("{i:?}"),
            &lift_telemetry::Null,
        )
        .unwrap();
        assert_eq!(best_seen, 0.0, "hill climb converged to the grid optimum");
    }

    #[test]
    fn seeded_climb_with_no_samples_climbs_from_the_seed_alone() {
        let space = toy_space();
        let start = PointIndex {
            split_set: 0,
            width_set: 0,
            tile_set: 0,
            launch: 0,
        };
        let mut visited = Vec::new();
        let mut best_seen = f64::INFINITY;
        drive(
            &Strategy::SeededHillClimb {
                seeds: vec![start],
                seed: 0,
                samples: 0,
                max_steps: 64,
            },
            &space,
            &mut |i| {
                visited.push(i);
                let t = objective(i, &space);
                best_seen = best_seen.min(t);
                Ok(Some(t))
            },
            &|i| format!("{i:?}"),
            &lift_telemetry::Null,
        )
        .unwrap();
        assert_eq!(visited[0], start, "the seed point is evaluated first");
        assert_eq!(
            best_seen, 0.0,
            "the climb from the seed reaches the optimum"
        );
    }

    #[test]
    fn out_of_space_seeds_are_skipped_not_evaluated() {
        let space = toy_space();
        let [s, w, t, l] = space.dims();
        let bogus = PointIndex {
            split_set: s,
            width_set: w,
            tile_set: t,
            launch: l,
        };
        let mut visited = Vec::new();
        drive(
            &Strategy::SeededHillClimb {
                seeds: vec![bogus],
                seed: 0,
                samples: 0,
                max_steps: 8,
            },
            &space,
            &mut |i| {
                visited.push(i);
                Ok(Some(objective(i, &space)))
            },
            &|i| format!("{i:?}"),
            &lift_telemetry::Null,
        )
        .unwrap();
        assert!(
            visited.is_empty(),
            "an out-of-range seed is never evaluated"
        );
    }

    #[test]
    fn equal_seeds_visit_identical_point_sequences() {
        let space = toy_space();
        let strategy = Strategy::RandomHillClimb {
            seed: 42,
            samples: 6,
            max_steps: 8,
        };
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut visited = Vec::new();
            drive(
                &strategy,
                &space,
                &mut |i| {
                    visited.push(i);
                    Ok(Some(objective(i, &space)))
                },
                &|i| format!("{i:?}"),
                &lift_telemetry::Null,
            )
            .unwrap();
            runs.push(visited);
        }
        assert_eq!(runs[0], runs[1]);
        // A different seed visits a different sample prefix.
        let mut other = Vec::new();
        drive(
            &Strategy::RandomHillClimb {
                seed: 43,
                samples: 6,
                max_steps: 8,
            },
            &space,
            &mut |i| {
                other.push(i);
                Ok(Some(objective(i, &space)))
            },
            &|i| format!("{i:?}"),
            &lift_telemetry::Null,
        )
        .unwrap();
        assert_ne!(runs[0][..6], other[..6]);
    }
}
