//! Property and determinism tests for the auto-tuner.
//!
//! * Every `(RuleOptions, launch)` point the tuner visits must reproduce as a standalone
//!   exploration whose variants validate on the virtual GPU against the interpreter — and,
//!   independently of the exploration's own gate, every returned variant must agree with the
//!   original program under the reference interpreter (the rules are semantics-preserving).
//! * The same seed must produce the identical tuning result, which is what makes the
//!   `BENCH_autotune.json` trajectory reproducible.

use lift_benchmarks::dot_product;
use lift_interp::evaluate;
use lift_rewrite::{explore, ExplorationConfig};
use lift_tuner::{tune, Strategy, TuningConfig, TuningSpace, Workload};
use lift_vgpu::{outputs_match, DeviceProfile};
use proptest::prelude::*;

/// A deliberately small configuration so each proptest case stays fast.
fn small_config(device: DeviceProfile, strategy: Strategy) -> TuningConfig {
    // Virtual-GPU execution time scales with the global size, so the test space keeps to
    // small launches (the behaviour under test does not depend on launch magnitude).
    let mut launches = TuningSpace::d1_for_device(&device, 256).launches;
    launches.retain(|l| l.total_work_items() <= 64);
    let space = TuningSpace {
        split_sets: vec![vec![2, 4], vec![4, 8]],
        width_sets: vec![vec![4]],
        tile_sets: vec![vec![]],
        launches,
    };
    let mut config = TuningConfig::new(device, space, strategy);
    config.base.max_depth = 5;
    config.base.beam_width = 24;
    config.base.max_candidates = 600;
    config.base.best_n = 2;
    config
}

/// The exploration configuration the tuner used for one visited point (`launch` is the
/// single source of the launch — scoring threads it into the compiler options itself).
fn point_config(base: &TuningConfig, point: &lift_tuner::TuningPoint) -> ExplorationConfig {
    ExplorationConfig {
        rule_options: point.rule_options.clone(),
        launch: point.launch,
        device: base.device.clone(),
        ..base.base.clone()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn visited_points_reproduce_as_validating_explorations(seed in 0u64..1_000) {
        let program = dot_product::high_level_program(256);
        let reference = {
            let mut typed = program.clone();
            lift_ir::infer_types(&mut typed).expect("typechecks");
            typed
        };
        let config = small_config(
            DeviceProfile::nvidia(),
            Strategy::RandomHillClimb { seed, samples: 3, max_steps: 1 },
        );
        let result = tune(&program, &config).expect("tuning runs");
        prop_assert!(result.points_evaluated > 0);

        // Re-validating a point is as expensive as evaluating it, so spot-check a prefix of
        // the trajectory (it covers the random samples) rather than every entry.
        for entry in result.trajectory.iter().take(3) {
            // Re-run the exact point as a standalone exploration (no shared caches): the
            // tuner's recorded objective must reproduce, and the exploration's variants all
            // passed the vgpu-vs-interpreter gate by construction.
            let scored = explore(&program, &point_config(&config, &entry.point))
                .expect("point reproduces");
            prop_assert_eq!(
                scored.variants.first().map(|v| v.estimated_time),
                entry.best_time
            );
            prop_assert_eq!(scored.variants.len(), entry.variants);
            // Independent semantic check: every variant program agrees with the original
            // high-level program under the reference interpreter on fresh inputs.
            let inputs = [
                lift_interp::Value::from_f32_slice(
                    &(0..256).map(|i| (i % 17) as f32 * 0.25 - 2.0).collect::<Vec<_>>(),
                ),
                lift_interp::Value::from_f32_slice(
                    &(0..256).map(|i| (i % 13) as f32 * 0.25 - 1.5).collect::<Vec<_>>(),
                ),
            ];
            let expected = evaluate(&reference, &inputs).expect("reference runs").flatten_f32();
            for variant in &scored.variants {
                let got = evaluate(&variant.program, &inputs)
                    .expect("variant runs")
                    .flatten_f32();
                prop_assert!(
                    outputs_match(&got, &expected),
                    "variant diverged from the original program"
                );
                prop_assert!(variant.kernel_source.contains("kernel void"));
            }
        }
    }

    #[test]
    fn equal_seeds_produce_identical_results(seed in 0u64..1_000) {
        let workload = Workload::dot_product();
        let make = || {
            let config = small_config(
                DeviceProfile::amd(),
                Strategy::RandomHillClimb { seed, samples: 4, max_steps: 1 },
            );
            tune(&workload.program, &config).expect("tuning runs")
        };
        let a = make();
        let b = make();
        prop_assert_eq!(a, b);
    }
}

#[test]
fn exhaustive_tuning_beats_the_default_configuration_on_dot_product() {
    // The acceptance criterion of the auto-tuning issue: the tuner finds a point strictly
    // better than the default-config exploration best.
    let workload = Workload::dot_product();
    let device = DeviceProfile::nvidia();
    let default_best = explore(
        &workload.program,
        &ExplorationConfig {
            device: device.clone(),
            ..ExplorationConfig::default()
        },
    )
    .expect("default exploration runs")
    .variants
    .first()
    .map(|v| v.estimated_time)
    .expect("default exploration finds a variant");

    // A trimmed space keeps the exhaustive walk fast (virtual-GPU time scales with the
    // global size) while still sweeping the launch dimension the default configuration
    // fixes at [64]/[16] — the tuned winner sits at a *smaller* launch than the default.
    let mut launches = workload.space_for(&device).launches;
    launches.retain(|l| l.total_work_items() <= 128);
    let space = TuningSpace {
        split_sets: vec![vec![2, 4], vec![8, 16]],
        width_sets: vec![vec![4]],
        tile_sets: vec![vec![]],
        launches,
    };
    let mut config = TuningConfig::new(device.clone(), space, Strategy::Exhaustive);
    config.base.max_candidates = 3000;
    config.base.beam_width = 48;
    let result = tune(&workload.program, &config).expect("tuning runs");
    let tuned = result
        .best_variant
        .as_ref()
        .expect("tuning finds a variant")
        .estimated_time;
    assert!(
        tuned < default_best,
        "tuned {tuned} is not strictly better than default {default_best}"
    );
    // The launch sweep shared enumerations: far fewer rule searches than points.
    assert!(result.enumerations < result.points_evaluated);
    assert!(result.enumeration_cache_hits > 0);
}
