//! Determinism of the autotune report: the same seed must produce a byte-identical
//! `BENCH_autotune.json` entry, modulo timestamps — which enter the report only through the
//! explicit `wall_ms` parameter of the builder and are pinned here.

use lift_bench::report::{autotune_entry, autotune_report};
use lift_tuner::{tune, Strategy, TuningConfig, TuningSpace, Workload};
use lift_vgpu::DeviceProfile;

fn small_run(seed: u64) -> lift_tuner::TuningResult {
    let workload = Workload::dot_product();
    let device = DeviceProfile::amd();
    let mut launches = TuningSpace::d1_for_device(&device, 256).launches;
    launches.retain(|l| l.total_work_items() <= 64);
    let space = TuningSpace {
        split_sets: vec![vec![2, 4], vec![4, 8]],
        width_sets: vec![vec![4]],
        tile_sets: vec![vec![]],
        launches,
    };
    let strategy = Strategy::RandomHillClimb {
        seed,
        samples: 3,
        max_steps: 1,
    };
    let mut config = TuningConfig::new(device, space, strategy);
    config.base.max_candidates = 800;
    config.base.beam_width = 24;
    tune(&workload.program, &config).expect("tuning runs")
}

#[test]
fn same_seed_renders_byte_identical_reports() {
    let strategy = Strategy::RandomHillClimb {
        seed: 99,
        samples: 3,
        max_steps: 1,
    };
    // Two full runs, rendered with a fixed wall-clock: every byte must match.
    let render = |result: &lift_tuner::TuningResult| {
        autotune_report(vec![autotune_entry(
            "dot_product",
            &strategy,
            Some(1000.0),
            result,
            42.0,
        )])
        .render()
    };
    let a = render(&small_run(99));
    let b = render(&small_run(99));
    assert_eq!(a, b, "same seed must render byte-identical reports");
    // And the parsed report has the tracked fields the perf gate reads.
    let parsed = lift_bench::schema::parse(&a).expect("report parses");
    let entry = &parsed
        .get("results")
        .and_then(|r| r.as_arr())
        .expect("results")[0];
    assert!(entry
        .get("tuned_best_time")
        .and_then(lift_bench::schema::Json::as_f64)
        .is_some());

    // A different seed walks a different trajectory (the sample prefix differs with
    // overwhelming probability on this space).
    let c = small_run(100);
    let d = small_run(99);
    assert_ne!(
        render(&c),
        render(&d),
        "different seeds should explore differently"
    );
}
