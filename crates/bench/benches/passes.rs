//! Criterion benches for the compiler itself: arithmetic simplification, type inference and
//! full compilation of the evaluation programs. These are the ablation benches for the design
//! choices called out in DESIGN.md (eager arithmetic normalisation, per-call re-inference).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lift_arith::ArithExpr;
use lift_benchmarks::{all_benchmarks, ProblemSize};
use lift_codegen::{compile, CompilationOptions};

fn arithmetic_simplification(c: &mut Criterion) {
    let n = ArithExpr::size_var("N");
    let m = ArithExpr::size_var("M");
    let wg = ArithExpr::var_in_range("wg_id", 0, n.clone());
    let l = ArithExpr::var_in_range("l_id", 0, m.clone());

    c.bench_function("arith/figure6-index-simplification", |b| {
        b.iter(|| {
            // The Figure 6 index: building it through the smart constructors simplifies it.
            let flat = &wg * &m + &l;
            let gathered = (&flat / &m) + (&flat % &m) * &n;
            let row = &gathered / &n;
            let col = &gathered % &n;
            &row * &n + &col
        })
    });
}

fn type_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("typecheck");
    for case in all_benchmarks(ProblemSize::Small) {
        group.bench_with_input(
            BenchmarkId::from_parameter(case.info.name),
            &case,
            |b, case| {
                b.iter(|| {
                    let mut program = case.program.clone();
                    lift_ir::infer_types(&mut program).expect("types");
                    program
                })
            },
        );
    }
    group.finish();
}

fn full_compilation(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    group.sample_size(20);
    for case in all_benchmarks(ProblemSize::Small) {
        let options = CompilationOptions::all_optimisations()
            .with_launch(case.launch.global, case.launch.local);
        group.bench_with_input(
            BenchmarkId::from_parameter(case.info.name),
            &case,
            |b, case| b.iter(|| compile(&case.program, &options).expect("compiles")),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    arithmetic_simplification,
    type_inference,
    full_compilation
);
criterion_main!(benches);
