//! Criterion bench for the auto-tuner: a small exhaustive tuning run of the dot-product
//! workload, exercising the shared-enumeration fast path (many launches per rule search).

use criterion::{criterion_group, criterion_main, Criterion};
use lift_tuner::{tune, Strategy, TuningConfig, TuningSpace, Workload};
use lift_vgpu::{DeviceProfile, LaunchConfig};

fn autotune(c: &mut Criterion) {
    let workload = Workload::dot_product();
    let device = DeviceProfile::nvidia();
    let space = TuningSpace {
        split_sets: vec![vec![2, 4]],
        width_sets: vec![vec![4]],
        tile_sets: vec![vec![]],
        launches: vec![
            LaunchConfig::d1(16, 4),
            LaunchConfig::d1(32, 8),
            LaunchConfig::d1(64, 16),
            LaunchConfig::d1(64, 64),
        ],
    };
    let mut config = TuningConfig::new(device, space, Strategy::Exhaustive);
    config.base.max_candidates = 1000;
    config.base.beam_width = 24;

    let mut group = c.benchmark_group("autotune/partial-dot");
    group.sample_size(10);
    group.bench_function("exhaustive-4-launches", |b| {
        b.iter(|| tune(&workload.program, &config).expect("tuning runs"))
    });
    group.finish();
}

criterion_group!(benches, autotune);
criterion_main!(benches);
