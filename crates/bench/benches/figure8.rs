//! Criterion benches backing the Figure 8 experiment: wall-clock time of executing the
//! generated kernels on the virtual GPU at different optimisation levels, compared with the
//! hand-written reference kernel.
//!
//! The analytical relative-performance numbers of Figure 8 come from `--bin figure8`; these
//! benches provide an independent, measured signal (simulation wall time scales with the
//! amount of dynamic work, so the ordering between optimisation levels must match).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lift_benchmarks::runner::{run_lift, run_reference};
use lift_benchmarks::{all_benchmarks, ProblemSize};
use lift_codegen::CompilationOptions;

fn figure8_subset(c: &mut Criterion) {
    // A representative subset (one memory-bound, one compute-bound, one layout-heavy).
    let selected = ["NN", "K-Means", "MM (AMD)", "Convolution"];
    let cases: Vec<_> = all_benchmarks(ProblemSize::Small)
        .into_iter()
        .filter(|case| selected.contains(&case.info.name))
        .collect();

    let mut group = c.benchmark_group("figure8");
    group.sample_size(10);
    for case in &cases {
        for (label, options) in [
            ("none", CompilationOptions::none()),
            ("all", CompilationOptions::all_optimisations()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("lift-{label}"), case.info.name),
                case,
                |b, case| {
                    b.iter(|| {
                        let outcome = run_lift(case, &options).expect("runs");
                        assert!(outcome.correct);
                        outcome
                    })
                },
            );
        }
        group.bench_with_input(
            BenchmarkId::new("reference", case.info.name),
            case,
            |b, case| {
                b.iter(|| {
                    let outcome = run_reference(case).expect("runs");
                    assert!(outcome.correct);
                    outcome
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, figure8_subset);
criterion_main!(benches);
