//! Criterion bench for the rewrite-space exploration driver: the dot-product search of the
//! paper's running example at two candidate budgets. This is the hot path every auto-tuning
//! item on the roadmap multiplies, so its throughput (see also `explore_stats` and
//! `BENCH_explore.json`) is tracked as a first-class number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lift_bench::explore_config;
use lift_benchmarks::dot_product;
use lift_rewrite::explore;

fn exploration(c: &mut Criterion) {
    let program = dot_product::high_level_program(512);
    let mut group = c.benchmark_group("explore/partial-dot");
    group.sample_size(10);
    for max_candidates in [500usize, 4000] {
        let config = explore_config(max_candidates);
        group.bench_with_input(
            BenchmarkId::from_parameter(max_candidates),
            &config,
            |b, config| b.iter(|| explore(&program, config).expect("exploration runs")),
        );
    }
    group.finish();
}

criterion_group!(benches, exploration);
criterion_main!(benches);
