//! The CI performance-regression gate logic (used by the `perf_gate` binary).
//!
//! Compares freshly generated `BENCH_explore.json` / `BENCH_autotune.json` reports against
//! committed baselines and reports a failure when a tracked number regresses by more than
//! the threshold:
//!
//! * exploration throughput must not drop below `baseline × (1 − threshold)`,
//! * the bytecode execution tier must stay at least [`BYTECODE_SPEEDUP_FLOOR`]× faster than
//!   the slotted interpreter on the current report's per-engine comparison probe,
//! * every `(workload, device)` tuned best-time present in the *baseline* must still exist
//!   and must not exceed `baseline × (1 + threshold)`,
//! * on every device the current report tunes both on, the 2D-tiled MM (`mm_tiled`) must
//!   be at least as fast as the plain 1D-best `matrix_multiply` (no threshold).
//!
//! Workloads present only in the *current* report (a newly added benchmark whose baseline
//! has not been committed yet) are reported informationally and never trip the gate — the
//! gate protects committed numbers, it does not demand prescience from the baseline.

use std::collections::HashMap;

use crate::schema::Json;

/// Validates a `--threshold` value: it is a regression *fraction*, so it must be a finite
/// number in `[0, 1]` (0 = any regression fails, 1 = a 100% regression is tolerated).
///
/// # Errors
///
/// Returns a usage message for NaN, infinite, negative or greater-than-one values — a
/// threshold outside this range would make the gate pass or fail vacuously.
pub fn validate_threshold(threshold: f64) -> Result<(), String> {
    if !threshold.is_finite() || !(0.0..=1.0).contains(&threshold) {
        return Err(format!(
            "--threshold must be a fraction within [0.0, 1.0], got `{threshold}`"
        ));
    }
    Ok(())
}

/// Minimum end-to-end speedup of the bytecode execution tier over the slotted interpreter
/// on the explore report's per-engine comparison probe. Unlike the throughput check this is
/// a fixed ratio of two wall-times measured in the same run on the same machine, so it is
/// machine-independent and takes no baseline.
pub const BYTECODE_SPEEDUP_FLOOR: f64 = 2.0;

/// Minimum warm-hit speedup over a cold derivation in `BENCH_cache.json`. A warm hit
/// replays and re-validates exactly one candidate while a cold miss runs the full
/// enumerate-and-tune search, so like the bytecode floor this is a same-run wall-time ratio:
/// machine-independent and gated without a committed baseline.
pub const CACHE_SPEEDUP_FLOOR: f64 = 10.0;

/// One line of the gate's verdict, in report order.
#[derive(Clone, Debug, PartialEq)]
pub struct GateLine {
    /// Whether this line passed (informational lines always pass).
    pub ok: bool,
    /// The rendered verdict line.
    pub message: String,
}

/// The gate's overall outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct GateOutcome {
    /// Per-check verdict lines.
    pub lines: Vec<GateLine>,
}

impl GateOutcome {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.lines.iter().all(|l| l.ok)
    }
}

fn explore_throughput(doc: &Json, label: &str) -> Result<f64, String> {
    doc.get("max_candidates_4000")
        .and_then(|s| s.get("candidates_per_sec"))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{label}: missing max_candidates_4000.candidates_per_sec"))
}

/// Renders the per-phase wall-time breakdown of `workload` from a `BENCH_telemetry.json`
/// document (`None` when the report has no entry for it). `workload` is the telemetry
/// entry name, e.g. `explore:dot_product` or `tune:jacobi_2d`.
fn phase_breakdown(telemetry: &Json, workload: &str) -> Option<String> {
    let entry = telemetry
        .get("results")
        .and_then(Json::as_arr)?
        .iter()
        .find(|e| e.get("workload").and_then(Json::as_str) == Some(workload))?;
    let Json::Obj(phases) = entry.get("phase_us")? else {
        return None;
    };
    let mut parts: Vec<String> = phases
        .iter()
        .filter_map(|(name, us)| us.as_f64().map(|us| format!("{name} {:.1}ms", us / 1e3)))
        .collect();
    if let Some(wall) = entry.get("wall_ms").and_then(Json::as_f64) {
        parts.push(format!("wall {wall:.1}ms"));
    }
    (!parts.is_empty()).then(|| format!("       {workload} phases: {}", parts.join(", ")))
}

/// When `line` failed and the telemetry report covers `workload`, appends an informational
/// line with that workload's per-phase breakdown so the offender is diagnosable from the
/// gate output alone.
fn push_breakdown_for_failure(lines: &mut Vec<GateLine>, telemetry: Option<&Json>, workload: &str) {
    let failed = lines.last().is_some_and(|l| !l.ok);
    if !failed {
        return;
    }
    if let Some(message) = telemetry.and_then(|t| phase_breakdown(t, workload)) {
        lines.push(GateLine { ok: true, message });
    }
}

/// Sums the `rejection_reasons` maps of every entry in a `BENCH_telemetry.json` document
/// and renders one informational line (`None` when no entry carries the map). The line
/// keeps the per-reason taxonomy visible in the gate output — a sudden appearance of
/// `ownership_violation` / `data_race` counts means the search space grew a racy shape the
/// soundness layers are rejecting.
fn rejection_summary(telemetry: &Json) -> Option<String> {
    let results = telemetry.get("results").and_then(Json::as_arr)?;
    let mut totals: Vec<(String, f64)> = Vec::new();
    for entry in results {
        let Some(Json::Obj(reasons)) = entry.get("rejection_reasons") else {
            continue;
        };
        for (reason, n) in reasons {
            let Some(n) = n.as_f64() else { continue };
            match totals.iter_mut().find(|(name, _)| name == reason) {
                Some((_, total)) => *total += n,
                None => totals.push((reason.clone(), n)),
            }
        }
    }
    if totals.is_empty() {
        return None;
    }
    let parts: Vec<String> = totals
        .iter()
        .map(|(reason, n)| format!("{reason} {n:.0}"))
        .collect();
    Some(format!("[info] rejection reasons: {}", parts.join(", ")))
}

/// `(workload, device) → tuned_best_time` for every entry that has one.
fn tuned_times(doc: &Json, label: &str) -> Result<HashMap<(String, String), f64>, String> {
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{label}: missing results[]"))?;
    let mut out = HashMap::new();
    for entry in results {
        let workload = entry
            .get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{label}: entry without workload"))?;
        let device = entry
            .get("device")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{label}: entry without device"))?;
        if let Some(time) = entry.get("tuned_best_time").and_then(Json::as_f64) {
            out.insert((workload.to_string(), device.to_string()), time);
        }
    }
    Ok(out)
}

/// Runs every gate check over the four parsed reports.
///
/// `telemetry` is an optional freshly generated `BENCH_telemetry.json` document: when a
/// check fails and the telemetry report covers the offending workload, the verdict gains an
/// informational line with that workload's per-phase wall-time breakdown.
///
/// # Errors
///
/// Returns a message when a report is structurally invalid (missing fields) or the
/// threshold is out of range; regressions are *not* errors — they are failing lines in the
/// returned [`GateOutcome`].
pub fn check_reports(
    baseline_explore: &Json,
    current_explore: &Json,
    baseline_autotune: &Json,
    current_autotune: &Json,
    telemetry: Option<&Json>,
    threshold: f64,
) -> Result<GateOutcome, String> {
    validate_threshold(threshold)?;
    let mut lines = Vec::new();

    // 1. Exploration throughput: lower is a regression. This number is wall-clock based and
    //    therefore machine-dependent — the committed baseline must be refreshed (re-run
    //    `explore_stats` and commit the JSON) whenever the reference machine class changes,
    //    and the threshold absorbs normal runner-to-runner variance.
    let baseline = explore_throughput(baseline_explore, "baseline explore report")?;
    let current = explore_throughput(current_explore, "current explore report")?;
    let floor = baseline * (1.0 - threshold);
    let ok = current >= floor;
    lines.push(GateLine {
        ok,
        message: format!(
            "[{}] exploration throughput: {current:.0} candidates/sec \
             (baseline {baseline:.0}, floor {floor:.0})",
            if ok { "ok" } else { "FAIL" }
        ),
    });
    // The throughput probe is the dot-product search, so that is the entry to show.
    push_breakdown_for_failure(&mut lines, telemetry, "explore:dot_product");

    // 2. The bytecode tier's speedup over the interpreter: both wall-times come from the
    //    same run of the current report's per-engine probe, so the ratio is machine-
    //    independent and gated against a fixed floor rather than a committed baseline.
    //    Reports that predate the probe (no `engines` section) get an informational line —
    //    the gate protects the numbers a report records, it does not demand new schema
    //    retroactively.
    match current_explore.get("engines") {
        None => lines.push(GateLine {
            ok: true,
            message: "[info] engines: current explore report has no per-engine probe".to_string(),
        }),
        Some(section) => {
            let speedup = section
                .get("bytecode_speedup")
                .and_then(Json::as_f64)
                .ok_or("current explore report: engines section without bytecode_speedup")?;
            let probe = section.get("probe").and_then(Json::as_str).unwrap_or("?");
            let ok = speedup >= BYTECODE_SPEEDUP_FLOOR;
            lines.push(GateLine {
                ok,
                message: format!(
                    "[{}] engines ({probe}): bytecode {speedup:.2}x interpreter \
                     (floor {BYTECODE_SPEEDUP_FLOOR:.1}x)",
                    if ok { "ok" } else { "FAIL" }
                ),
            });
            push_breakdown_for_failure(&mut lines, telemetry, "explore:dot_product");
        }
    }

    // 3. Tuned best-times: higher is a regression (deterministic cost model, so any drift
    //    beyond the threshold is a real change in generated code or search quality).
    let baseline_times = tuned_times(baseline_autotune, "baseline autotune report")?;
    let current_times = tuned_times(current_autotune, "current autotune report")?;
    let mut keys: Vec<_> = baseline_times.keys().collect();
    keys.sort();
    for key in keys {
        let baseline = baseline_times[key];
        let ceiling = baseline * (1.0 + threshold);
        match current_times.get(key) {
            None => lines.push(GateLine {
                ok: false,
                message: format!(
                    "[FAIL] autotune {}/{}: missing from current report",
                    key.0, key.1
                ),
            }),
            Some(&current) => {
                let ok = current <= ceiling;
                lines.push(GateLine {
                    ok,
                    message: format!(
                        "[{}] autotune {}/{}: tuned best {current:.1} \
                         (baseline {baseline:.1}, ceiling {ceiling:.1})",
                        if ok { "ok" } else { "FAIL" },
                        key.0,
                        key.1
                    ),
                });
            }
        }
        push_breakdown_for_failure(&mut lines, telemetry, &format!("tune:{}", key.0));
    }

    // 4. Workloads only in the current report never trip the gate: a new workload's first
    //    baseline is committed by the PR that adds it.
    let mut new_keys: Vec<_> = current_times
        .keys()
        .filter(|k| !baseline_times.contains_key(*k))
        .collect();
    new_keys.sort();
    for key in new_keys {
        lines.push(GateLine {
            ok: true,
            message: format!(
                "[new] autotune {}/{}: {:.1} (no committed baseline yet)",
                key.0, key.1, current_times[key]
            ),
        });
    }

    // 5. The 2D-tiled MM must not fall behind the committed 1D-best plain MM on any device
    //    both appear on in the current report: the whole point of the tiled derivation is
    //    that register/local blocking wins, so this is a structural invariant of the
    //    report, not a number to eyeball. No threshold — a tie is the worst acceptable
    //    outcome for the tiled variant.
    let mut tiled_devices: Vec<&(String, String)> = current_times
        .keys()
        .filter(|(w, _)| w == "mm_tiled")
        .collect();
    tiled_devices.sort();
    for key in tiled_devices {
        let device = &key.1;
        let tiled = current_times[key];
        let Some(&plain) = current_times.get(&("matrix_multiply".to_string(), device.clone()))
        else {
            continue;
        };
        let ok = tiled <= plain;
        lines.push(GateLine {
            ok,
            message: format!(
                "[{}] autotune mm_tiled/{device}: tiled best {tiled:.1} vs 1D-best MM {plain:.1}",
                if ok { "ok" } else { "FAIL" }
            ),
        });
        push_breakdown_for_failure(&mut lines, telemetry, "tune:mm_tiled");
    }

    // 6. The rejection-reason taxonomy of the telemetry report, summed across workloads
    //    (informational: makes soundness rejections visible in the gate output).
    if let Some(message) = telemetry.and_then(rejection_summary) {
        lines.push(GateLine { ok: true, message });
    }

    Ok(GateOutcome { lines })
}

/// Runs the derivation-service checks over a freshly generated `BENCH_cache.json` document
/// (the `--cache` flag of `perf_gate`). Per tracked `(workload, device)` entry:
///
/// * the warm hit must be at least [`CACHE_SPEEDUP_FLOOR`]× faster than the cold
///   derivation measured in the same run,
/// * the batch of identical requests must have cost exactly one derivation, pinned twice —
///   by the service's own `derivations` counter and by the independent `cache_miss`
///   telemetry event count.
///
/// Both are same-run invariants of the service, so no baseline is involved.
///
/// # Errors
///
/// Returns a message when the report is structurally invalid (missing fields).
pub fn check_cache_report(doc: &Json) -> Result<GateOutcome, String> {
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("cache report: missing results[]")?;
    let mut lines = Vec::new();
    for entry in results {
        let field = |name: &str| {
            entry
                .get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("cache report: entry without {name}"))
        };
        let workload = entry
            .get("workload")
            .and_then(Json::as_str)
            .ok_or("cache report: entry without workload")?;
        let device = entry
            .get("device")
            .and_then(Json::as_str)
            .ok_or("cache report: entry without device")?;
        let (cold, warm, speedup) = (field("cold_ms")?, field("warm_ms")?, field("speedup")?);
        let ok = speedup >= CACHE_SPEEDUP_FLOOR;
        lines.push(GateLine {
            ok,
            message: format!(
                "[{}] cache {workload}/{device}: warm {warm:.1}ms vs cold {cold:.1}ms \
                 = {speedup:.1}x (floor {CACHE_SPEEDUP_FLOOR:.0}x)",
                if ok { "ok" } else { "FAIL" }
            ),
        });
        let batch = entry
            .get("batch")
            .ok_or("cache report: entry without batch section")?;
        let batch_field = |name: &str| {
            batch
                .get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("cache report: batch section without {name}"))
        };
        let requests = batch_field("requests")?;
        let derivations = batch_field("derivations")?;
        let miss_events = batch_field("miss_events")?;
        let ok = derivations == 1.0 && miss_events == 1.0;
        lines.push(GateLine {
            ok,
            message: format!(
                "[{}] cache {workload}/{device}: batch of {requests:.0} identical requests \
                 cost {derivations:.0} derivation(s), {miss_events:.0} miss event(s) \
                 (must be exactly 1)",
                if ok { "ok" } else { "FAIL" }
            ),
        });
    }
    if lines.is_empty() {
        return Err("cache report: results[] is empty".to_string());
    }
    Ok(GateOutcome { lines })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::parse;

    fn explore_doc(cps: f64) -> Json {
        parse(&format!(
            r#"{{"max_candidates_4000": {{"candidates_per_sec": {cps}}}}}"#
        ))
        .unwrap()
    }

    fn autotune_doc(entries: &[(&str, &str, f64)]) -> Json {
        let results: Vec<String> = entries
            .iter()
            .map(|(w, d, t)| {
                format!(r#"{{"workload": "{w}", "device": "{d}", "tuned_best_time": {t}}}"#)
            })
            .collect();
        parse(&format!(r#"{{"results": [{}]}}"#, results.join(","))).unwrap()
    }

    #[test]
    fn threshold_range_is_validated() {
        assert!(validate_threshold(0.0).is_ok());
        assert!(validate_threshold(0.25).is_ok());
        assert!(validate_threshold(1.0).is_ok());
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(validate_threshold(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn check_reports_rejects_invalid_thresholds_up_front() {
        let e = explore_doc(100.0);
        let a = autotune_doc(&[]);
        assert!(check_reports(&e, &e, &a, &a, None, f64::NAN).is_err());
        assert!(check_reports(&e, &e, &a, &a, None, -1.0).is_err());
        assert!(check_reports(&e, &e, &a, &a, None, 2.0).is_err());
    }

    #[test]
    fn regressions_beyond_the_threshold_fail() {
        let baseline = autotune_doc(&[("dot", "nv", 100.0)]);
        let regressed = autotune_doc(&[("dot", "nv", 130.0)]);
        let outcome = check_reports(
            &explore_doc(100.0),
            &explore_doc(100.0),
            &baseline,
            &regressed,
            None,
            0.25,
        )
        .unwrap();
        assert!(!outcome.passed());
        // Within the threshold passes.
        let near = autotune_doc(&[("dot", "nv", 120.0)]);
        let outcome = check_reports(
            &explore_doc(100.0),
            &explore_doc(100.0),
            &baseline,
            &near,
            None,
            0.25,
        )
        .unwrap();
        assert!(outcome.passed());
        // Throughput drops fail too.
        let outcome = check_reports(
            &explore_doc(100.0),
            &explore_doc(50.0),
            &baseline,
            &near,
            None,
            0.25,
        )
        .unwrap();
        assert!(!outcome.passed());
    }

    fn explore_doc_with_engines(cps: f64, bytecode_speedup: f64) -> Json {
        parse(&format!(
            r#"{{"max_candidates_4000": {{"candidates_per_sec": {cps}}},
                 "engines": {{"probe": "dot_product_n16384", "explored": 137,
                              "interpreter": {{"wall_ms": 400.0}},
                              "bytecode": {{"wall_ms": 160.0}},
                              "bytecode_speedup": {bytecode_speedup}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn the_bytecode_speedup_floor_gates_the_engines_section() {
        let autotune = autotune_doc(&[("dot", "nv", 100.0)]);
        let baseline = explore_doc(100.0);

        // At or above the floor passes.
        let current = explore_doc_with_engines(100.0, 2.5);
        let outcome = check_reports(&baseline, &current, &autotune, &autotune, None, 0.25).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.lines);
        assert!(outcome.lines.iter().any(|l| l.ok
            && l.message
                .contains("[ok] engines (dot_product_n16384): bytecode 2.50x interpreter")));

        // Below the floor fails.
        let current = explore_doc_with_engines(100.0, 1.4);
        let outcome = check_reports(&baseline, &current, &autotune, &autotune, None, 0.25).unwrap();
        assert!(!outcome.passed());
        assert!(outcome.lines.iter().any(|l| !l.ok
            && l.message
                .contains("bytecode 1.40x interpreter (floor 2.0x)")));

        // A current report that predates the probe is informational, never a failure.
        let outcome =
            check_reports(&baseline, &baseline, &autotune, &autotune, None, 0.25).unwrap();
        assert!(outcome.passed());
        assert!(outcome
            .lines
            .iter()
            .any(|l| l.ok && l.message.contains("[info] engines")));

        // An engines section without the speedup field is structurally invalid.
        let malformed =
            parse(r#"{"max_candidates_4000": {"candidates_per_sec": 100.0}, "engines": {}}"#)
                .unwrap();
        assert!(check_reports(&baseline, &malformed, &autotune, &autotune, None, 0.25).is_err());
    }

    #[test]
    fn a_workload_missing_from_the_current_report_fails() {
        let baseline = autotune_doc(&[("dot", "nv", 100.0)]);
        let current = autotune_doc(&[]);
        let outcome = check_reports(
            &explore_doc(100.0),
            &explore_doc(100.0),
            &baseline,
            &current,
            None,
            0.25,
        )
        .unwrap();
        assert!(!outcome.passed());
    }

    #[test]
    fn a_new_workload_only_in_the_current_report_does_not_trip_the_gate() {
        // The committed baseline predates the two-stage workload; the gate reports it as
        // new and still passes.
        let baseline = autotune_doc(&[("dot", "nv", 100.0)]);
        let current = autotune_doc(&[("dot", "nv", 100.0), ("dot_two_stage", "nv", 900.0)]);
        let outcome = check_reports(
            &explore_doc(100.0),
            &explore_doc(100.0),
            &baseline,
            &current,
            None,
            0.25,
        )
        .unwrap();
        assert!(outcome.passed(), "{:?}", outcome.lines);
        assert!(outcome
            .lines
            .iter()
            .any(|l| l.ok && l.message.contains("[new] autotune dot_two_stage/nv")));
    }

    #[test]
    fn the_tiled_mm_must_not_be_slower_than_the_plain_mm() {
        let e = explore_doc(100.0);
        let baseline = autotune_doc(&[("matrix_multiply", "nv", 100.0)]);

        // Faster (or equal) tiled MM passes.
        let current = autotune_doc(&[("matrix_multiply", "nv", 100.0), ("mm_tiled", "nv", 80.0)]);
        let outcome = check_reports(&e, &e, &baseline, &current, None, 0.25).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.lines);
        assert!(outcome.lines.iter().any(|l| l.ok
            && l.message
                .contains("[ok] autotune mm_tiled/nv: tiled best 80.0 vs 1D-best MM 100.0")));

        // A tiled MM behind the 1D best fails, with no threshold slack.
        let current = autotune_doc(&[("matrix_multiply", "nv", 100.0), ("mm_tiled", "nv", 100.1)]);
        let outcome = check_reports(&e, &e, &baseline, &current, None, 0.25).unwrap();
        assert!(!outcome.passed());
        assert!(outcome
            .lines
            .iter()
            .any(|l| !l.ok && l.message.contains("mm_tiled/nv")));

        // A device without a plain-MM entry is skipped rather than a failure.
        let current = autotune_doc(&[("matrix_multiply", "nv", 100.0), ("mm_tiled", "amd", 50.0)]);
        let outcome = check_reports(&e, &e, &baseline, &current, None, 0.25).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.lines);
    }

    #[test]
    fn the_telemetry_rejection_taxonomy_is_summed_into_an_info_line() {
        let telemetry = parse(
            r#"{
  "schema": "lift-telemetry/v1",
  "results": [
    {"workload": "explore:dot_product",
     "rejection_reasons": {"ill_typed": 10, "ownership_violation": 1, "data_race": 0}},
    {"workload": "tune:dot",
     "rejection_reasons": {"ill_typed": 5, "ownership_violation": 2, "data_race": 0}}
  ]
}"#,
        )
        .unwrap();
        let autotune = autotune_doc(&[("dot", "nv", 100.0)]);
        let outcome = check_reports(
            &explore_doc(100.0),
            &explore_doc(100.0),
            &autotune,
            &autotune,
            Some(&telemetry),
            0.25,
        )
        .unwrap();
        assert!(outcome.passed());
        let line = outcome
            .lines
            .iter()
            .find(|l| l.message.starts_with("[info] rejection reasons:"))
            .expect("rejection summary line");
        assert!(line.message.contains("ill_typed 15"), "{}", line.message);
        assert!(
            line.message.contains("ownership_violation 3"),
            "{}",
            line.message
        );
        assert!(line.message.contains("data_race 0"), "{}", line.message);
        // A telemetry report without the map (older schema) adds no line.
        let old = parse(r#"{"results": [{"workload": "explore:dot_product"}]}"#).unwrap();
        let outcome = check_reports(
            &explore_doc(100.0),
            &explore_doc(100.0),
            &autotune,
            &autotune,
            Some(&old),
            0.25,
        )
        .unwrap();
        assert!(!outcome
            .lines
            .iter()
            .any(|l| l.message.contains("rejection reasons")));
    }

    fn cache_doc(speedup: f64, derivations: u64, miss_events: u64) -> Json {
        let warm = 10.0;
        let cold = warm * speedup;
        parse(&format!(
            r#"{{"schema": "lift-cache-stats/v1", "results": [
                 {{"workload": "dot_product", "device": "nvidia",
                   "cold_ms": {cold}, "warm_ms": {warm}, "speedup": {speedup},
                   "warm_start_seeds": 0,
                   "batch": {{"requests": 8, "derivations": {derivations},
                              "coalesced": 7, "miss_events": {miss_events},
                              "wall_ms": 100.0}}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn the_cache_gate_enforces_the_warm_speedup_floor_and_single_derivation_batches() {
        // At or above the floor with a single-derivation batch passes.
        let outcome = check_cache_report(&cache_doc(25.0, 1, 1)).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.lines);
        assert!(outcome.lines.iter().any(|l| l.ok
            && l.message
                .contains("[ok] cache dot_product/nvidia: warm 10.0ms vs cold 250.0ms = 25.0x")));

        // A warm hit slower than the floor fails.
        let outcome = check_cache_report(&cache_doc(4.0, 1, 1)).unwrap();
        assert!(!outcome.passed());
        assert!(outcome
            .lines
            .iter()
            .any(|l| !l.ok && l.message.contains("= 4.0x (floor 10x)")));

        // A batch that cost more than one derivation fails, whichever pin reports it.
        let outcome = check_cache_report(&cache_doc(25.0, 8, 1)).unwrap();
        assert!(!outcome.passed());
        let outcome = check_cache_report(&cache_doc(25.0, 1, 8)).unwrap();
        assert!(!outcome.passed());

        // Structurally invalid reports are errors, not failing lines.
        assert!(check_cache_report(&parse(r#"{"results": []}"#).unwrap()).is_err());
        assert!(check_cache_report(&parse(r#"{"schema": "x"}"#).unwrap()).is_err());
        let no_batch = parse(
            r#"{"results": [{"workload": "w", "device": "d",
                             "cold_ms": 1.0, "warm_ms": 1.0, "speedup": 1.0}]}"#,
        )
        .unwrap();
        assert!(check_cache_report(&no_batch).is_err());
    }

    #[test]
    fn a_failure_prints_the_offending_workloads_phase_breakdown() {
        let telemetry = parse(
            r#"{
  "schema": "lift-telemetry/v1",
  "results": [
    {"workload": "explore:dot_product", "wall_ms": 140.5,
     "phase_us": {"enumerate": 90000, "typecheck": 8000, "compile": 20000,
                  "execute": 18000, "score": 500}},
    {"workload": "tune:dot", "wall_ms": 900,
     "phase_us": {"sample": 700000, "climb": 150000}}
  ]
}"#,
        )
        .unwrap();
        let baseline = autotune_doc(&[("dot", "nv", 100.0)]);
        let regressed = autotune_doc(&[("dot", "nv", 200.0)]);
        let outcome = check_reports(
            &explore_doc(100.0),
            &explore_doc(50.0),
            &baseline,
            &regressed,
            Some(&telemetry),
            0.25,
        )
        .unwrap();
        assert!(!outcome.passed());
        // Each failing check is followed by the informational breakdown line.
        assert!(outcome.lines.iter().any(|l| l.ok
            && l.message
                .contains("explore:dot_product phases: enumerate 90.0ms")));
        assert!(outcome
            .lines
            .iter()
            .any(|l| l.ok && l.message.contains("tune:dot phases: sample 700.0ms")));
        // Passing checks gain no breakdown lines.
        let outcome = check_reports(
            &explore_doc(100.0),
            &explore_doc(100.0),
            &baseline,
            &baseline,
            Some(&telemetry),
            0.25,
        )
        .unwrap();
        assert!(outcome.passed());
        assert!(!outcome.lines.iter().any(|l| l.message.contains("phases:")));
    }
}
