//! Shared helpers for the benchmark harness binaries and Criterion benches.
//!
//! The binaries in `src/bin` regenerate the tables and figures of the paper:
//!
//! * `table1`  — benchmark overview and code sizes (Table 1),
//! * `figure6` — the array-index simplification example (Figure 6),
//! * `figure7` — the generated dot-product kernel (Figure 7),
//! * `figure8` — relative performance of generated vs hand-written kernels under the three
//!   optimisation levels and two device profiles (Figure 8),
//! * `explore_stats` — exploration-throughput probe writing `BENCH_explore.json`,
//! * `autotune_stats` — the auto-tuning trajectory writing `BENCH_autotune.json`,
//! * `perf_gate` — CI gate comparing the two JSON reports against committed baselines.
//!
//! The [`schema`] module defines the shared JSON output format (writer and parser) and the
//! `--json-out` flag handling; [`report`] builds the `BENCH_autotune.json` document;
//! [`gate`] implements the regression checks behind `perf_gate`.

pub mod gate;
pub mod report;
pub mod schema;

use lift_benchmarks::runner::RunOutcome;
use lift_rewrite::{ExplorationConfig, RuleOptions};
use lift_vgpu::{DeviceProfile, LaunchConfig};

/// Formats a relative-performance number the way the Figure 8 bars are read.
pub fn format_relative(rel: f64) -> String {
    format!("{rel:5.2}x")
}

/// Geometric mean of a list of ratios (used for the "Mean" column of Figure 8).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Convenience: estimated time of an outcome on a device.
pub fn time_on(outcome: &RunOutcome, device: &DeviceProfile) -> f64 {
    outcome.estimated_time(device)
}

/// The canonical exploration configuration used by the `explore` bench and the
/// `explore_stats` binary: the dot-product search whose throughput the performance
/// trajectory (`BENCH_explore.json`) tracks. Keep this stable across PRs so the
/// candidates/sec numbers stay comparable.
pub fn explore_config(max_candidates: usize) -> ExplorationConfig {
    ExplorationConfig {
        max_depth: 5,
        beam_width: 48,
        max_candidates,
        rule_options: RuleOptions {
            split_sizes: vec![2, 4],
            vector_widths: vec![4],
            tile_sizes: vec![],
        },
        launch: LaunchConfig::d1(16, 4),
        best_n: 4,
        ..ExplorationConfig::default()
    }
}

/// The canonical auto-tuning strategy per workload, sized for the serial virtual GPU: a
/// seeded random sample plus a short hill climb. Fixed seeds make `BENCH_autotune.json`
/// reproducible (same seed ⇒ identical trajectory).
pub fn autotune_strategy(workload: &lift_tuner::Workload) -> lift_tuner::Strategy {
    let seed = 0x11f7;
    match workload.name {
        "dot_product" => lift_tuner::Strategy::RandomHillClimb {
            seed,
            samples: 8,
            max_steps: 4,
        },
        "matrix_multiply" => lift_tuner::Strategy::RandomHillClimb {
            seed,
            samples: 6,
            max_steps: 3,
        },
        // The two-stage dot product has a small launch grid (8 chunks of parallelism) but
        // candidates execute over 1024 elements; a short walk covers it.
        "dot_product_two_stage" => lift_tuner::Strategy::RandomHillClimb {
            seed,
            samples: 4,
            max_steps: 3,
        },
        // The stencil workloads add the tile dimension; a few extra samples let the walk
        // compare tile sizes as well as launches.
        "convolution_1d" => lift_tuner::Strategy::RandomHillClimb {
            seed,
            samples: 6,
            max_steps: 3,
        },
        // The stencil's launch space is now genuinely 2D, which multiplies the points the
        // sampler must cover; the extra samples keep the good 1D region reachable.
        "jacobi_2d" => lift_tuner::Strategy::RandomHillClimb {
            seed,
            samples: 16,
            max_steps: 6,
        },
        // The tiled MM searches the genuinely 2D launch grid; hill-climb steps move one
        // launch axis at a time, so give the walk a little more room than plain MM.
        "mm_tiled" => lift_tuner::Strategy::RandomHillClimb {
            seed,
            samples: 6,
            max_steps: 4,
        },
        // N-Body kernels are the most expensive to execute on the serial virtual GPU, so
        // its walk gets the smallest sample budget.
        _ => lift_tuner::Strategy::RandomHillClimb {
            seed,
            samples: 3,
            max_steps: 2,
        },
    }
}

/// The canonical tuning configuration of the `autotune_stats` binary for one workload on one
/// device — shared with the determinism test so both pin the same run.
pub fn autotune_config(
    workload: &lift_tuner::Workload,
    device: &DeviceProfile,
) -> lift_tuner::TuningConfig {
    let mut config = lift_tuner::TuningConfig::new(
        device.clone(),
        workload.space_for(device),
        autotune_strategy(workload),
    );
    config.base.max_candidates = 3000;
    config.base.beam_width = 48;
    // The 2D Jacobi pipeline needs ~9 lowering steps (five layout maps plus the compute
    // maps and the reduction), which exceeds the default search depth.
    if workload.name == "jacobi_2d" {
        config.base.max_depth = 10;
        config.base.max_candidates = 6000;
        config.base.beam_width = 32;
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_equal_values_is_the_value() {
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn formatting_is_stable() {
        assert_eq!(format_relative(1.0), " 1.00x");
    }
}
