//! Shared helpers for the benchmark harness binaries and Criterion benches.
//!
//! The binaries in `src/bin` regenerate the tables and figures of the paper:
//!
//! * `table1`  — benchmark overview and code sizes (Table 1),
//! * `figure6` — the array-index simplification example (Figure 6),
//! * `figure7` — the generated dot-product kernel (Figure 7),
//! * `figure8` — relative performance of generated vs hand-written kernels under the three
//!   optimisation levels and two device profiles (Figure 8).

use lift_benchmarks::runner::RunOutcome;
use lift_rewrite::{ExplorationConfig, RuleOptions};
use lift_vgpu::{DeviceProfile, LaunchConfig};

/// Formats a relative-performance number the way the Figure 8 bars are read.
pub fn format_relative(rel: f64) -> String {
    format!("{rel:5.2}x")
}

/// Geometric mean of a list of ratios (used for the "Mean" column of Figure 8).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Convenience: estimated time of an outcome on a device.
pub fn time_on(outcome: &RunOutcome, device: &DeviceProfile) -> f64 {
    outcome.estimated_time(device)
}

/// The canonical exploration configuration used by the `explore` bench and the
/// `explore_stats` binary: the dot-product search whose throughput the performance
/// trajectory (`BENCH_explore.json`) tracks. Keep this stable across PRs so the
/// candidates/sec numbers stay comparable.
pub fn explore_config(max_candidates: usize) -> ExplorationConfig {
    ExplorationConfig {
        max_depth: 5,
        beam_width: 48,
        max_candidates,
        rule_options: RuleOptions {
            split_sizes: vec![2, 4],
            vector_widths: vec![4],
        },
        launch: LaunchConfig::d1(16, 4),
        best_n: 4,
        ..ExplorationConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_equal_values_is_the_value() {
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn formatting_is_stable() {
        assert_eq!(format_relative(1.0), " 1.00x");
    }
}
