//! Exploration-throughput statistics: the perf-trajectory probe for the rewrite engine.
//!
//! Runs the cost-guided exploration on the high-level partial dot product (Listing 1 before
//! implementation choices) at `max_candidates = 4000`, prints candidates/sec, and writes a
//! machine-readable `BENCH_explore.json` next to the current working directory so CI can
//! archive the number per PR.
//!
//! The `BASELINE_CANDIDATES_PER_SEC` constant records the throughput of the pre-optimisation
//! engine (string-keyed dedup, per-candidate arena round-trip and re-typecheck, serial
//! scoring) measured on the same machine class; the JSON reports both so the speedup is
//! visible without digging through git history.

use std::time::Instant;

use lift_bench::explore_config;
use lift_benchmarks::dot_product;
use lift_rewrite::explore;

/// Candidates/sec of the exploration engine before the hash-keyed-dedup/term-typecheck/
/// kernel-dedup/slotted-vgpu rearchitecture, measured at the commit introducing this probe
/// (same machine, release build, `max_candidates = 4000`: 973 candidates in 203.9 ms).
const BASELINE_CANDIDATES_PER_SEC: f64 = 4772.0;

fn main() {
    let program = dot_product::high_level_program(512);
    let mut report = String::from("{\n");

    for (i, max_candidates) in [500usize, 4000].iter().enumerate() {
        let config = explore_config(*max_candidates);
        let start = Instant::now();
        let result = explore(&program, &config).expect("exploration runs");
        let wall = start.elapsed();
        let wall_ms = wall.as_secs_f64() * 1e3;
        let cps = result.explored as f64 / wall.as_secs_f64();

        println!(
            "max_candidates={max_candidates}: explored {} candidates in {wall_ms:.1} ms \
             ({cps:.0} candidates/sec), {} variants, best {:?}",
            result.explored,
            result.variants.len(),
            result.variants.first().map(|v| v.estimated_time),
        );
        for v in &result.variants {
            let chain: Vec<&str> = v.derivation.iter().map(|s| s.rule).collect();
            println!("  t={:10.1}  {}", v.estimated_time, chain.join(" ; "));
        }

        if i > 0 {
            report.push_str(",\n");
        }
        let chains: Vec<String> = result
            .variants
            .iter()
            .map(|v| {
                let steps: Vec<String> = v
                    .derivation
                    .iter()
                    .map(|s| format!("\"{} @ {}\"", s.rule, s.location))
                    .collect();
                format!("[{}]", steps.join(", "))
            })
            .collect();
        report.push_str(&format!(
            "  \"max_candidates_{max_candidates}\": {{\n    \"explored\": {},\n    \
             \"wall_ms\": {wall_ms:.3},\n    \"candidates_per_sec\": {cps:.1},\n    \
             \"variants\": {},\n    \"best_estimated_time\": {},\n    \
             \"best_derivations\": [{}]\n  }}",
            result.explored,
            result.variants.len(),
            result
                .variants
                .first()
                .map_or("null".to_string(), |v| format!("{:.3}", v.estimated_time)),
            chains.join(", "),
        ));
        if *max_candidates == 4000 {
            let speedup = if BASELINE_CANDIDATES_PER_SEC > 0.0 {
                cps / BASELINE_CANDIDATES_PER_SEC
            } else {
                1.0
            };
            report.push_str(&format!(
                ",\n  \"baseline_candidates_per_sec\": {BASELINE_CANDIDATES_PER_SEC:.1},\n  \
                 \"speedup_over_baseline\": {speedup:.2}"
            ));
            println!(
                "speedup over pre-optimisation baseline ({BASELINE_CANDIDATES_PER_SEC:.0} \
                 candidates/sec): {speedup:.2}x"
            );
        }
    }

    report.push_str("\n}\n");
    std::fs::write("BENCH_explore.json", &report).expect("write BENCH_explore.json");
    println!("wrote BENCH_explore.json");
}
