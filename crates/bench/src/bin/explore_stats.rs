//! Exploration-throughput statistics: the perf-trajectory probe for the rewrite engine.
//!
//! Runs the cost-guided exploration on the high-level partial dot product (Listing 1 before
//! implementation choices) at `max_candidates = 4000`, prints candidates/sec, and writes a
//! machine-readable `BENCH_explore.json` (override the path with `--json-out <path>`) so CI
//! can archive the number per PR and the `perf_gate` binary can compare it against the
//! committed baseline.
//!
//! The `BASELINE_CANDIDATES_PER_SEC` constant records the throughput of the pre-optimisation
//! engine (string-keyed dedup, per-candidate arena round-trip and re-typecheck, serial
//! scoring) measured on the same machine class; the JSON reports both so the speedup is
//! visible without digging through git history.

use std::time::Instant;

use lift_bench::explore_config;
use lift_bench::report::{explore_report, explore_section};
use lift_bench::schema::{json_out_arg, write_json, Json};
use lift_benchmarks::dot_product;
use lift_rewrite::explore;

/// Candidates/sec of the exploration engine before the hash-keyed-dedup/term-typecheck/
/// kernel-dedup/slotted-vgpu rearchitecture, measured at the commit introducing this probe
/// (same machine, release build, `max_candidates = 4000`: 973 candidates in 203.9 ms).
const BASELINE_CANDIDATES_PER_SEC: f64 = 4772.0;

fn main() {
    let out_path = json_out_arg("BENCH_explore.json");
    let program = dot_product::high_level_program(512);
    let mut sections: Vec<(String, Json)> = Vec::new();
    let mut probe_cps = BASELINE_CANDIDATES_PER_SEC;

    for max_candidates in [500usize, 4000] {
        let config = explore_config(max_candidates);
        let start = Instant::now();
        let result = explore(&program, &config).expect("exploration runs");
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let cps = result.explored as f64 / (wall_ms / 1e3);

        println!(
            "max_candidates={max_candidates}: explored {} candidates in {wall_ms:.1} ms \
             ({cps:.0} candidates/sec), {} variants, best {:?}",
            result.explored,
            result.variants.len(),
            result.variants.first().map(|v| v.estimated_time),
        );
        for v in &result.variants {
            let chain: Vec<&str> = v.derivation.iter().map(|s| s.rule).collect();
            println!("  t={:10.1}  {}", v.estimated_time, chain.join(" ; "));
        }

        sections.push((
            format!("max_candidates_{max_candidates}"),
            explore_section(&result, wall_ms),
        ));
        if max_candidates == 4000 {
            probe_cps = cps;
            println!(
                "speedup over pre-optimisation baseline ({BASELINE_CANDIDATES_PER_SEC:.0} \
                 candidates/sec): {:.2}x",
                cps / BASELINE_CANDIDATES_PER_SEC
            );
        }
    }

    let doc = explore_report(sections, BASELINE_CANDIDATES_PER_SEC, probe_cps);
    write_json(&out_path, &doc.render());
    println!("wrote {}", out_path.display());
}
