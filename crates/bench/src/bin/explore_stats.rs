//! Exploration-throughput statistics: the perf-trajectory probe for the rewrite engine.
//!
//! Runs the cost-guided exploration on the high-level partial dot product (Listing 1 before
//! implementation choices) at `max_candidates = 4000`, prints candidates/sec, and writes a
//! machine-readable `BENCH_explore.json` (override the path with `--json-out <path>`) so CI
//! can archive the number per PR and the `perf_gate` binary can compare it against the
//! committed baseline.
//!
//! `--engine <interpreter|bytecode|auto>` selects the virtual-GPU execution engine the main
//! throughput probes score on (default `auto`: the bytecode tier with per-kernel
//! interpreter fallback); the chosen label is recorded in each probe's section. Independent
//! of that flag, an `engines` section records the per-engine comparison probe — the same
//! dot-product search on a larger input explored end-to-end once per engine with race
//! detection on — whose `bytecode_speedup` ratio `perf_gate` holds to a fixed ≥2× floor.
//!
//! The binary also probes the cost of the virtual GPU's shadow-memory race detector: the
//! enumerated candidate set is scored once with and once without detection (best of three
//! each) and the per-probe soundness counts plus the measured overhead are written to a
//! `BENCH_soundness.json` (`--soundness-out <path>`). `--max-race-overhead <fraction>`
//! makes the binary exit non-zero when the overhead exceeds the fraction — the CI guard
//! that keeps the always-on default affordable.
//!
//! The `BASELINE_CANDIDATES_PER_SEC` constant records the throughput of the pre-optimisation
//! engine (string-keyed dedup, per-candidate arena round-trip and re-typecheck, serial
//! scoring) measured on the same machine class; the JSON reports both so the speedup is
//! visible without digging through git history.

use std::process::ExitCode;
use std::time::Instant;

use lift_bench::explore_config;
use lift_bench::report::{
    engine_comparison_section, explore_report, explore_section, race_detector_section,
    soundness_counts, soundness_report,
};
use lift_bench::schema::{json_out_arg, path_arg, write_json, Json};
use lift_benchmarks::dot_product;
use lift_rewrite::{enumerate, explore, ExplorationConfig};
use lift_vgpu::{EngineSelection, LaunchConfig};

/// Candidates/sec of the exploration engine before the hash-keyed-dedup/term-typecheck/
/// kernel-dedup/slotted-vgpu rearchitecture, measured at the commit introducing this probe
/// (same machine, release build, `max_candidates = 4000`: 973 candidates in 203.9 ms).
const BASELINE_CANDIDATES_PER_SEC: f64 = 4772.0;

/// Reads the value of `--engine <interpreter|bytecode|auto>`, or the default selection
/// (`auto`) when absent. Selects the virtual-GPU engine the main throughput probes score
/// on; the per-engine comparison probe always runs both engines regardless.
fn engine_arg() -> Result<EngineSelection, String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--engine" {
            let value = args
                .next()
                .ok_or("missing value for --engine".to_string())?;
            return EngineSelection::parse(&value).ok_or(format!(
                "invalid --engine `{value}` (expected interpreter, bytecode or auto)"
            ));
        }
    }
    Ok(EngineSelection::default())
}

/// Reads the value of `--max-race-overhead <fraction>`, or `None` when absent.
fn max_race_overhead_arg() -> Result<Option<f64>, String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--max-race-overhead" {
            let value = args
                .next()
                .ok_or("missing value for --max-race-overhead".to_string())?;
            let v: f64 = value
                .parse()
                .map_err(|e| format!("invalid --max-race-overhead: {e}"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "--max-race-overhead must be non-negative, got `{v}`"
                ));
            }
            return Ok(Some(v));
        }
    }
    Ok(None)
}

fn main() -> ExitCode {
    let out_path = json_out_arg("BENCH_explore.json");
    let soundness_path = path_arg("--soundness-out", "BENCH_soundness.json");
    let max_race_overhead = match max_race_overhead_arg() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("explore_stats: {e}");
            return ExitCode::FAILURE;
        }
    };
    let engine = match engine_arg() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("explore_stats: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = dot_product::high_level_program(512);
    let mut sections: Vec<(String, Json)> = Vec::new();
    let mut soundness_sections: Vec<(String, Json)> = Vec::new();
    let mut probe_cps = BASELINE_CANDIDATES_PER_SEC;

    for max_candidates in [500usize, 4000] {
        let config = ExplorationConfig {
            engine,
            ..explore_config(max_candidates)
        };
        let start = Instant::now();
        let result = explore(&program, &config).expect("exploration runs");
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let cps = result.explored as f64 / (wall_ms / 1e3);

        println!(
            "max_candidates={max_candidates} engine={}: explored {} candidates in \
             {wall_ms:.1} ms ({cps:.0} candidates/sec), {} variants, best {:?}",
            engine.label(),
            result.explored,
            result.variants.len(),
            result.variants.first().map(|v| v.estimated_time),
        );
        for v in &result.variants {
            let chain: Vec<&str> = v.derivation.iter().map(|s| s.rule).collect();
            println!("  t={:10.1}  {}", v.estimated_time, chain.join(" ; "));
        }

        sections.push((
            format!("max_candidates_{max_candidates}"),
            explore_section(&result, wall_ms, engine.label()),
        ));
        soundness_sections.push((
            format!("max_candidates_{max_candidates}"),
            soundness_counts(&result.soundness),
        ));
        if max_candidates == 4000 {
            probe_cps = cps;
            println!(
                "speedup over pre-optimisation baseline ({BASELINE_CANDIDATES_PER_SEC:.0} \
                 candidates/sec): {:.2}x",
                cps / BASELINE_CANDIDATES_PER_SEC
            );
        }
    }

    // The per-engine comparison: the same dot-product search on a larger input with a wide
    // launch (execution-dominated, so the wall-clock tracks the engines rather than the
    // rule search), explored end-to-end once per engine with race detection on (the
    // default). Best of three per engine.
    const ENGINE_PROBE_N: usize = 16 * 1024;
    let probe_label = format!("dot_product_n{ENGINE_PROBE_N}");
    let engine_program = dot_product::high_level_program(ENGINE_PROBE_N);
    let mut engine_walls = [f64::INFINITY; 2];
    let mut engine_explored = 0usize;
    for (slot, probe_engine) in [EngineSelection::Interpreter, EngineSelection::Bytecode]
        .into_iter()
        .enumerate()
    {
        let config = ExplorationConfig {
            engine: probe_engine,
            launch: LaunchConfig::d1(ENGINE_PROBE_N / 2, 64),
            ..explore_config(500)
        };
        for _ in 0..3 {
            let start = Instant::now();
            let result = explore(&engine_program, &config).expect("exploration runs");
            engine_walls[slot] = engine_walls[slot].min(start.elapsed().as_secs_f64() * 1e3);
            engine_explored = result.explored;
        }
    }
    let [interpreter_ms, bytecode_ms] = engine_walls;
    println!(
        "engine comparison ({probe_label}): interpreter {interpreter_ms:.1} ms vs bytecode \
         {bytecode_ms:.1} ms ({:.2}x end-to-end)",
        interpreter_ms / bytecode_ms
    );
    sections.push((
        "engines".to_string(),
        engine_comparison_section(&probe_label, engine_explored, interpreter_ms, bytecode_ms),
    ));

    let doc = explore_report(sections, BASELINE_CANDIDATES_PER_SEC, probe_cps);
    write_json(&out_path, &doc.render());
    println!("wrote {}", out_path.display());

    // The race-detector overhead probe: score the same enumerated candidate set with and
    // without shadow-memory detection (best of three each). Enumeration is shared, so the
    // comparison isolates exactly the detector's per-access bookkeeping.
    let probe_config = explore_config(4000);
    let enumerated = enumerate(&program, &probe_config).expect("enumeration runs");
    let mut plain_ms = f64::INFINITY;
    let mut detected_ms = f64::INFINITY;
    for _ in 0..3 {
        let plain = ExplorationConfig {
            detect_races: false,
            ..probe_config.clone()
        };
        let start = Instant::now();
        enumerated.score(&plain).expect("scoring runs");
        plain_ms = plain_ms.min(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        enumerated.score(&probe_config).expect("scoring runs");
        detected_ms = detected_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let overhead = (detected_ms - plain_ms) / plain_ms;
    println!(
        "race-detector overhead: plain {plain_ms:.1} ms vs detected {detected_ms:.1} ms \
         ({:+.1}%)",
        overhead * 100.0
    );

    let soundness_doc = soundness_report(
        soundness_sections,
        race_detector_section(plain_ms, detected_ms),
    );
    write_json(&soundness_path, &soundness_doc.render());
    println!("wrote {}", soundness_path.display());

    if let Some(max) = max_race_overhead {
        if overhead > max {
            eprintln!(
                "explore_stats: race-detector overhead {:.1}% exceeds the limit {:.1}%",
                overhead * 100.0,
                max * 100.0
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
