//! Telemetry statistics for the gated workloads: event counts, per-phase wall-time
//! breakdowns and the instrumentation-overhead probe.
//!
//! Runs the exploration throughput probe (the dot-product search of `explore_stats`) and
//! the canonical auto-tuning runs with an enabled collector, then writes the
//! machine-readable `BENCH_telemetry.json` summarising what the instrumentation observed:
//! per-workload event counts by kind and the per-phase breakdown (`enumerate` /
//! `typecheck` / `compile` / `execute` / `score`, plus the tuner's `sample` / `climb`).
//!
//! Flags:
//!
//! * `--json-out <path>` — where to write `BENCH_telemetry.json` (default: working dir),
//! * `--chrome-trace <path>` — also export the recorded spans as a Chrome `trace_event`
//!   file loadable in `about://tracing` or Perfetto (one track per workload),
//! * `--jsonl <path>` — additionally stream every event through the
//!   [`lift_telemetry::JsonLines`] sink as it is recorded,
//! * `--max-overhead <fraction>` — re-run the explore probe with the
//!   [`lift_telemetry::Null`] and [`lift_telemetry::InMemory`] collectors (best of three
//!   each) and exit non-zero when the measured instrumentation overhead exceeds the
//!   fraction (CI asserts `0.05`).
//!
//! The wall-clock numbers in the report are machine-dependent (CI archives them per PR);
//! the report *shape* is deterministic and pinned by the report-builder tests.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use lift_bench::report::{overhead_section, telemetry_entry, telemetry_report};
use lift_bench::schema::write_json;
use lift_bench::{autotune_config, explore_config};
use lift_benchmarks::dot_product;
use lift_rewrite::{explore, explore_with};
use lift_telemetry::{chrome_trace, Collector, InMemory, JsonLines, Tee, TimedEvent};
use lift_tuner::{tune_with, Workload};
use lift_vgpu::DeviceProfile;

struct Args {
    json_out: PathBuf,
    chrome_trace: Option<PathBuf>,
    jsonl: Option<PathBuf>,
    max_overhead: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json_out: "BENCH_telemetry.json".into(),
        chrome_trace: None,
        jsonl: None,
        max_overhead: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or(format!("missing value for {flag}"));
        match flag.as_str() {
            "--json-out" => args.json_out = value()?.into(),
            "--chrome-trace" => args.chrome_trace = Some(value()?.into()),
            "--jsonl" => args.jsonl = Some(value()?.into()),
            "--max-overhead" => {
                let v: f64 = value()?
                    .parse()
                    .map_err(|e| format!("invalid --max-overhead: {e}"))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!("--max-overhead must be non-negative, got `{v}`"));
                }
                args.max_overhead = Some(v);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// Runs `work` with an [`InMemory`] collector (teed into `stream` when present) and
/// returns the recorded events plus the measured wall-clock in milliseconds.
fn record(
    stream: Option<&dyn Collector>,
    work: impl FnOnce(&dyn Collector),
) -> (Vec<TimedEvent>, f64) {
    let mem = InMemory::new();
    let start = Instant::now();
    match stream {
        Some(s) => work(&Tee(&mem, s)),
        None => work(&mem),
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (mem.into_events(), wall_ms)
}

fn summarise(name: &str, events: &[TimedEvent], wall_ms: f64) {
    let phases: Vec<String> = lift_telemetry::phase_durations(events)
        .iter()
        .map(|(phase, us)| format!("{phase}={:.1}ms", *us as f64 / 1e3))
        .collect();
    println!(
        "{name:24} {wall_ms:8.1} ms, {:5} events, {}",
        events.len(),
        phases.join(" ")
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("telemetry_stats: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stream = args.jsonl.as_ref().map(|path| {
        JsonLines::create(path).unwrap_or_else(|e| panic!("create {}: {e}", path.display()))
    });
    let stream_ref = stream.as_ref().map(|s| s as &dyn Collector);

    let mut entries = Vec::new();
    let mut tracks: Vec<(String, Vec<TimedEvent>)> = Vec::new();

    // 1. The exploration throughput probe (the same search `explore_stats` gates).
    let program = dot_product::high_level_program(512);
    let explore_probe = explore_config(4000);
    let (events, wall_ms) = record(stream_ref, |collector| {
        explore_with(&program, &explore_probe, collector).expect("exploration runs");
    });
    summarise("explore:dot_product", &events, wall_ms);
    entries.push(telemetry_entry("explore:dot_product", &events, wall_ms));
    tracks.push(("explore:dot_product".to_string(), events));

    // 2. The canonical auto-tuning runs (NVIDIA profile; the AMD runs share the same
    //    instrumentation and phase structure, so one device keeps the probe affordable).
    let device = DeviceProfile::nvidia();
    for workload in Workload::all() {
        let config = autotune_config(&workload, &device);
        let (events, wall_ms) = record(stream_ref, |collector| {
            tune_with(&workload.program, &config, collector).expect("tuning runs");
        });
        let name = format!("tune:{}", workload.name);
        summarise(&name, &events, wall_ms);
        entries.push(telemetry_entry(&name, &events, wall_ms));
        tracks.push((name, events));
    }

    // 3. The instrumentation-overhead probe: the explore loop with the default `Null`
    //    collector against the enabled `InMemory` collector, best of three each.
    let mut null_ms = f64::INFINITY;
    let mut collected_ms = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        explore(&program, &explore_probe).expect("exploration runs");
        null_ms = null_ms.min(start.elapsed().as_secs_f64() * 1e3);

        let mem = InMemory::new();
        let start = Instant::now();
        explore_with(&program, &explore_probe, &mem).expect("exploration runs");
        collected_ms = collected_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let overhead = (collected_ms - null_ms) / null_ms;
    println!(
        "instrumentation overhead: null {null_ms:.1} ms vs collected {collected_ms:.1} ms \
         ({:+.1}%)",
        overhead * 100.0
    );

    let doc = telemetry_report(entries, Some(overhead_section(null_ms, collected_ms)));
    write_json(&args.json_out, &doc.render());
    println!("wrote {}", args.json_out.display());

    if let Some(path) = &args.chrome_trace {
        let borrowed: Vec<(&str, &[TimedEvent])> = tracks
            .iter()
            .map(|(name, events)| (name.as_str(), events.as_slice()))
            .collect();
        write_json(path, &chrome_trace(&borrowed));
        println!("wrote {}", path.display());
    }
    drop(stream);

    if let Some(max) = args.max_overhead {
        if overhead > max {
            eprintln!(
                "telemetry_stats: instrumentation overhead {:.1}% exceeds the limit {:.1}%",
                overhead * 100.0,
                max * 100.0
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
