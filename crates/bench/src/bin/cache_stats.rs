//! The derivation-service probe: measures the cold/warm/batched behaviour of
//! `lift-service` on every tracked workload and writes the machine-readable
//! `BENCH_cache.json` (override the path with `--json-out <path>`).
//!
//! Per workload (NVIDIA device profile, the canonical `autotune_config` budgets):
//!
//! * **cold** — the first request against a shared service: a cache miss running the full
//!   enumerate-and-tune search (warm-started from structurally similar earlier workloads
//!   when their tuned points fit the space),
//! * **warm** — the same request again: a cache hit that replays the recorded derivation
//!   chain through provenance and re-validates it (compile + ownership pass, execute,
//!   output check) — one candidate instead of a search, which is where the ≥10× speedup
//!   the `perf_gate --cache` floor enforces comes from,
//! * **batch** — eight identical requests submitted to a *fresh* service and drained as
//!   one batch: they deduplicate onto a single cold derivation, pinned both by the
//!   service's own counters and by the `cache_miss` telemetry event count.
//!
//! The shared service is in-memory: this binary measures the serving layer, not the disk.

use std::time::Instant;

use lift_bench::autotune_config;
use lift_bench::report::{cache_batch, cache_entry, cache_report};
use lift_bench::schema::{json_out_arg, write_json};
use lift_service::{DerivationService, Request, Served, ServiceConfig};
use lift_telemetry::{counts_by_kind, InMemory, Null};
use lift_tuner::Workload;
use lift_vgpu::DeviceProfile;

const BATCH_SIZE: usize = 8;

fn main() {
    let out_path = json_out_arg("BENCH_cache.json");
    let device = DeviceProfile::nvidia();
    let mut service =
        DerivationService::open(ServiceConfig::default()).expect("in-memory service opens");
    let mut entries = Vec::new();

    for workload in Workload::all() {
        let request = Request {
            name: workload.name.to_string(),
            program: workload.program.clone(),
            config: autotune_config(&workload, &device),
        };

        let start = Instant::now();
        let cold = service
            .request_with(request.clone(), &Null)
            .expect("cold derivation succeeds");
        let cold_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            cold.served,
            Served::ColdMiss,
            "{}: first request is cold",
            workload.name
        );

        let start = Instant::now();
        let warm = service
            .request_with(request.clone(), &Null)
            .expect("warm hit succeeds");
        let warm_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            warm.served,
            Served::WarmHit,
            "{}: second request is warm",
            workload.name
        );

        // The batch runs against a fresh service so the duplicates coalesce onto one cold
        // derivation instead of all hitting the entry the shared service just cached.
        let collector = InMemory::default();
        let mut fresh =
            DerivationService::open(ServiceConfig::default()).expect("in-memory service opens");
        for _ in 0..BATCH_SIZE {
            fresh.submit(request.clone());
        }
        let start = Instant::now();
        fresh
            .drain_with(&collector)
            .expect("batched drain succeeds");
        let batch_ms = start.elapsed().as_secs_f64() * 1e3;
        let stats = fresh.stats();
        let events = collector.events();
        let miss_events = counts_by_kind(&events)
            .iter()
            .find(|(kind, _)| *kind == "cache_miss")
            .map_or(0, |(_, n)| *n);

        println!(
            "{:20} on {:18}: cold {cold_ms:9.1} ms -> warm {warm_ms:7.1} ms ({:6.1}x, \
             {} warm-start seeds); batch of {BATCH_SIZE}: {} derivation(s), {} coalesced",
            workload.name,
            device.name,
            cold_ms / warm_ms,
            cold.warm_seeds,
            stats.derivations,
            stats.coalesced,
        );
        entries.push(cache_entry(
            workload.name,
            &device.name,
            cold_ms,
            warm_ms,
            cold.warm_seeds,
            cache_batch(
                stats.requests,
                stats.derivations,
                stats.coalesced,
                miss_events,
                batch_ms,
            ),
        ));
    }

    let stats = service.stats();
    println!(
        "shared service: {} requests, {} hits, {} misses, {} warm-started searches",
        stats.requests, stats.hits, stats.misses, stats.warm_started
    );
    write_json(&out_path, &cache_report(entries).render());
    println!("wrote {}", out_path.display());
}
