//! Regenerates Figure 8 of the paper: relative performance of the Lift-generated kernels
//! compared to the hand-written reference implementations, for the three optimisation levels,
//! both device profiles and both input sizes.
//!
//! Usage: `cargo run --release -p lift-bench --bin figure8 [small|large|both]`
//!
//! Every kernel (generated and reference) is executed on the virtual GPU; the bar heights are
//! the ratios of estimated execution times under the device profile's cost model. Outputs are
//! verified against the host reference on every run.

use lift_bench::{format_relative, geometric_mean};
use lift_benchmarks::runner::{relative_performance, run_lift, run_reference};
use lift_benchmarks::{all_benchmarks, ProblemSize};
use lift_codegen::CompilationOptions;
use lift_vgpu::DeviceProfile;

fn optimisation_levels() -> Vec<(&'static str, CompilationOptions)> {
    vec![
        ("none", CompilationOptions::none()),
        (
            "barrier+cf",
            CompilationOptions::without_array_access_simplification(),
        ),
        ("barrier+cf+array", CompilationOptions::all_optimisations()),
    ]
}

fn main() {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "both".to_string());
    let sizes: Vec<ProblemSize> = match arg.as_str() {
        "small" => vec![ProblemSize::Small],
        "large" => vec![ProblemSize::Large],
        _ => vec![ProblemSize::Small, ProblemSize::Large],
    };
    let devices = [DeviceProfile::amd(), DeviceProfile::nvidia()];

    println!("Figure 8: performance of generated code relative to hand-written OpenCL");
    println!("(1.0 = parity with the manually optimised reference; higher is better)\n");

    for device in &devices {
        println!("==== Device profile: {} ====", device.name);
        println!(
            "{:<18} {:>6}  {:>18} {:>18} {:>18}  correct",
            "Benchmark", "size", "none", "barrier+cf", "barrier+cf+array"
        );
        let mut means: Vec<Vec<f64>> = vec![Vec::new(); optimisation_levels().len()];
        for size in &sizes {
            for case in all_benchmarks(*size) {
                let reference = match run_reference(&case) {
                    Ok(r) => r,
                    Err(e) => {
                        println!(
                            "{:<18} {:>6}  reference failed: {e}",
                            case.info.name,
                            size.label()
                        );
                        continue;
                    }
                };
                let mut cells = Vec::new();
                let mut all_correct = reference.correct;
                for (level_idx, (_, options)) in optimisation_levels().iter().enumerate() {
                    match run_lift(&case, options) {
                        Ok(outcome) => {
                            let rel = relative_performance(&outcome, &reference, device);
                            means[level_idx].push(rel);
                            all_correct &= outcome.correct;
                            cells.push(format_relative(rel));
                        }
                        Err(e) => cells.push(format!("error: {e}")),
                    }
                }
                println!(
                    "{:<18} {:>6}  {:>18} {:>18} {:>18}  {}",
                    case.info.name,
                    size.label(),
                    cells.first().cloned().unwrap_or_default(),
                    cells.get(1).cloned().unwrap_or_default(),
                    cells.get(2).cloned().unwrap_or_default(),
                    if all_correct { "yes" } else { "NO" },
                );
            }
        }
        println!(
            "{:<18} {:>6}  {:>18} {:>18} {:>18}",
            "Geometric mean",
            "",
            format_relative(geometric_mean(&means[0])),
            format_relative(geometric_mean(&means[1])),
            format_relative(geometric_mean(&means[2])),
        );
        println!();
    }

    println!(
        "Expected shape (cf. the paper): with all optimisations the generated code is on par \
         with the hand-written kernels; disabling array-access simplification costs the most \
         for the benchmarks that transpose or slide over their data (MM, ATAX, Convolution)."
    );
}
