//! The auto-tuning trajectory probe: tunes the three high-level workloads (dot product,
//! matrix multiplication, N-Body) on both device profiles and writes the machine-readable
//! `BENCH_autotune.json` (override the path with `--json-out <path>`).
//!
//! For every workload × device pair the binary first runs the *default-configuration*
//! exploration (`ExplorationConfig::default()` — the fixed `[64]/[16]` launch and default
//! rule options every caller got before the tuner existed), then lets `lift-tuner` search
//! the joint `(RuleOptions, launch)` space with the canonical seeded strategy. The report
//! records both numbers; the `improvement` field is the ratio, and the CI perf gate
//! (`perf_gate`) fails the build when a committed tuned best-time regresses by more than
//! the threshold.

use std::time::Instant;

use lift_bench::report::{autotune_entry, autotune_report};
use lift_bench::schema::{json_out_arg, write_json};
use lift_bench::{autotune_config, autotune_strategy};
use lift_rewrite::{explore, ExplorationConfig};
use lift_tuner::{tune, Workload};
use lift_vgpu::DeviceProfile;

fn main() {
    let out_path = json_out_arg("BENCH_autotune.json");
    let mut entries = Vec::new();

    for workload in Workload::all() {
        for device in [DeviceProfile::nvidia(), DeviceProfile::amd()] {
            let default_best = explore(
                &workload.program,
                &ExplorationConfig {
                    device: device.clone(),
                    ..ExplorationConfig::default()
                },
            )
            .expect("default exploration runs")
            .variants
            .first()
            .map(|v| v.estimated_time);

            let config = autotune_config(&workload, &device);
            let start = Instant::now();
            let result = tune(&workload.program, &config).expect("tuning runs");
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;

            let tuned = result.best_variant.as_ref().map(|b| b.estimated_time);
            println!(
                "{:16} on {:18}: default {} -> tuned {} ({} points, {} rule searches, \
                 {} cache hits, {:.1} ms)",
                workload.name,
                device.name,
                default_best.map_or("-".to_string(), |t| format!("{t:10.1}")),
                tuned.map_or("-".to_string(), |t| format!("{t:10.1}")),
                result.points_evaluated,
                result.enumerations,
                result.enumeration_cache_hits,
                wall_ms,
            );
            if let (Some(point), Some(best)) = (&result.best_point, &result.best_variant) {
                println!(
                    "    best: splits {:?}, widths {:?}, launch {:?}/{:?}",
                    point.rule_options.split_sizes,
                    point.rule_options.vector_widths,
                    point.launch.global,
                    point.launch.local,
                );
                for step in &best.derivation {
                    println!("      {step}");
                }
            }
            entries.push(autotune_entry(
                workload.name,
                &autotune_strategy(&workload),
                default_best,
                &result,
                wall_ms,
            ));
        }
    }

    write_json(&out_path, &autotune_report(entries).render());
    println!("wrote {}", out_path.display());
}
