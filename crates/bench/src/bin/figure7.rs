//! Regenerates Figure 7 of the paper: the compiler-generated OpenCL kernel for the partial
//! dot product of Listing 1.

use lift_benchmarks::dot_product;
use lift_codegen::{compile, CompilationOptions};

fn main() {
    let n = 16 * 1024;
    let program = dot_product::lift_program(n);

    println!("Listing 1 (low-level Lift IL):\n{program}");

    let options = CompilationOptions::all_optimisations().with_launch_1d(n / 2, 64);
    let kernel = compile(&program, &options).expect("the dot product compiles");
    println!("Figure 7 (generated OpenCL kernel):\n");
    println!("{}", kernel.source());

    let unoptimised = compile(
        &program,
        &CompilationOptions::none().with_launch_1d(n / 2, 64),
    )
    .expect("compiles");
    println!(
        "// With all optimisations: {} lines. Without: {} lines.",
        kernel.line_count(),
        unoptimised.line_count()
    );
}
