//! Regenerates Figure 6 of the paper: the simplification of the automatically generated array
//! index for matrix transposition.
//!
//! The same view chain (`split N . gather(stride) . join` over an `N x M` matrix) is consumed
//! twice: once with the raw index builder (line 1 of the figure) and once with the
//! range-aware simplification enabled (line 3).

use lift_arith::ArithExpr;
use lift_codegen::view::{resolve, AccessBuilder, Resolved, View};
use lift_ir::{AddressSpace, Reorder};

fn resolve_index(view: &View, simplify: bool) -> ArithExpr {
    match resolve(view, &AccessBuilder::new(simplify)).expect("view resolves") {
        Resolved::MemoryAccess { index, .. } => index,
        Resolved::Literal(_) => unreachable!("the access reads memory"),
    }
}

fn main() {
    // matrixTranspose(x: [[float]M]N) = mapWrg(mapLcl(id)) . split N . gather(...) . join
    let n = ArithExpr::size_var("N");
    let m = ArithExpr::size_var("M");
    let wg_id = ArithExpr::var_in_range("wg_id", 0, m.clone());
    let l_id = ArithExpr::var_in_range("l_id", 0, n.clone());

    let memory = View::memory("x", AddressSpace::Global, vec![n.clone(), m.clone()]);
    let joined = View::Join {
        base: Box::new(memory),
        inner: m.clone(),
    };
    // The gather permutation of Section 3.2 (i -> i/M + (i mod M) * N), i.e. stride N over the
    // flattened N*M array.
    let gathered = View::Reorder {
        base: Box::new(joined),
        reorder: Reorder::Stride(n.clone()),
        len: n.clone() * m.clone(),
    };
    let split = View::Split {
        base: Box::new(gathered),
        chunk: n.clone(),
    };
    let element = split.access(wg_id).access(l_id);

    let raw = resolve_index(&element, false);
    let simplified = resolve_index(&element, true);

    println!("Figure 6: simplification of the transposition read index\n");
    println!("(1) mechanically generated:\n    {raw}\n");
    println!("(3) after arithmetic simplification with range information:\n    {simplified}\n");
    println!(
        "operations: {} (of which {} div/mod)  ->  {} (of which {} div/mod)",
        raw.op_count(),
        raw.div_mod_count(),
        simplified.op_count(),
        simplified.div_mod_count()
    );
}
