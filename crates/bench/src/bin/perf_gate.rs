//! The CI performance-regression gate.
//!
//! Compares freshly generated `BENCH_explore.json` / `BENCH_autotune.json` reports against
//! the baselines committed in the repository and fails (exit code 1) when a tracked number
//! regresses by more than the threshold (default 25%). The checks live in
//! [`lift_bench::gate`]; this binary only parses flags, loads the files and prints the
//! verdict lines:
//!
//! * exploration throughput (`candidates_per_sec` at `max_candidates = 4000`) must not drop
//!   below `baseline × (1 − threshold)`,
//! * the bytecode execution tier must stay at least
//!   [`lift_bench::gate::BYTECODE_SPEEDUP_FLOOR`]× faster than the slotted interpreter on
//!   the current report's per-engine comparison probe (the `engines` section written by
//!   `explore_stats`) — a same-run wall-time ratio, so it is machine-independent,
//! * every `(workload, device)` tuned best-time in the baseline must still exist and must
//!   not exceed `baseline × (1 + threshold)` — estimated times come from the deterministic
//!   cost model, so this comparison is machine-independent,
//! * a workload present only in the *current* report (newly added, baseline not yet
//!   committed) is reported as `[new]` and never trips the gate.
//!
//! ```text
//! perf_gate --baseline-explore BENCH_explore.json --current-explore target/BENCH_explore.json \
//!           --baseline-autotune BENCH_autotune.json --current-autotune target/BENCH_autotune.json \
//!           [--telemetry target/BENCH_telemetry.json] [--cache target/BENCH_cache.json] \
//!           [--threshold 0.25]
//! ```
//!
//! `--telemetry` points at a freshly generated `BENCH_telemetry.json` (from
//! `telemetry_stats`); when given and a check trips, the verdict includes the offending
//! workload's per-phase wall-time breakdown so the regression is attributable to a phase
//! (enumerate/typecheck/compile/execute/score) without re-running anything.
//!
//! `--cache` points at a freshly generated `BENCH_cache.json` (from `cache_stats`); when
//! given, the derivation-service checks run too: every tracked workload's warm hit must be
//! at least [`lift_bench::gate::CACHE_SPEEDUP_FLOOR`]× faster than its cold derivation, and
//! every batch of identical requests must have cost exactly one derivation. Both are
//! same-run ratios/counters, so they take no baseline.
//!
//! `--threshold` must be a fraction in `[0, 1]`; anything else (negative, NaN, > 1) is a
//! usage error — such a value would make the gate pass or fail vacuously.

use std::process::ExitCode;

use lift_bench::gate::{check_cache_report, check_reports, validate_threshold};
use lift_bench::schema::{parse, Json};

struct Args {
    baseline_explore: String,
    current_explore: String,
    baseline_autotune: String,
    current_autotune: String,
    telemetry: Option<String>,
    cache: Option<String>,
    threshold: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline_explore: "BENCH_explore.json".into(),
        current_explore: "target/BENCH_explore.json".into(),
        baseline_autotune: "BENCH_autotune.json".into(),
        current_autotune: "target/BENCH_autotune.json".into(),
        telemetry: None,
        cache: None,
        threshold: 0.25,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or(format!("missing value for {flag}"));
        match flag.as_str() {
            "--baseline-explore" => args.baseline_explore = value()?,
            "--current-explore" => args.current_explore = value()?,
            "--baseline-autotune" => args.baseline_autotune = value()?,
            "--current-autotune" => args.current_autotune = value()?,
            "--telemetry" => args.telemetry = Some(value()?),
            "--cache" => args.cache = Some(value()?),
            "--threshold" => {
                args.threshold = value()?
                    .parse()
                    .map_err(|e| format!("invalid threshold: {e}"))?;
                validate_threshold(args.threshold).map_err(|e| format!("usage error: {e}"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn run(args: &Args) -> Result<bool, String> {
    let telemetry = args.telemetry.as_deref().map(load).transpose()?;
    let mut outcome = check_reports(
        &load(&args.baseline_explore)?,
        &load(&args.current_explore)?,
        &load(&args.baseline_autotune)?,
        &load(&args.current_autotune)?,
        telemetry.as_ref(),
        args.threshold,
    )?;
    // The derivation-service checks (warm-hit speedup floor, single-derivation batches)
    // are same-run invariants of the current BENCH_cache.json — no baseline involved.
    if let Some(path) = &args.cache {
        outcome
            .lines
            .extend(check_cache_report(&load(path)?)?.lines);
    }
    for line in &outcome.lines {
        println!("{}", line.message);
    }
    Ok(outcome.passed())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(true) => {
            println!(
                "perf gate passed (threshold {:.0}%)",
                args.threshold * 100.0
            );
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!(
                "perf gate FAILED: a tracked number regressed by more than {:.0}%",
                args.threshold * 100.0
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("perf_gate: {e}");
            ExitCode::FAILURE
        }
    }
}
