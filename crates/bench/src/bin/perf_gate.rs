//! The CI performance-regression gate.
//!
//! Compares freshly generated `BENCH_explore.json` / `BENCH_autotune.json` reports against
//! the baselines committed in the repository and fails (exit code 1) when a tracked number
//! regresses by more than the threshold (default 25%):
//!
//! * exploration throughput (`candidates_per_sec` at `max_candidates = 4000`) must not drop
//!   below `baseline × (1 − threshold)`,
//! * every `(workload, device)` tuned best-time in the baseline must still exist and must
//!   not exceed `baseline × (1 + threshold)` — estimated times come from the deterministic
//!   cost model, so this comparison is machine-independent.
//!
//! ```text
//! perf_gate --baseline-explore BENCH_explore.json --current-explore target/BENCH_explore.json \
//!           --baseline-autotune BENCH_autotune.json --current-autotune target/BENCH_autotune.json \
//!           [--threshold 0.25]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use lift_bench::schema::{parse, Json};

struct Args {
    baseline_explore: String,
    current_explore: String,
    baseline_autotune: String,
    current_autotune: String,
    threshold: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline_explore: "BENCH_explore.json".into(),
        current_explore: "target/BENCH_explore.json".into(),
        baseline_autotune: "BENCH_autotune.json".into(),
        current_autotune: "target/BENCH_autotune.json".into(),
        threshold: 0.25,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or(format!("missing value for {flag}"));
        match flag.as_str() {
            "--baseline-explore" => args.baseline_explore = value()?,
            "--current-explore" => args.current_explore = value()?,
            "--baseline-autotune" => args.baseline_autotune = value()?,
            "--current-autotune" => args.current_autotune = value()?,
            "--threshold" => {
                args.threshold = value()?
                    .parse()
                    .map_err(|e| format!("invalid threshold: {e}"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn explore_throughput(doc: &Json, path: &str) -> Result<f64, String> {
    doc.get("max_candidates_4000")
        .and_then(|s| s.get("candidates_per_sec"))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{path}: missing max_candidates_4000.candidates_per_sec"))
}

/// `(workload, device) → tuned_best_time` for every entry that has one.
fn tuned_times(doc: &Json, path: &str) -> Result<HashMap<(String, String), f64>, String> {
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing results[]"))?;
    let mut out = HashMap::new();
    for entry in results {
        let workload = entry
            .get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: entry without workload"))?;
        let device = entry
            .get("device")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: entry without device"))?;
        if let Some(time) = entry.get("tuned_best_time").and_then(Json::as_f64) {
            out.insert((workload.to_string(), device.to_string()), time);
        }
    }
    Ok(out)
}

fn run(args: &Args) -> Result<bool, String> {
    let mut ok = true;

    // 1. Exploration throughput: lower is a regression. This number is wall-clock based and
    //    therefore machine-dependent — the committed baseline must be refreshed (re-run
    //    `explore_stats` and commit the JSON) whenever the reference machine class changes,
    //    and the 25% threshold absorbs normal runner-to-runner variance.
    let baseline = explore_throughput(&load(&args.baseline_explore)?, &args.baseline_explore)?;
    let current = explore_throughput(&load(&args.current_explore)?, &args.current_explore)?;
    let floor = baseline * (1.0 - args.threshold);
    let verdict = if current >= floor { "ok" } else { "FAIL" };
    println!(
        "[{verdict}] exploration throughput: {current:.0} candidates/sec \
         (baseline {baseline:.0}, floor {floor:.0})"
    );
    ok &= current >= floor;

    // 2. Tuned best-times: higher is a regression (deterministic cost model, so any drift
    //    beyond the threshold is a real change in generated code or search quality).
    let baseline_times = tuned_times(&load(&args.baseline_autotune)?, &args.baseline_autotune)?;
    let current_times = tuned_times(&load(&args.current_autotune)?, &args.current_autotune)?;
    let mut keys: Vec<_> = baseline_times.keys().collect();
    keys.sort();
    for key in keys {
        let baseline = baseline_times[key];
        let ceiling = baseline * (1.0 + args.threshold);
        match current_times.get(key) {
            None => {
                println!(
                    "[FAIL] autotune {}/{}: missing from current report",
                    key.0, key.1
                );
                ok = false;
            }
            Some(&current) => {
                let verdict = if current <= ceiling { "ok" } else { "FAIL" };
                println!(
                    "[{verdict}] autotune {}/{}: tuned best {current:.1} \
                     (baseline {baseline:.1}, ceiling {ceiling:.1})",
                    key.0, key.1
                );
                ok &= current <= ceiling;
            }
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(true) => {
            println!(
                "perf gate passed (threshold {:.0}%)",
                args.threshold * 100.0
            );
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!(
                "perf gate FAILED: a tracked number regressed by more than {:.0}%",
                args.threshold * 100.0
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("perf_gate: {e}");
            ExitCode::FAILURE
        }
    }
}
