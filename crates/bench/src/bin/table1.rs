//! Regenerates Table 1 of the paper: benchmark overview, characteristics and code sizes.
//!
//! The "OpenCL (paper)" / "Lift IL (paper)" columns repeat the line counts reported in the
//! paper for the original hand-written kernels; the "generated" and "Lift IL (this repo)"
//! columns are measured from this reproduction (generated OpenCL source lines and the
//! pretty-printed low-level Lift IL).

use lift_benchmarks::runner::compile_case;
use lift_benchmarks::{all_benchmarks, ProblemSize};
use lift_codegen::CompilationOptions;
use lift_ir::pretty::line_count;

fn yes_no(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "-"
    }
}

fn main() {
    println!("Table 1: Overview, characteristics and code size of the benchmarks\n");
    println!(
        "{:<18} {:<12} {:>5} {:>7} {:>4} {:>5} {:>5} | {:>12} {:>12} {:>12} | {:>10} {:>10}",
        "Benchmark",
        "Source",
        "local",
        "private",
        "vec",
        "coal",
        "iter",
        "OpenCL(paper)",
        "highIL(paper)",
        "lowIL(paper)",
        "gen OpenCL",
        "lowIL(here)"
    );
    for case in all_benchmarks(ProblemSize::Small) {
        let generated_lines = compile_case(&case, &CompilationOptions::all_optimisations())
            .map(|k| k.line_count())
            .unwrap_or(0);
        let il_lines = line_count(&case.program);
        let info = &case.info;
        println!(
            "{:<18} {:<12} {:>5} {:>7} {:>4} {:>5} {:>5} | {:>12} {:>12} {:>12} | {:>10} {:>10}",
            info.name,
            info.source,
            yes_no(info.local_memory),
            yes_no(info.private_memory),
            yes_no(info.vectorisation),
            yes_no(info.coalescing),
            info.iteration_space,
            info.opencl_loc_paper,
            info.high_level_loc_paper,
            info.low_level_loc_paper,
            generated_lines,
            il_lines,
        );
    }
    println!(
        "\nAs in the paper, the hand-written OpenCL implementations are an order of magnitude \
         longer than the Lift IL programs they correspond to."
    );
}
