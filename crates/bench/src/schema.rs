//! The shared machine-readable output schema of the benchmark harness binaries.
//!
//! `explore_stats` and `autotune_stats` both emit JSON trajectories that CI archives and the
//! `perf_gate` binary compares against committed baselines, so the three must agree on one
//! schema. This module provides a tiny JSON value type ([`Json`]) with a deterministic
//! writer (insertion-ordered objects, fixed float formatting — byte-identical output for
//! equal inputs, which the autotune determinism test relies on) and a parser for reading
//! baselines back. No external crates: the build environment is offline.

use std::fmt::Write as _;

/// A JSON value with insertion-ordered object keys.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any number (always rendered through [`fmt_f64`]).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order so output is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: a number value.
    pub fn num(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// Convenience: an optional number (`None` → `null`).
    pub fn opt_num(v: Option<f64>) -> Json {
        v.map_or(Json::Null, Json::Num)
    }

    /// Convenience: an array of numbers.
    pub fn nums<T: Into<f64> + Copy>(vs: &[T]) -> Json {
        Json::Arr(vs.iter().map(|v| Json::Num((*v).into())).collect())
    }

    /// Looks up `key` in an object (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(vs) => Some(vs),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON with a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => out.push_str(&fmt_f64(*v)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(vs) => {
                if vs.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Deterministic float formatting: integers without a fraction, everything else with up to
/// three fractional digits (times and throughputs do not need more).
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        let s = format!("{v:.3}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (the subset the harness emits: no exponent-less edge cases are
/// excluded — standard numbers, strings with the escapes above, arrays, objects, literals).
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut values = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(values));
            }
            loop {
                values.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(values));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("invalid \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Push the full UTF-8 scalar starting here.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Reads the value of a `--json-out <path>` command-line flag, or `default` when absent.
///
/// Shared by `explore_stats` and `autotune_stats` so CI steps choose the output location
/// explicitly instead of relying on hard-coded file names in the working directory.
pub fn json_out_arg(default: &str) -> std::path::PathBuf {
    path_arg("--json-out", default)
}

/// Reads the value of a `<flag> <path>` (or `<flag>=<path>`) command-line argument, or
/// `default` when absent — the generalisation of [`json_out_arg`] for binaries that write
/// more than one report (e.g. `explore_stats`'s `--soundness-out`).
pub fn path_arg(flag: &str, default: &str) -> std::path::PathBuf {
    let prefix = format!("{flag}=");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == flag {
            if let Some(path) = args.next() {
                return path.into();
            }
        } else if let Some(path) = arg.strip_prefix(&prefix) {
            return path.into();
        }
    }
    default.into()
}

/// Writes `content` to `path`, creating parent directories as needed (CI points
/// `--json-out` into `target/perf/`, which does not exist on a fresh checkout).
///
/// # Panics
///
/// Panics when the file cannot be written — the harness binaries have no useful recovery.
pub fn write_json(path: &std::path::Path, content: &str) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("create {}: {e}", parent.display()));
        }
    }
    std::fs::write(path, content).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_harness_shapes() {
        let doc = Json::obj([
            ("name", Json::str("dot product")),
            ("best", Json::opt_num(Some(23243.125))),
            ("missing", Json::opt_num(None)),
            ("sizes", Json::nums(&[2.0, 4.0, 8.0])),
            (
                "nested",
                Json::obj([("ok", Json::Bool(true)), ("n", Json::num(4096))]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = doc.render();
        let parsed = parse(&text).expect("parses");
        assert_eq!(
            parsed.get("name").and_then(Json::as_str),
            Some("dot product")
        );
        assert_eq!(parsed.get("best").and_then(Json::as_f64), Some(23243.125));
        assert_eq!(parsed.get("missing"), Some(&Json::Null));
        assert_eq!(
            parsed
                .get("nested")
                .and_then(|n| n.get("n"))
                .and_then(Json::as_f64),
            Some(4096.0)
        );
        // Rendering is deterministic.
        assert_eq!(text, parse(&text).unwrap().render());
    }

    #[test]
    fn parses_the_committed_explore_baseline_shape() {
        let doc = r#"{
  "max_candidates_4000": {
    "explored": 973,
    "candidates_per_sec": 30082.5,
    "best_estimated_time": 422.883,
    "best_derivations": [["a @ .x", "b @ .y"]]
  },
  "speedup_over_baseline": 6.30
}"#;
        let parsed = parse(doc).expect("parses");
        let section = parsed.get("max_candidates_4000").expect("section");
        assert_eq!(
            section.get("candidates_per_sec").and_then(Json::as_f64),
            Some(30082.5)
        );
        assert_eq!(
            section
                .get("best_derivations")
                .and_then(Json::as_arr)
                .and_then(|a| a[0].as_arr())
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn float_formatting_is_stable() {
        assert_eq!(fmt_f64(4096.0), "4096");
        assert_eq!(fmt_f64(23243.125), "23243.125");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(1.0 / 3.0), "0.333");
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn escapes_are_symmetric() {
        let doc = Json::str("a\"b\\c\nd");
        let parsed = parse(&doc.render()).expect("parses");
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{}{}").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
