//! The shared machine-readable output schema of the benchmark harness binaries.
//!
//! `explore_stats`, `autotune_stats` and `cache_stats` all emit JSON trajectories that CI
//! archives and the `perf_gate` binary compares against committed baselines, so the
//! binaries must agree on one schema. The JSON value type itself ([`Json`], with its
//! deterministic writer and parser) lives in [`lift_telemetry::json`] — it is shared with
//! the derivation-service cache store — and is re-exported here so harness code keeps its
//! historical `crate::schema::Json` path. This module adds the harness-only pieces: flag
//! parsing for `--json-out`-style arguments and the report writer.

pub use lift_telemetry::json::{fmt_f64, parse, Json};

/// Reads the value of a `--json-out <path>` command-line flag, or `default` when absent.
///
/// Shared by `explore_stats` and `autotune_stats` so CI steps choose the output location
/// explicitly instead of relying on hard-coded file names in the working directory.
pub fn json_out_arg(default: &str) -> std::path::PathBuf {
    path_arg("--json-out", default)
}

/// Reads the value of a `<flag> <path>` (or `<flag>=<path>`) command-line argument, or
/// `default` when absent — the generalisation of [`json_out_arg`] for binaries that write
/// more than one report (e.g. `explore_stats`'s `--soundness-out`).
pub fn path_arg(flag: &str, default: &str) -> std::path::PathBuf {
    let prefix = format!("{flag}=");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == flag {
            if let Some(path) = args.next() {
                return path.into();
            }
        } else if let Some(path) = arg.strip_prefix(&prefix) {
            return path.into();
        }
    }
    default.into()
}

/// Writes `content` to `path`, creating parent directories as needed (CI points
/// `--json-out` into `target/perf/`, which does not exist on a fresh checkout).
///
/// # Panics
///
/// Panics when the file cannot be written — the harness binaries have no useful recovery.
pub fn write_json(path: &std::path::Path, content: &str) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("create {}: {e}", parent.display()));
        }
    }
    std::fs::write(path, content).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_committed_explore_baseline_shape() {
        let doc = r#"{
  "max_candidates_4000": {
    "explored": 973,
    "candidates_per_sec": 30082.5,
    "best_estimated_time": 422.883,
    "best_derivations": [["a @ .x", "b @ .y"]]
  },
  "speedup_over_baseline": 6.30
}"#;
        let parsed = parse(doc).expect("parses");
        let section = parsed.get("max_candidates_4000").expect("section");
        assert_eq!(
            section.get("candidates_per_sec").and_then(Json::as_f64),
            Some(30082.5)
        );
        assert_eq!(
            section
                .get("best_derivations")
                .and_then(Json::as_arr)
                .and_then(|a| a[0].as_arr())
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn reexported_writer_is_the_shared_deterministic_one() {
        let doc = Json::obj([("n", Json::num(4096)), ("t", Json::num(1.0 / 3.0))]);
        assert_eq!(doc.render(), doc.render());
        assert_eq!(fmt_f64(4096.0), "4096");
    }
}
