//! Builders for the machine-readable reports the harness binaries write.
//!
//! All three documents — `BENCH_explore.json`, `BENCH_autotune.json` and
//! `BENCH_telemetry.json` — are assembled here against the shared [`crate::schema`] writer,
//! so the binaries contain flag handling and measurement only. Everything that varies
//! between two runs with identical inputs (wall-clock, throughput, timestamps) enters
//! through explicit parameters, so rendering a result twice with the same timing values is
//! byte-identical — the property the report determinism tests pin down.

use lift_rewrite::Exploration;
use lift_telemetry::{
    counts_by_kind, phase_durations, Event, RejectReason, SoundnessReport, TimedEvent,
};
use lift_tuner::{Strategy, TuningResult};

use crate::schema::Json;

/// Renders a [`Strategy`] for the report.
pub fn strategy_label(strategy: &Strategy) -> String {
    match strategy {
        Strategy::Exhaustive => "exhaustive".to_string(),
        Strategy::RandomHillClimb {
            seed,
            samples,
            max_steps,
        } => format!("hill-climb(seed={seed}, samples={samples}, max_steps={max_steps})"),
        Strategy::SeededHillClimb {
            seeds,
            seed,
            samples,
            max_steps,
        } => format!(
            "seeded-hill-climb(seeds={}, seed={seed}, samples={samples}, max_steps={max_steps})",
            seeds.len()
        ),
    }
}

/// Builds one `results[]` entry of `BENCH_autotune.json`.
///
/// `default_best_time` is the best estimated time of the *default-configuration*
/// exploration (`ExplorationConfig::default()` with the same device) — the baseline the
/// tuned point must beat. `wall_ms` is the measured tuning wall-clock; pass a fixed value to
/// obtain timestamp-independent output.
pub fn autotune_entry(
    workload: &str,
    strategy: &Strategy,
    default_best_time: Option<f64>,
    result: &TuningResult,
    wall_ms: f64,
) -> Json {
    let best = result.best_point.as_ref().zip(result.best_variant.as_ref());
    let improvement = match (default_best_time, &result.best_variant) {
        (Some(d), Some(b)) if b.estimated_time > 0.0 => Some(d / b.estimated_time),
        _ => None,
    };
    let points_per_sec = if wall_ms > 0.0 {
        result.points_evaluated as f64 / (wall_ms / 1e3)
    } else {
        0.0
    };
    Json::obj([
        ("workload", Json::str(workload)),
        ("device", Json::str(&result.device)),
        ("strategy", Json::str(strategy_label(strategy))),
        ("default_best_time", Json::opt_num(default_best_time)),
        (
            "tuned_best_time",
            Json::opt_num(result.best_variant.as_ref().map(|b| b.estimated_time)),
        ),
        ("improvement", Json::opt_num(improvement)),
        (
            "points_evaluated",
            Json::num(result.points_evaluated as f64),
        ),
        ("enumerations", Json::num(result.enumerations as f64)),
        (
            "enumeration_cache_hits",
            Json::num(result.enumeration_cache_hits as f64),
        ),
        ("wall_ms", Json::num(wall_ms)),
        ("points_per_sec", Json::num(points_per_sec)),
        (
            "best",
            best.map_or(Json::Null, |(point, variant)| {
                Json::obj([
                    (
                        "split_sizes",
                        Json::Arr(
                            point
                                .rule_options
                                .split_sizes
                                .iter()
                                .map(|s| Json::num(*s as f64))
                                .collect(),
                        ),
                    ),
                    (
                        "vector_widths",
                        Json::Arr(
                            point
                                .rule_options
                                .vector_widths
                                .iter()
                                .map(|w| Json::num(*w as f64))
                                .collect(),
                        ),
                    ),
                    (
                        // Each tile as a `[rows, cols]` pair; 1D stencil tiles are `[1, x]`.
                        "tile_sizes",
                        Json::Arr(
                            point
                                .rule_options
                                .tile_sizes
                                .iter()
                                .map(|t| {
                                    Json::Arr(vec![Json::num(t.y as f64), Json::num(t.x as f64)])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "global",
                        Json::Arr(
                            point
                                .launch
                                .global
                                .iter()
                                .map(|g| Json::num(*g as f64))
                                .collect(),
                        ),
                    ),
                    (
                        "local",
                        Json::Arr(
                            point
                                .launch
                                .local
                                .iter()
                                .map(|l| Json::num(*l as f64))
                                .collect(),
                        ),
                    ),
                    (
                        "derivation",
                        Json::Arr(variant.derivation.iter().map(Json::str).collect()),
                    ),
                ])
            }),
        ),
        (
            "trajectory",
            Json::Arr(
                result
                    .trajectory
                    .iter()
                    .map(|entry| {
                        Json::obj([
                            (
                                "global",
                                Json::num(entry.point.launch.total_work_items() as f64),
                            ),
                            (
                                "local",
                                Json::num(entry.point.launch.work_group_size() as f64),
                            ),
                            (
                                "split_sizes",
                                Json::Arr(
                                    entry
                                        .point
                                        .rule_options
                                        .split_sizes
                                        .iter()
                                        .map(|s| Json::num(*s as f64))
                                        .collect(),
                                ),
                            ),
                            ("best_time", Json::opt_num(entry.best_time)),
                            ("variants", Json::num(entry.variants as f64)),
                            ("improved", Json::Bool(entry.improved)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Assembles the complete `BENCH_autotune.json` document from per-run entries.
pub fn autotune_report(entries: Vec<Json>) -> Json {
    Json::obj([
        ("schema", Json::str("lift-autotune/v1")),
        ("results", Json::Arr(entries)),
    ])
}

/// Builds one `max_candidates_N` section of `BENCH_explore.json`.
///
/// `wall_ms` is the measured exploration wall-clock (throughput is derived from it, so
/// equal inputs render byte-identically). `engine` is the virtual-GPU engine label the
/// probe ran on (`EngineSelection::label`).
pub fn explore_section(result: &Exploration, wall_ms: f64, engine: &str) -> Json {
    let cps = if wall_ms > 0.0 {
        result.explored as f64 / (wall_ms / 1e3)
    } else {
        0.0
    };
    let derivations: Vec<Json> = result
        .variants
        .iter()
        .map(|v| {
            Json::Arr(
                v.derivation
                    .iter()
                    .map(|s| Json::str(format!("{} @ {}", s.rule, s.location)))
                    .collect(),
            )
        })
        .collect();
    Json::obj([
        ("engine", Json::str(engine)),
        ("explored", Json::num(result.explored as f64)),
        ("wall_ms", Json::num(wall_ms)),
        ("candidates_per_sec", Json::num(cps)),
        ("variants", Json::num(result.variants.len() as f64)),
        (
            "best_estimated_time",
            Json::opt_num(result.variants.first().map(|v| v.estimated_time)),
        ),
        ("best_derivations", Json::Arr(derivations)),
        ("soundness", soundness_counts(&result.soundness)),
    ])
}

/// The fixed-shape per-reason incident counts of a soundness report: one key per
/// [`RejectReason::SOUNDNESS`] label (zeros included) plus the static/dynamic split, so
/// serialized summaries have the same keys whether or not anything was rejected.
pub fn soundness_counts(report: &SoundnessReport) -> Json {
    let mut pairs: Vec<(&'static str, Json)> = report
        .counts()
        .into_iter()
        .map(|(label, n)| (label, Json::num(n as f64)))
        .collect();
    pairs.push(("static", Json::num(report.static_rejections.len() as f64)));
    pairs.push(("dynamic", Json::num(report.dynamic_rejections.len() as f64)));
    Json::obj(pairs)
}

/// Builds the `engines` section of `BENCH_explore.json`: end-to-end exploration throughput
/// of the same execution-dominated probe on each virtual-GPU engine (best-of-N wall-clocks,
/// race detection on), plus the bytecode tier's speedup over the interpreter — the number
/// the `perf_gate` bytecode-vs-interpreter floor reads.
pub fn engine_comparison_section(
    probe: &str,
    explored: usize,
    interpreter_ms: f64,
    bytecode_ms: f64,
) -> Json {
    let cps = |wall_ms: f64| {
        if wall_ms > 0.0 {
            explored as f64 / (wall_ms / 1e3)
        } else {
            0.0
        }
    };
    let speedup = if bytecode_ms > 0.0 {
        interpreter_ms / bytecode_ms
    } else {
        0.0
    };
    let engine = |wall_ms: f64| {
        Json::obj([
            ("wall_ms", Json::num(wall_ms)),
            ("candidates_per_sec", Json::num(cps(wall_ms))),
        ])
    };
    Json::obj([
        ("probe", Json::str(probe)),
        ("explored", Json::num(explored as f64)),
        ("interpreter", engine(interpreter_ms)),
        ("bytecode", engine(bytecode_ms)),
        ("bytecode_speedup", Json::num(speedup)),
    ])
}

/// Builds the `race_detector` section of `BENCH_soundness.json`: the cost of scoring an
/// enumeration with the shadow-memory race detector relative to scoring it without
/// (best-of-N wall-clocks, measured by `explore_stats`).
pub fn race_detector_section(plain_ms: f64, detected_ms: f64) -> Json {
    let fraction = if plain_ms > 0.0 {
        (detected_ms - plain_ms) / plain_ms
    } else {
        0.0
    };
    Json::obj([
        ("plain_ms", Json::num(plain_ms)),
        ("detected_ms", Json::num(detected_ms)),
        ("overhead_fraction", Json::num(fraction)),
    ])
}

/// Assembles the complete `BENCH_soundness.json` document: per-probe soundness sections in
/// order, then the race-detector overhead section.
pub fn soundness_report(sections: Vec<(String, Json)>, race_detector: Json) -> Json {
    let mut pairs = vec![("schema".to_string(), Json::str("lift-soundness/v1"))];
    pairs.extend(sections);
    pairs.push(("race_detector".to_string(), race_detector));
    Json::Obj(pairs)
}

/// Assembles the complete `BENCH_explore.json` document: the named sections in order,
/// followed by the pre-optimisation baseline and the speedup of `current_cps` over it (the
/// key order the committed baseline and the gate parser expect).
pub fn explore_report(sections: Vec<(String, Json)>, baseline_cps: f64, current_cps: f64) -> Json {
    let mut pairs = sections;
    pairs.push((
        "baseline_candidates_per_sec".to_string(),
        Json::num(baseline_cps),
    ));
    pairs.push((
        "speedup_over_baseline".to_string(),
        Json::num(current_cps / baseline_cps),
    ));
    Json::Obj(pairs)
}

/// Builds the `batch` section of one `BENCH_cache.json` entry: the deduplication outcome
/// of submitting `requests` identical requests to a fresh service in one drain.
/// `derivations`/`coalesced` come from [`lift_service::ServiceStats`]; `miss_events` is the
/// number of `cache_miss` telemetry events the drain recorded — the independent pin that
/// the batch cost exactly one derivation.
pub fn cache_batch(
    requests: u64,
    derivations: u64,
    coalesced: u64,
    miss_events: usize,
    wall_ms: f64,
) -> Json {
    Json::obj([
        ("requests", Json::num(requests as f64)),
        ("derivations", Json::num(derivations as f64)),
        ("coalesced", Json::num(coalesced as f64)),
        ("miss_events", Json::num(miss_events as f64)),
        ("wall_ms", Json::num(wall_ms)),
    ])
}

/// Builds one `results[]` entry of `BENCH_cache.json`: the cold-derivation and warm-hit
/// wall-clocks of one workload on one device, the warm/cold speedup the gate's
/// [`crate::gate::CACHE_SPEEDUP_FLOOR`] reads, the number of warm-start seeds the cold
/// search climbed from, and the [`cache_batch`] deduplication section.
pub fn cache_entry(
    workload: &str,
    device: &str,
    cold_ms: f64,
    warm_ms: f64,
    warm_seeds: usize,
    batch: Json,
) -> Json {
    let speedup = if warm_ms > 0.0 {
        cold_ms / warm_ms
    } else {
        0.0
    };
    Json::obj([
        ("workload", Json::str(workload)),
        ("device", Json::str(device)),
        ("cold_ms", Json::num(cold_ms)),
        ("warm_ms", Json::num(warm_ms)),
        ("speedup", Json::num(speedup)),
        ("warm_start_seeds", Json::num(warm_seeds as f64)),
        ("batch", batch),
    ])
}

/// Assembles the complete `BENCH_cache.json` document from per-workload entries.
pub fn cache_report(entries: Vec<Json>) -> Json {
    Json::obj([
        ("schema", Json::str("lift-cache-stats/v1")),
        ("results", Json::Arr(entries)),
    ])
}

/// Builds one `results[]` entry of `BENCH_telemetry.json` from a recorded event stream:
/// total event count, per-kind counts and the per-phase wall-time breakdown
/// ([`phase_durations`] over the collector's span events).
pub fn telemetry_entry(workload: &str, events: &[TimedEvent], wall_ms: f64) -> Json {
    let counts = counts_by_kind(events)
        .into_iter()
        .map(|(kind, n)| (kind, Json::num(n as f64)))
        .collect::<Vec<_>>();
    let phases = phase_durations(events)
        .into_iter()
        .map(|(name, us)| (name, Json::num(us as f64)))
        .collect::<Vec<_>>();
    let rejections: Vec<(&'static str, Json)> = RejectReason::ALL
        .iter()
        .map(|r| {
            let n = events
                .iter()
                .filter(|t| matches!(&t.event, Event::Rejection { reason, .. } if reason == r))
                .count();
            (r.label(), Json::num(n as f64))
        })
        .collect();
    Json::obj([
        ("workload", Json::str(workload)),
        ("wall_ms", Json::num(wall_ms)),
        ("events", Json::num(events.len() as f64)),
        ("event_counts", Json::obj(counts)),
        ("rejection_reasons", Json::obj(rejections)),
        ("phase_us", Json::obj(phases)),
    ])
}

/// Builds the `overhead` section of `BENCH_telemetry.json`: the instrumentation cost of an
/// enabled in-memory collector relative to the default [`lift_telemetry::Null`] collector
/// on the same workload (best-of-N wall-clocks, measured by `telemetry_stats`).
pub fn overhead_section(null_ms: f64, collected_ms: f64) -> Json {
    let fraction = if null_ms > 0.0 {
        (collected_ms - null_ms) / null_ms
    } else {
        0.0
    };
    Json::obj([
        ("null_ms", Json::num(null_ms)),
        ("collected_ms", Json::num(collected_ms)),
        ("overhead_fraction", Json::num(fraction)),
    ])
}

/// Assembles the complete `BENCH_telemetry.json` document.
pub fn telemetry_report(entries: Vec<Json>, overhead: Option<Json>) -> Json {
    Json::obj([
        ("schema", Json::str("lift-telemetry/v1")),
        ("results", Json::Arr(entries)),
        ("overhead", overhead.unwrap_or(Json::Null)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_without_variants_render_null_fields() {
        let result = TuningResult {
            device: "nvidia-titan-black".into(),
            best_point: None,
            best_variant: None,
            trajectory: Vec::new(),
            points_evaluated: 0,
            enumerations: 0,
            enumeration_cache_hits: 0,
        };
        let entry = autotune_entry("empty", &Strategy::Exhaustive, None, &result, 0.0);
        assert_eq!(
            entry.get("tuned_best_time"),
            Some(&crate::schema::Json::Null)
        );
        assert_eq!(entry.get("best"), Some(&crate::schema::Json::Null));
        let doc = autotune_report(vec![entry]);
        let parsed = crate::schema::parse(&doc.render()).expect("round-trips");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("lift-autotune/v1")
        );
    }

    #[test]
    fn explore_report_matches_the_committed_baseline_shape() {
        let result = Exploration {
            explored: 973,
            ..Exploration::default()
        };
        let section = explore_section(&result, 203.9, "bytecode");
        assert_eq!(section.get("explored").and_then(Json::as_f64), Some(973.0));
        let cps = section
            .get("candidates_per_sec")
            .and_then(Json::as_f64)
            .expect("throughput");
        assert!((cps - 973.0 / 0.2039).abs() < 1.0);
        let doc = explore_report(
            vec![("max_candidates_4000".to_string(), section)],
            4772.0,
            cps,
        );
        // The gate reads exactly this path.
        assert!(doc
            .get("max_candidates_4000")
            .and_then(|s| s.get("candidates_per_sec"))
            .is_some());
        assert!(doc.get("speedup_over_baseline").is_some());
    }

    #[test]
    fn cache_report_round_trips_with_the_speedup_derived() {
        let batch = cache_batch(8, 1, 7, 1, 95.0);
        let entry = cache_entry("dot_product", "nvidia", 500.0, 10.0, 2, batch);
        let doc = cache_report(vec![entry]);
        let parsed = crate::schema::parse(&doc.render()).expect("round-trips");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("lift-cache-stats/v1")
        );
        let entry = &parsed.get("results").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(entry.get("speedup").and_then(Json::as_f64), Some(50.0));
        let batch = entry.get("batch").expect("batch section");
        assert_eq!(batch.get("derivations").and_then(Json::as_f64), Some(1.0));
        assert_eq!(batch.get("coalesced").and_then(Json::as_f64), Some(7.0));
    }

    #[test]
    fn telemetry_report_rendering_is_deterministic() {
        use lift_telemetry::{Event, TimedEvent};
        let events = vec![
            TimedEvent {
                t_us: 0,
                event: Event::SpanBegin { name: "enumerate" },
            },
            TimedEvent {
                t_us: 120,
                event: Event::SpanEnd { name: "enumerate" },
            },
            TimedEvent {
                t_us: 130,
                event: Event::Counter {
                    name: "executed_kernels",
                    value: 7.0,
                },
            },
        ];
        let build = || {
            telemetry_report(
                vec![telemetry_entry("dot_product", &events, 1.5)],
                Some(overhead_section(100.0, 103.0)),
            )
            .render()
        };
        let text = build();
        assert_eq!(text, build(), "equal inputs render byte-identically");
        let parsed = crate::schema::parse(&text).expect("round-trips");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("lift-telemetry/v1")
        );
        let entry = &parsed.get("results").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(
            entry
                .get("phase_us")
                .and_then(|p| p.get("enumerate"))
                .and_then(Json::as_f64),
            Some(120.0)
        );
        assert_eq!(entry.get("events").and_then(Json::as_f64), Some(3.0));
        let overhead = parsed.get("overhead").expect("overhead section");
        assert!(
            (overhead
                .get("overhead_fraction")
                .and_then(Json::as_f64)
                .unwrap()
                - 0.03)
                .abs()
                < 1e-9
        );
    }
}
