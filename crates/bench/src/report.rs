//! Builders for the machine-readable reports the harness binaries write.
//!
//! Everything that varies between two runs with identical inputs (wall-clock, throughput,
//! timestamps) enters through explicit parameters, so rendering a result twice with the same
//! timing values is byte-identical — the property the autotune determinism test pins down.

use lift_tuner::{Strategy, TuningResult};

use crate::schema::Json;

/// Renders a [`Strategy`] for the report.
pub fn strategy_label(strategy: &Strategy) -> String {
    match strategy {
        Strategy::Exhaustive => "exhaustive".to_string(),
        Strategy::RandomHillClimb {
            seed,
            samples,
            max_steps,
        } => format!("hill-climb(seed={seed}, samples={samples}, max_steps={max_steps})"),
    }
}

/// Builds one `results[]` entry of `BENCH_autotune.json`.
///
/// `default_best_time` is the best estimated time of the *default-configuration*
/// exploration (`ExplorationConfig::default()` with the same device) — the baseline the
/// tuned point must beat. `wall_ms` is the measured tuning wall-clock; pass a fixed value to
/// obtain timestamp-independent output.
pub fn autotune_entry(
    workload: &str,
    strategy: &Strategy,
    default_best_time: Option<f64>,
    result: &TuningResult,
    wall_ms: f64,
) -> Json {
    let best = result.best_point.as_ref().zip(result.best_variant.as_ref());
    let improvement = match (default_best_time, &result.best_variant) {
        (Some(d), Some(b)) if b.estimated_time > 0.0 => Some(d / b.estimated_time),
        _ => None,
    };
    let points_per_sec = if wall_ms > 0.0 {
        result.points_evaluated as f64 / (wall_ms / 1e3)
    } else {
        0.0
    };
    Json::obj([
        ("workload", Json::str(workload)),
        ("device", Json::str(&result.device)),
        ("strategy", Json::str(strategy_label(strategy))),
        ("default_best_time", Json::opt_num(default_best_time)),
        (
            "tuned_best_time",
            Json::opt_num(result.best_variant.as_ref().map(|b| b.estimated_time)),
        ),
        ("improvement", Json::opt_num(improvement)),
        (
            "points_evaluated",
            Json::num(result.points_evaluated as f64),
        ),
        ("enumerations", Json::num(result.enumerations as f64)),
        (
            "enumeration_cache_hits",
            Json::num(result.enumeration_cache_hits as f64),
        ),
        ("wall_ms", Json::num(wall_ms)),
        ("points_per_sec", Json::num(points_per_sec)),
        (
            "best",
            best.map_or(Json::Null, |(point, variant)| {
                Json::obj([
                    (
                        "split_sizes",
                        Json::Arr(
                            point
                                .rule_options
                                .split_sizes
                                .iter()
                                .map(|s| Json::num(*s as f64))
                                .collect(),
                        ),
                    ),
                    (
                        "vector_widths",
                        Json::Arr(
                            point
                                .rule_options
                                .vector_widths
                                .iter()
                                .map(|w| Json::num(*w as f64))
                                .collect(),
                        ),
                    ),
                    (
                        "global",
                        Json::Arr(
                            point
                                .launch
                                .global
                                .iter()
                                .map(|g| Json::num(*g as f64))
                                .collect(),
                        ),
                    ),
                    (
                        "local",
                        Json::Arr(
                            point
                                .launch
                                .local
                                .iter()
                                .map(|l| Json::num(*l as f64))
                                .collect(),
                        ),
                    ),
                    (
                        "derivation",
                        Json::Arr(variant.derivation.iter().map(Json::str).collect()),
                    ),
                ])
            }),
        ),
        (
            "trajectory",
            Json::Arr(
                result
                    .trajectory
                    .iter()
                    .map(|entry| {
                        Json::obj([
                            (
                                "global",
                                Json::num(entry.point.launch.total_work_items() as f64),
                            ),
                            (
                                "local",
                                Json::num(entry.point.launch.work_group_size() as f64),
                            ),
                            (
                                "split_sizes",
                                Json::Arr(
                                    entry
                                        .point
                                        .rule_options
                                        .split_sizes
                                        .iter()
                                        .map(|s| Json::num(*s as f64))
                                        .collect(),
                                ),
                            ),
                            ("best_time", Json::opt_num(entry.best_time)),
                            ("variants", Json::num(entry.variants as f64)),
                            ("improved", Json::Bool(entry.improved)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Assembles the complete `BENCH_autotune.json` document from per-run entries.
pub fn autotune_report(entries: Vec<Json>) -> Json {
    Json::obj([
        ("schema", Json::str("lift-autotune/v1")),
        ("results", Json::Arr(entries)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_without_variants_render_null_fields() {
        let result = TuningResult {
            device: "nvidia-titan-black".into(),
            best_point: None,
            best_variant: None,
            trajectory: Vec::new(),
            points_evaluated: 0,
            enumerations: 0,
            enumeration_cache_hits: 0,
        };
        let entry = autotune_entry("empty", &Strategy::Exhaustive, None, &result, 0.0);
        assert_eq!(
            entry.get("tuned_best_time"),
            Some(&crate::schema::Json::Null)
        );
        assert_eq!(entry.get("best"), Some(&crate::schema::Json::Null));
        let doc = autotune_report(vec![entry]);
        let parsed = crate::schema::parse(&doc.render()).expect("round-trips");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("lift-autotune/v1")
        );
    }
}
